//! Lemma 4.1 (via \[15\], Lemma 2.5): a weight setting realizing a given DAG.
//!
//! Given a DAG `G` (as an edge mask over the network) whose sinks include the
//! target `t`, assign each node the potential `p(v) = n - rank(v)` where
//! `rank` is a topological position. Setting `w(u,v) = p(u) - p(v) ≥ 1` on
//! DAG edges makes every DAG path from `u` to `t` cost exactly
//! `p(u) - p(t)` (telescoping sum), so *every* DAG edge lies on a shortest
//! path to `t`. All non-DAG edges get a weight larger than any possible
//! potential difference, keeping them off all shortest paths.

use segrout_core::{Network, TeError, WeightSetting};
use segrout_graph::topological_order;

/// Computes a weight setting under which the ECMP shortest-path DAG towards
/// *every* node of the masked DAG coincides with the masked DAG restricted
/// to the nodes that reach it; in particular, for a target `t` that is a sink
/// of the DAG, the induced ECMP flow from any DAG node to `t` splits over
/// exactly the DAG edges (paper Lemma 4.1).
///
/// # Errors
/// Fails when the mask is cyclic.
pub fn dag_realizing_weights(net: &Network, mask: &[bool]) -> Result<WeightSetting, TeError> {
    let g = net.graph();
    assert_eq!(mask.len(), g.edge_count(), "mask length mismatch");
    let order = topological_order(g, mask).ok_or(TeError::InvalidWaypoints(
        "dag_realizing_weights requires an acyclic edge mask".to_string(),
    ))?;
    let n = g.node_count();
    // Potential: strictly decreasing along DAG edges.
    let mut potential = vec![0.0; n];
    for (rank, v) in order.iter().enumerate() {
        potential[v.index()] = (n - rank) as f64;
    }
    // Any DAG path cost telescopes to p(u) - p(t) <= n; a single non-DAG edge
    // already costs more than that.
    let big = (2 * n + 1) as f64;
    let mut weights = vec![big; g.edge_count()];
    for (e, u, v) in g.edges() {
        if mask[e.index()] {
            let w = potential[u.index()] - potential[v.index()];
            debug_assert!(w >= 1.0 - 1e-12, "topological order violated");
            weights[e.index()] = w;
        }
    }
    WeightSetting::new(net, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::{DemandList, NodeId, Router, WaypointSetting};

    /// Build the diamond 0->1->3, 0->2->3 plus a shortcut 0->3 that we
    /// exclude from the DAG.
    fn net_with_shortcut() -> (Network, Vec<bool>) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(3), 1.0); // shortcut, excluded
        let net = b.build().unwrap();
        let mask = vec![true, true, true, true, false];
        (net, mask)
    }

    #[test]
    fn ecmp_dag_equals_given_dag() {
        let (net, mask) = net_with_shortcut();
        let w = dag_realizing_weights(&net, &mask).unwrap();
        let router = Router::new(&net, &w);
        let dag = router.dag(NodeId(3));
        for (e, &expected) in mask.iter().enumerate() {
            assert_eq!(dag.edge_on_dag[e], expected, "edge {e} membership mismatch");
        }
    }

    #[test]
    fn flow_splits_over_the_dag_only() {
        let (net, mask) = net_with_shortcut();
        let w = dag_realizing_weights(&net, &mask).unwrap();
        let router = Router::new(&net, &w);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let r = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
        assert!((r.loads[0] - 1.0).abs() < 1e-9);
        assert!((r.loads[2] - 1.0).abs() < 1e-9);
        assert_eq!(r.loads[4], 0.0, "shortcut must carry no flow");
    }

    #[test]
    fn single_path_dag() {
        let (net, _) = net_with_shortcut();
        // Only the upper path 0 -> 1 -> 3.
        let mask = vec![true, true, false, false, false];
        let w = dag_realizing_weights(&net, &mask).unwrap();
        let router = Router::new(&net, &w);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.0);
        let r = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
        assert_eq!(r.loads, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn weights_are_integral_and_positive() {
        let (net, mask) = net_with_shortcut();
        let w = dag_realizing_weights(&net, &mask).unwrap();
        for &val in w.as_slice() {
            assert!(val >= 1.0);
            assert!(
                (val - val.round()).abs() < 1e-12,
                "weights should be integral"
            );
        }
    }

    #[test]
    fn cyclic_mask_fails() {
        let mut b = Network::builder(2);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        assert!(dag_realizing_weights(&net, &[true, true]).is_err());
    }
}
