//! Algorithm 3 (GreedyWPO): greedy waypoint selection under fixed weights.
//!
//! Demands are visited in descending size order. For each demand `ψ = (s, t,
//! d)` every node `w` is probed as a single waypoint — the demand is replaced
//! by the two segments `(s, w, d)` and `(w, t, d)` — and the waypoint that
//! lowers the current MLU the most is kept (none if no node improves it).
//!
//! The implementation maintains the running load vector of the *current*
//! routing (earlier demands keep their chosen waypoints), which both matches
//! the greedy "improve the MLU of the whole configuration" reading of the
//! pseudo-code and avoids quadratic re-evaluation: probing a waypoint is a
//! sparse delta on the load vector.
//!
//! Per-demand waypoint probes are independent, so they run on the
//! `segrout-par` pool against one shared (now `Sync`) router. The candidate
//! chains are generated in fixed (position, waypoint) order and the
//! acceptance fold replays that order serially, so the selected waypoints
//! are bit-identical at any thread count.
//!
//! **Robust multi-matrix selection** ([`greedy_wpo_robust`]): the same
//! greedy sweep against an aligned [`DemandSet`] of `K` matrices. One
//! running load vector is maintained *per matrix*, every candidate chain is
//! probed against every matrix (the `(candidate × matrix)` grid fans out on
//! the `segrout-par` pool), and the per-matrix patched MLUs fold through a
//! [`RobustObjective`] before the acceptance test. [`greedy_wpo`] is the
//! `K = 1` special case and delegates here — a one-matrix set reproduces
//! the classic sweep bit for bit.

use segrout_core::{
    max_link_utilization, DemandList, DemandSet, EdgeId, Network, NodeId, RobustObjective, Router,
    TeError, WaypointSetting, WeightSetting,
};
use segrout_obs::{event, Level};

/// Work threshold for the per-demand probe grid: below this many cells the
/// grid runs serially on the caller. A cell is one sparse `chain_loads` +
/// `patched_mlu` probe — far cheaper than the Dijkstra-sized work
/// `par_map`'s default threshold assumes.
const GRID_SERIAL_CUTOFF: usize = 128;

/// Sparse per-edge load delta of one candidate routing.
type SparseLoads = Vec<(EdgeId, f64)>;

/// MLU of `loads` patched by the sparse `delta`, without materializing the
/// patched vector.
///
/// `base_util_desc` holds the *unpatched* per-edge utilizations sorted in
/// descending order: the maximum over edges the delta does not touch is the
/// first untouched entry in that order, so a probe costs `O(|δ|²
/// + |δ| · scan)` instead of an `O(|E|)` clone-and-fold.
///
/// Bit-identity with the dense path: each touched edge's patched load
/// replays the exact accumulation sequence `loads[e] += l` would perform on
/// a full copy (first occurrence reads the base load, later duplicates add
/// onto the running sum, in delta order), and a maximum over the same value
/// multiset is order-independent, so the result equals
/// `max_link_utilization(&patched, caps)` bit for bit.
fn patched_mlu(
    loads: &[f64],
    caps: &[f64],
    base_util_desc: &[(f64, usize)],
    delta: &SparseLoads,
) -> f64 {
    let mut touched: Vec<(usize, f64)> = Vec::with_capacity(delta.len());
    for &(e, l) in delta {
        let idx = e.index();
        match touched.iter_mut().find(|(te, _)| *te == idx) {
            Some((_, v)) => *v += l,
            None => touched.push((idx, loads[idx] + l)),
        }
    }
    let mut mlu = 0.0f64;
    for &(u, idx) in base_util_desc {
        if !touched.iter().any(|&(te, _)| te == idx) {
            mlu = mlu.max(u);
            break; // descending order: the first untouched edge is the max
        }
    }
    for &(idx, v) in &touched {
        mlu = mlu.max(v / caps[idx]);
    }
    mlu
}

/// Configuration of GreedyWPO.
#[derive(Clone, Debug)]
pub struct GreedyWpoConfig {
    /// Candidate waypoints to consider for each demand. `None` probes every
    /// node (the paper's algorithm); a subset makes sweeps cheaper.
    pub candidates: Option<Vec<NodeId>>,
    /// Minimum relative MLU improvement for a waypoint to be accepted
    /// (guards against floating-point churn).
    pub min_improvement: f64,
    /// Waypoint budget `W` per demand. The paper's Algorithm 3 uses 1;
    /// larger budgets run additional greedy passes that insert one more
    /// waypoint into each demand's current segment chain.
    pub max_waypoints: usize,
}

impl Default for GreedyWpoConfig {
    fn default() -> Self {
        Self {
            candidates: None,
            min_improvement: 1e-9,
            max_waypoints: 1,
        }
    }
}

/// Runs GreedyWPO, returning the waypoint setting (at most one waypoint per
/// demand, the paper's `W = 1` regime of Algorithm 3).
///
/// # Errors
/// Fails when the initial ECMP routing of some demand is impossible.
pub fn greedy_wpo(
    net: &Network,
    demands: &DemandList,
    weights: &WeightSetting,
    cfg: &GreedyWpoConfig,
) -> Result<WaypointSetting, TeError> {
    greedy_wpo_robust(
        net,
        &DemandSet::single(demands.clone()),
        weights,
        RobustObjective::WorstCase,
        cfg,
    )
}

/// Runs GreedyWPO against an aligned set of traffic matrices: one waypoint
/// setting, accepted only when it improves the `robust`-aggregated
/// per-matrix MLU.
///
/// Each matrix keeps its own running load vector; a candidate chain's
/// per-matrix patched MLUs are computed on the `segrout-par` pool over the
/// `(candidate × matrix)` grid and folded through `robust` serially, in
/// candidate order — bit-identical at any thread count. A single-matrix
/// set is bit-identical to [`greedy_wpo`].
///
/// # Errors
/// Fails when the set is misaligned (waypoints are per demand index) or
/// the initial ECMP routing of some demand is impossible.
///
/// # Panics
/// Panics on an empty demand set.
pub fn greedy_wpo_robust(
    net: &Network,
    set: &DemandSet,
    weights: &WeightSetting,
    robust: RobustObjective,
    cfg: &GreedyWpoConfig,
) -> Result<WaypointSetting, TeError> {
    assert!(!set.is_empty(), "demand set must hold at least one matrix");
    set.require_aligned()?;
    let _span = segrout_obs::span("greedywpo");
    let k = set.len();
    let candidates_evaluated = segrout_obs::counter("greedywpo.candidates_evaluated");
    let waypoints_set = segrout_obs::counter("greedywpo.waypoints_set");
    let matrix_evals = (k > 1).then(|| segrout_obs::counter("robust.matrix_evals"));
    let router = Router::new(net, weights);
    let caps = net.capacities();
    let n_demands = set.pair_count();
    let mut setting = WaypointSetting::none(n_demands);

    // Per-matrix loads of the all-direct routing.
    let mut loads: Vec<Vec<f64>> = Vec::with_capacity(k);
    for demands in set.matrices() {
        loads.push(router.evaluate(demands, &setting).map(|r| r.loads)?);
    }
    let mlu_of = |loads: &[Vec<f64>]| -> f64 {
        let mlus: Vec<f64> = loads
            .iter()
            .map(|l| max_link_utilization(l, caps))
            .collect();
        robust.aggregate(&mlus)
    };
    let mut u_min = mlu_of(&loads);
    // Local probe count for the flight recorder; GreedyWPO tracks no Φ, so
    // trace points carry `NaN` there (rendered as JSON null).
    let mut total_probes: u64 = 0;
    segrout_obs::trace_point("greedywpo.start", 0, f64::NAN, u_min);
    event!(
        Level::Debug,
        "greedywpo.start",
        demands = n_demands,
        matrices = k,
        initial_mlu = u_min,
    );

    let all_nodes: Vec<NodeId> = net.graph().nodes().collect();
    let candidates: &[NodeId] = cfg.candidates.as_deref().unwrap_or(&all_nodes);

    // Sparse loads of routing `amount` along the segment chain
    // src -> chain[0] -> ... -> dst (degenerate hops skipped).
    let chain_loads =
        |chain: &[NodeId], src: NodeId, dst: NodeId, amount: f64| -> Result<SparseLoads, TeError> {
            let mut out = Vec::new();
            let mut cur = src;
            for &hop in chain.iter().chain(std::iter::once(&dst)) {
                if hop != cur {
                    out.extend(router.segment_loads_sparse(cur, hop, amount)?);
                    cur = hop;
                }
            }
            Ok(out)
        };

    // One greedy pass per waypoint of budget: each pass may insert one more
    // waypoint into every demand's chain (pass 1 with an empty chain is
    // exactly the paper's Algorithm 3).
    for _pass in 0..cfg.max_waypoints.max(1) {
        let mut inserted_any = false;
        for i in set.indices_by_descending_total_size() {
            let d = set.matrix(0)[i];
            let sizes: Vec<f64> = (0..k).map(|mi| set.matrix(mi)[i].size).collect();
            let chain = setting.get(i).to_vec();
            if chain.len() >= cfg.max_waypoints {
                continue;
            }
            // Remove this demand's current contribution from every matrix.
            for (mi, l) in loads.iter_mut().enumerate() {
                let current = chain_loads(&chain, d.src, d.dst, sizes[mi])?;
                for &(e, load) in &current {
                    l[e.index()] -= load;
                }
            }
            // Per-matrix base utilizations sorted descending, shared
            // read-only by every probe of this demand: one O(|E| log |E|)
            // sort per matrix replaces an O(|E|) load-vector clone per
            // probe.
            let base_util: Vec<Vec<(f64, usize)>> = loads
                .iter()
                .map(|l| {
                    let mut u: Vec<(f64, usize)> = l
                        .iter()
                        .zip(caps)
                        .map(|(l, c)| l / c)
                        .enumerate()
                        .map(|(idx, u)| (u, idx))
                        .collect();
                    u.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
                    u
                })
                .collect();

            // Candidate chains in fixed (position, waypoint) order; the
            // parallel probe results are folded back in this same order.
            let mut probes: Vec<Vec<NodeId>> = Vec::new();
            for pos in 0..=chain.len() {
                for &w in candidates {
                    if w == d.src || w == d.dst || chain.contains(&w) {
                        continue;
                    }
                    let mut cand = chain.clone();
                    cand.insert(pos, w);
                    probes.push(cand);
                }
            }
            // Each grid cell re-routes the demand along its candidate chain
            // with one matrix's size and evaluates that matrix's patched MLU
            // from the shared base state — no per-probe load-vector copy.
            // Candidate-major order: candidate `ci`'s cells live at
            // `[ci·K, ci·K+K)`.
            let tasks: Vec<(usize, usize)> = (0..probes.len())
                .flat_map(|ci| (0..k).map(move |mi| (ci, mi)))
                .collect();
            // Each cell is a sparse single-segment probe — microseconds of
            // work — so small grids (one matrix × a few dozen waypoints, the
            // k=1 common case) run serially: pool dispatch used to cost more
            // than the probes themselves (0.69× "speedup" at 2 threads in
            // the pre-threshold BENCH_parallel record). Robust multi-matrix
            // grids clear the threshold and still fan out.
            let mut evals =
                segrout_par::par_map_slice_min(&tasks, GRID_SERIAL_CUTOFF, |_, &(ci, mi)| {
                    let delta = chain_loads(&probes[ci], d.src, d.dst, sizes[mi]).ok()?;
                    Some((patched_mlu(&loads[mi], caps, &base_util[mi], &delta), delta))
                });

            let mut best: Option<(usize, f64)> = None;
            let mut probed: u64 = 0;
            for ci in 0..probes.len() {
                let group = &evals[ci * k..(ci + 1) * k];
                if group.iter().any(Option::is_none) {
                    continue;
                }
                probed += 1;
                let mlus: Vec<f64> = group.iter().flatten().map(|(u, _)| *u).collect();
                let u = robust.aggregate(&mlus);
                let current_best = best.map(|(_, u)| u).unwrap_or(u_min);
                if u < current_best * (1.0 - cfg.min_improvement) {
                    best = Some((ci, u));
                }
            }

            candidates_evaluated.add(probed);
            if let Some(ctr) = &matrix_evals {
                ctr.add(probed * k as u64);
            }
            total_probes += probed;
            match best {
                Some((ci, u)) => {
                    segrout_obs::trace_point("greedywpo.accept", total_probes, f64::NAN, u);
                    let cand = probes[ci].clone();
                    event!(
                        Level::Debug,
                        "greedywpo.pick",
                        demand = i,
                        waypoints = cand.len(),
                        mlu = u,
                    );
                    setting.set(i, cand);
                    for (mi, l) in loads.iter_mut().enumerate() {
                        let (u_mi, delta) = evals[ci * k + mi]
                            .take()
                            .expect("accepted candidates evaluated on every matrix");
                        for (e, load) in delta {
                            l[e.index()] += load;
                        }
                        if k > 1 && segrout_obs::trace_enabled() {
                            // Robust runs record the accepted move's
                            // per-matrix MLU (`iter` is the matrix index).
                            segrout_obs::trace_point("robust.matrix", mi as u64, f64::NAN, u_mi);
                        }
                        // Commit-point hook: each matrix's sparsely patched
                        // load vector and patched MLU must equal a
                        // from-scratch evaluation of the accepted waypoint
                        // setting (debug builds only).
                        #[cfg(debug_assertions)]
                        segrout_core::hooks::assert_commit_consistent(
                            net,
                            weights,
                            set.matrix(mi),
                            &setting,
                            l,
                            u_mi,
                        );
                        #[cfg(not(debug_assertions))]
                        let _ = u_mi;
                    }
                    u_min = u;
                    waypoints_set.inc();
                    inserted_any = true;
                }
                None => {
                    event!(
                        Level::Trace,
                        "greedywpo.reject",
                        demand = i,
                        probed = probed
                    );
                    // Keep the current chain: restore each matrix's
                    // contribution.
                    for (mi, l) in loads.iter_mut().enumerate() {
                        let current = chain_loads(&chain, d.src, d.dst, sizes[mi])?;
                        for (e, load) in current {
                            l[e.index()] += load;
                        }
                    }
                }
            }
        }
        if !inserted_any {
            break;
        }
    }
    segrout_obs::gauge("greedywpo.final_mlu").set(u_min);
    segrout_obs::trace_point("greedywpo.done", total_probes, f64::NAN, u_min);
    event!(
        Level::Info,
        "greedywpo.done",
        candidates_evaluated = candidates_evaluated.get(),
        waypoints = waypoints_set.get(),
        mlu = u_min,
    );
    Ok(setting)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sparse probe evaluation must equal the dense clone-and-fold it
    /// replaced, bit for bit — including duplicate edges inside one delta
    /// (two segments of a chain sharing a link) and deltas that demote the
    /// current maximum edge.
    #[test]
    fn patched_mlu_matches_dense_evaluation() {
        let loads = vec![0.3, 1.5, 0.0, 2.25, 0.7];
        let caps = vec![1.0, 2.0, 1.0, 3.0, 0.5];
        let mut base_util: Vec<(f64, usize)> = loads
            .iter()
            .zip(&caps)
            .map(|(l, c)| l / c)
            .enumerate()
            .map(|(idx, u)| (u, idx))
            .collect();
        base_util.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));

        let deltas: Vec<SparseLoads> = vec![
            vec![],
            vec![(EdgeId(2), 0.125)],
            vec![(EdgeId(4), 0.1), (EdgeId(4), 0.2)], // duplicate edge
            vec![(EdgeId(4), -0.7)],                  // demote the max edge
            (0..5).map(|e| (EdgeId(e), 0.01 * e as f64)).collect(), // all touched
            vec![(EdgeId(1), 0.3), (EdgeId(3), 0.41), (EdgeId(1), 0.3)],
        ];
        for delta in &deltas {
            let mut dense = loads.clone();
            for &(e, l) in delta {
                dense[e.index()] += l;
            }
            let want = max_link_utilization(&dense, &caps);
            let got = patched_mlu(&loads, &caps, &base_util, delta);
            assert_eq!(got.to_bits(), want.to_bits(), "delta {delta:?}");
        }
    }

    /// TE-Instance-1 shape with m = 3: chain s=0 -> 1 -> 2 with thick links
    /// (cap 3), thin links (cap 1) from each chain node to t=3.
    fn instance1_like() -> (Network, DemandList) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 3.0); // e0
        b.link(NodeId(1), NodeId(2), 3.0); // e1
        b.link(NodeId(0), NodeId(3), 1.0); // e2 (s,t)
        b.link(NodeId(1), NodeId(3), 1.0); // e3
        b.link(NodeId(2), NodeId(3), 1.0); // e4
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..3 {
            d.push(NodeId(0), NodeId(3), 1.0);
        }
        (net, d)
    }

    /// Weights under which the direct (s,t) link is the unique shortest
    /// path, so all three unit demands pile onto the capacity-1 link.
    fn direct_heavy_weights(net: &Network) -> WeightSetting {
        // chain links weight 1, (v_i, t) links weight 10 except (s,t) = 2.
        WeightSetting::new(net, vec![1.0, 1.0, 2.0, 10.0, 10.0]).unwrap()
    }

    #[test]
    fn waypoints_spread_the_load() {
        let (net, d) = instance1_like();
        let w = direct_heavy_weights(&net);
        let router = Router::new(&net, &w);
        let before = router.mlu(&d).unwrap();
        assert!((before - 3.0).abs() < 1e-9); // all 3 units on the (s,t) link

        let wp = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        let after = router.evaluate(&d, &wp).unwrap().mlu;
        assert!(
            after < before - 0.5,
            "greedy waypoints should reduce MLU: {before} -> {after}"
        );
    }

    #[test]
    fn no_waypoint_when_nothing_improves() {
        // Single demand over a single path: no waypoint can help.
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        let w = WeightSetting::unit(&net);
        let wp = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        assert!(wp.get(0).is_empty());
    }

    #[test]
    fn mlu_never_increases() {
        let (net, d) = instance1_like();
        for weights in [
            WeightSetting::unit(&net),
            WeightSetting::inverse_capacity(&net),
            direct_heavy_weights(&net),
        ] {
            let router = Router::new(&net, &weights);
            let before = router.mlu(&d).unwrap();
            let wp = greedy_wpo(&net, &d, &weights, &GreedyWpoConfig::default()).unwrap();
            let after = router.evaluate(&d, &wp).unwrap().mlu;
            assert!(after <= before + 1e-9, "{before} -> {after}");
        }
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let (net, d) = instance1_like();
        let w = direct_heavy_weights(&net);
        let cfg = GreedyWpoConfig {
            candidates: Some(vec![NodeId(1)]),
            ..Default::default()
        };
        let wp = greedy_wpo(&net, &d, &w, &cfg).unwrap();
        for i in 0..d.len() {
            for &x in wp.get(i) {
                assert_eq!(x, NodeId(1));
            }
        }
    }

    #[test]
    fn descending_order_assigns_biggest_first() {
        // Two demands of different size; only one useful waypoint slot
        // (capacities make a single reroute beneficial). The big demand gets
        // first pick.
        let (net, _) = instance1_like();
        let w = direct_heavy_weights(&net);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 0.4);
        d.push(NodeId(0), NodeId(3), 2.0);
        let wp = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        // The larger demand (index 1) must have been rerouted.
        assert!(!wp.get(1).is_empty());
    }
    #[test]
    fn two_waypoint_budget_runs_extra_passes() {
        // TE-Instance 3 needs two waypoints for its optimal routing; with
        // W = 2 greedy must do at least as well as with W = 1.
        let (net, d) = instance1_like();
        let w = direct_heavy_weights(&net);
        let router = Router::new(&net, &w);
        let one = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        let two = greedy_wpo(
            &net,
            &d,
            &w,
            &GreedyWpoConfig {
                max_waypoints: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let u1 = router.evaluate(&d, &one).unwrap().mlu;
        let u2 = router.evaluate(&d, &two).unwrap().mlu;
        assert!(u2 <= u1 + 1e-9, "W=2 never worse: {u2} vs {u1}");
        assert!(two.max_used() <= 2);
    }

    /// A one-matrix `DemandSet` must reproduce the classic single-matrix
    /// sweep bit for bit (the module-level reduction contract).
    #[test]
    fn single_matrix_set_reduces_bit_identically() {
        let (net, d) = instance1_like();
        let w = direct_heavy_weights(&net);
        let classic = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        let robust = greedy_wpo_robust(
            &net,
            &DemandSet::single(d.clone()),
            &w,
            RobustObjective::Quantile(1.0),
            &GreedyWpoConfig::default(),
        )
        .unwrap();
        for i in 0..d.len() {
            assert_eq!(classic.get(i), robust.get(i));
        }
    }

    /// The robust sweep must never increase the worst-case MLU of the set,
    /// and a misaligned set must be rejected.
    #[test]
    fn robust_sweep_improves_worst_case_and_checks_alignment() {
        let (net, d) = instance1_like();
        let w = direct_heavy_weights(&net);
        // Second matrix: same pairs, scaled sizes (a diurnal-style peak).
        let scaled: DemandList = d
            .iter()
            .map(|x| segrout_core::Demand::new(x.src, x.dst, x.size * 1.5))
            .collect();
        let mut set = DemandSet::single(d.clone());
        set.push("peak", scaled);

        let before =
            segrout_core::evaluate_robust(&net, &w, &set, &WaypointSetting::none(set.pair_count()))
                .unwrap()
                .worst_mlu();
        let wp = greedy_wpo_robust(
            &net,
            &set,
            &w,
            RobustObjective::WorstCase,
            &GreedyWpoConfig::default(),
        )
        .unwrap();
        let after = segrout_core::evaluate_robust(&net, &w, &set, &wp)
            .unwrap()
            .worst_mlu();
        assert!(after <= before + 1e-9, "{before} -> {after}");

        let mut skewed = DemandList::new();
        skewed.push(NodeId(1), NodeId(3), 1.0);
        let mut bad = DemandSet::single(d);
        bad.push("skewed", skewed);
        assert!(greedy_wpo_robust(
            &net,
            &bad,
            &w,
            RobustObjective::WorstCase,
            &GreedyWpoConfig::default()
        )
        .is_err());
    }
}
