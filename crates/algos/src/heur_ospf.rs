//! HeurOSPF: the Fortz–Thorup local search for link-weight optimization
//! (paper \[11\], used as the subroutine of JOINT-Heur in §6).
//!
//! Weights are integers in `[1, max_weight]`. The search starts from the
//! inverse-capacity setting (plus optional random restarts), and repeatedly
//! scans the links in random order trying a small family of candidate weight
//! changes per link, accepting the first strict improvement of the
//! objective. A hash set of visited weight vectors avoids re-evaluating
//! settings, and a no-improvement full pass ends a descent.
//!
//! Each link's candidate neighbourhood is scored **speculatively in
//! parallel** on the `segrout-par` pool, then the first improving candidate
//! in fixed candidate order is accepted. Candidate generation, visited-set
//! filtering, and the accepting reduction all run serially on the caller, so
//! the search is bit-identical at any thread count.
//!
//! Candidate scoring goes through the **incremental evaluation engine**
//! ([`segrout_core::IncrementalEvaluator`]): probes borrow the shared base
//! state read-only and repair only the destinations whose shortest-path DAG
//! the single-edge change can touch; the accepted move is committed in
//! place. Probe answers are bit-identical to a from-scratch evaluation, so
//! the search trajectory is byte-for-byte the one the (slower) from-scratch
//! scorer produces — `use_incremental: false` in [`HeurOspfConfig`] selects
//! that baseline scorer, which the benchmarks compare against.
//!
//! Objective: the paper's local search minimizes the piecewise-linear
//! congestion cost `Φ` (which correlates with, and tie-breaks on, MLU); the
//! evaluation in §7 reports MLU. Both orderings are supported.
//!
//! **Robust multi-matrix search** ([`heur_ospf_robust`]): the same descent
//! against a [`DemandSet`] of `K` traffic matrices. Every candidate move is
//! probed against *every* matrix (one [`IncrementalEvaluator`] per matrix;
//! the `(candidate × matrix)` grid fans out on the `segrout-par` pool), and
//! the per-matrix `(Φ, MLU)` values fold through a [`RobustObjective`]
//! before entering the lexicographic comparison. [`heur_ospf`] is the
//! `K = 1` special case and delegates here — a one-matrix set reproduces
//! the classic search bit for bit.

use segrout_core::rng::{SliceRandom, StdRng};
use segrout_core::{
    fortz_phi, DemandList, DemandSet, EdgeId, FailureSet, IncrementalEvaluator, Network,
    RobustObjective, Router, WaypointSetting, WeightSetting,
};
use segrout_obs::{event, Level};
use std::collections::HashSet;

/// Which objective the local search descends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Lexicographic `(Φ, MLU)` — the Fortz–Thorup congestion cost first.
    PhiThenMlu,
    /// Lexicographic `(MLU, Φ)` — minimize the paper's reported metric
    /// directly, tie-breaking on Φ.
    MluThenPhi,
}

/// Configuration of the local search.
#[derive(Clone, Debug)]
pub struct HeurOspfConfig {
    /// Largest integer weight (Fortz–Thorup use 16–20 for ISP topologies).
    pub max_weight: u32,
    /// Number of random restarts in addition to the inverse-capacity start.
    pub restarts: usize,
    /// Upper bound on full link-scan passes per descent.
    pub max_passes: usize,
    /// Objective ordering.
    pub objective: Objective,
    /// RNG seed (the search is deterministic given the seed).
    pub seed: u64,
    /// Score candidates through the incremental evaluation engine (default).
    /// `false` selects the from-scratch scorer — one full ECMP evaluation
    /// per candidate — kept as the benchmark baseline; both scorers produce
    /// bit-identical search trajectories.
    pub use_incremental: bool,
}

impl Default for HeurOspfConfig {
    fn default() -> Self {
        Self {
            max_weight: 20,
            restarts: 2,
            max_passes: 30,
            objective: Objective::MluThenPhi,
            seed: 0x5eed,
            use_incremental: true,
        }
    }
}

/// Objective value: a lexicographic pair.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Score(f64, f64);

impl Score {
    /// The MLU component of the lexicographic pair.
    fn mlu(&self, objective: Objective) -> f64 {
        match objective {
            Objective::PhiThenMlu => self.1,
            Objective::MluThenPhi => self.0,
        }
    }

    /// The Φ component of the lexicographic pair.
    fn phi(&self, objective: Objective) -> f64 {
        match objective {
            Objective::PhiThenMlu => self.0,
            Objective::MluThenPhi => self.1,
        }
    }

    fn better_than(&self, other: &Score) -> bool {
        const REL: f64 = 1e-9;
        let tol0 = REL * (1.0 + other.0.abs());
        if self.0 < other.0 - tol0 {
            return true;
        }
        if self.0 > other.0 + tol0 {
            return false;
        }
        self.1 < other.1 - REL * (1.0 + other.1.abs())
    }
}

/// Weight vectors already evaluated during one descent.
///
/// Membership is exact: the set stores the full integer vectors, not a
/// digest. An earlier revision tracked a single 64-bit `DefaultHasher`
/// digest per vector, so a hash collision would silently mark a
/// never-evaluated candidate as visited and discard it — an unrecoverable
/// false positive, since the local search never revisits. Lookups borrow
/// the candidate as a slice, so only genuinely fresh vectors allocate.
#[derive(Default)]
struct VisitedSet(HashSet<Vec<u32>>);

impl VisitedSet {
    /// Inserts `w`, returning `true` when it was not seen before.
    fn insert(&mut self, w: &[u32]) -> bool {
        if self.0.contains(w) {
            return false;
        }
        self.0.insert(w.to_vec())
    }
}

/// Folds `(Φ, MLU)` into the configured lexicographic ordering.
fn score_from(phi: f64, mlu: f64, objective: Objective) -> Score {
    match objective {
        Objective::PhiThenMlu => Score(phi, mlu),
        Objective::MluThenPhi => Score(mlu, phi),
    }
}

/// Evaluates integer weights from scratch against every matrix of the set,
/// returning the configured lexicographic score over the robust-aggregated
/// `(Φ, MLU)`. A set any matrix of which is unroutable scores infinitely
/// bad. This is the baseline scorer; the hot loop normally probes the
/// incremental engine instead (bit-identical answers, a fraction of the
/// work).
fn score_set(
    net: &Network,
    set: &DemandSet,
    robust: RobustObjective,
    weights: &[u32],
    objective: Objective,
) -> Score {
    let w = WeightSetting::new(net, weights.iter().map(|&x| x as f64).collect())
        .expect("integer weights in range are always valid");
    let router = Router::new(net, &w);
    let caps = net.capacities();
    let mut phis = Vec::with_capacity(set.len());
    let mut mlus = Vec::with_capacity(set.len());
    for demands in set.matrices() {
        match router.evaluate(demands, &WaypointSetting::none(demands.len())) {
            Err(_) => return Score(f64::INFINITY, f64::INFINITY),
            Ok(report) => {
                phis.push(fortz_phi(&report.loads, caps));
                mlus.push(report.mlu);
            }
        }
    }
    score_from(robust.aggregate(&phis), robust.aggregate(&mlus), objective)
}

/// Scales the inverse-capacity setting into the integer range
/// `[1, max_weight]` — the conventional warm start.
///
/// # Panics
/// Panics with a descriptive message on degenerate inputs — an empty edge
/// set or non-finite/non-positive capacities — instead of silently emitting
/// `INFINITY`-derived garbage weights.
fn inverse_capacity_start(net: &Network, max_weight: u32) -> Vec<u32> {
    assert!(
        net.edge_count() > 0,
        "inverse-capacity start is undefined on a network with no links"
    );
    let min_cap = net
        .capacities()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_cap.is_finite() && min_cap > 0.0,
        "inverse-capacity start needs positive finite link capacities (min capacity = {min_cap})"
    );
    net.capacities()
        .iter()
        .map(|&c| {
            let w = (min_cap / c * max_weight as f64).round();
            (w as u32).clamp(1, max_weight)
        })
        .collect()
}

/// Builds one incremental evaluation engine per matrix for the current
/// integer weights.
///
/// `None` when any matrix is unroutable (construction performs the same
/// full evaluation `score_set` would): the caller then falls back to the
/// scratch scorer, whose infinite score rejects every move — the
/// pre-incremental behavior.
fn build_evaluators<'n>(
    net: &'n Network,
    set: &DemandSet,
    weights: &[u32],
) -> Option<Vec<IncrementalEvaluator<'n>>> {
    let w = WeightSetting::new(net, weights.iter().map(|&x| x as f64).collect())
        .expect("integer weights in range are always valid");
    let mut evs = Vec::with_capacity(set.len());
    for demands in set.matrices() {
        evs.push(
            IncrementalEvaluator::new(net, &w, demands, &WaypointSetting::none(demands.len()))
                .ok()?,
        );
    }
    Some(evs)
}

/// The robust-aggregated lexicographic score of the evaluators' base state.
fn evaluators_score(
    evs: &[IncrementalEvaluator<'_>],
    robust: RobustObjective,
    objective: Objective,
) -> Score {
    let phis: Vec<f64> = evs.iter().map(IncrementalEvaluator::phi).collect();
    let mlus: Vec<f64> = evs.iter().map(IncrementalEvaluator::mlu).collect();
    score_from(robust.aggregate(&phis), robust.aggregate(&mlus), objective)
}

thread_local! {
    /// Per-worker weight buffer for the from-scratch scorer, so speculative
    /// candidate evaluation does not allocate a fresh vector per candidate.
    static SCRATCH_WEIGHTS: std::cell::RefCell<Vec<u32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs the HeurOSPF local search, returning the best weight setting found.
///
/// Deterministic for a fixed seed. Demands that are unroutable under every
/// weight setting make every score infinite; the inverse-capacity start is
/// then returned unchanged.
pub fn heur_ospf(net: &Network, demands: &DemandList, cfg: &HeurOspfConfig) -> WeightSetting {
    heur_ospf_robust(
        net,
        &DemandSet::single(demands.clone()),
        RobustObjective::WorstCase,
        cfg,
    )
}

/// Runs the HeurOSPF local search against a set of traffic matrices,
/// descending on the `robust`-aggregated per-matrix `(Φ, MLU)`.
///
/// Every candidate weight change is probed against every matrix (one
/// incremental evaluator per matrix, the `(candidate × matrix)` grid
/// scored speculatively on the `segrout-par` pool) and the per-matrix
/// metrics fold through `robust` before the lexicographic comparison. A
/// single-matrix set is bit-identical to [`heur_ospf`].
///
/// # Panics
/// Panics on an empty demand set or `max_weight < 2`.
pub fn heur_ospf_robust(
    net: &Network,
    set: &DemandSet,
    robust: RobustObjective,
    cfg: &HeurOspfConfig,
) -> WeightSetting {
    assert!(
        cfg.max_weight >= 2,
        "max_weight must allow at least {{1, 2}}"
    );
    assert!(!set.is_empty(), "demand set must hold at least one matrix");
    let _span = segrout_obs::span("heurospf");
    descend(
        net,
        cfg,
        robust,
        set.len(),
        |w| build_evaluators(net, set, w),
        |w| score_set(net, set, robust, w, cfg.objective),
        |cur, evs| {
            // Commit-point hook: every evaluator's repaired state must equal
            // a from-scratch evaluation of the accepted weights.
            let w = WeightSetting::new(net, cur.iter().map(|&x| f64::from(x)).collect())
                .expect("integer weights in range are always valid");
            for (demands, ev) in set.matrices().zip(evs.iter()) {
                segrout_core::hooks::assert_commit_consistent(
                    net,
                    &w,
                    demands,
                    &WaypointSetting::none(demands.len()),
                    ev.loads(),
                    ev.mlu(),
                );
            }
        },
    )
}

/// Runs the HeurOSPF local search against a [`FailureSet`], descending on
/// the `robust`-aggregated `(Φ, MLU)` over all *surviving* failure
/// scenarios: the intact topology plus every pattern that keeps all demands
/// routable.
///
/// Whether a pattern disconnects a demand depends only on the topology —
/// masked routing never consults weights for reachability — so the
/// surviving-scenario set is classified once up front and stays fixed for
/// the whole search. Every candidate weight change is then probed against
/// every scenario (one [`IncrementalEvaluator`] per scenario, built with
/// [`IncrementalEvaluator::new_with_failures`]; the `(candidate × scenario)`
/// grid fans out on the `segrout-par` pool) and the per-scenario metrics
/// fold through `robust` before the lexicographic comparison. Probing a
/// scenario's own dead link is a no-op by construction: a failed link's
/// weight cannot steer traffic that never crosses it.
///
/// # Panics
/// Panics when `max_weight < 2`.
pub fn heur_ospf_failure_robust<'n>(
    net: &'n Network,
    demands: &DemandList,
    failures: &FailureSet,
    robust: RobustObjective,
    cfg: &HeurOspfConfig,
) -> WeightSetting {
    assert!(
        cfg.max_weight >= 2,
        "max_weight must allow at least {{1, 2}}"
    );
    let _span = segrout_obs::span("heurospf_fail");
    let wp = WaypointSetting::none(demands.len());

    // Classify disconnecting patterns once. Construction performs a full
    // masked evaluation, so `Err(Unroutable)` is exactly "this pattern cuts
    // some demand off its destination" — those scenarios are excluded from
    // the aggregation (the sweep engine reports them separately; an
    // optimizer cannot weight its way around a partitioned topology).
    let probe_w = WeightSetting::unit(net);
    let mut scenarios: Vec<&[EdgeId]> = vec![&[]];
    let mut disconnected = 0usize;
    for p in failures.patterns() {
        match IncrementalEvaluator::new_with_failures(net, &probe_w, demands, &wp, &p.dead) {
            Ok(_) => scenarios.push(&p.dead),
            Err(_) => disconnected += 1,
        }
    }
    let k = scenarios.len();
    event!(
        Level::Debug,
        "heurospf_fail.setup",
        patterns = failures.len(),
        scenarios = k,
        disconnected = disconnected,
    );

    let build = |w: &[u32]| -> Option<Vec<IncrementalEvaluator<'n>>> {
        let ws = WeightSetting::new(net, w.iter().map(|&x| f64::from(x)).collect())
            .expect("integer weights in range are always valid");
        let mut evs = Vec::with_capacity(scenarios.len());
        for dead in &scenarios {
            evs.push(IncrementalEvaluator::new_with_failures(net, &ws, demands, &wp, dead).ok()?);
        }
        Some(evs)
    };
    descend(
        net,
        cfg,
        robust,
        k,
        build,
        |w| {
            // From-scratch scorer: scenario-evaluator construction *is* the
            // full masked evaluation, so build-and-aggregate is the scratch
            // score.
            let ws = WeightSetting::new(net, w.iter().map(|&x| f64::from(x)).collect())
                .expect("integer weights in range are always valid");
            let mut phis = Vec::with_capacity(scenarios.len());
            let mut mlus = Vec::with_capacity(scenarios.len());
            for dead in &scenarios {
                match IncrementalEvaluator::new_with_failures(net, &ws, demands, &wp, dead) {
                    Ok(ev) => {
                        phis.push(ev.phi());
                        mlus.push(ev.mlu());
                    }
                    Err(_) => return Score(f64::INFINITY, f64::INFINITY),
                }
            }
            score_from(
                robust.aggregate(&phis),
                robust.aggregate(&mlus),
                cfg.objective,
            )
        },
        |cur, evs| {
            // Commit-point hook: each scenario's repaired state must equal a
            // from-scratch masked evaluation of the accepted weights.
            let ws = WeightSetting::new(net, cur.iter().map(|&x| f64::from(x)).collect())
                .expect("integer weights in range are always valid");
            for (dead, ev) in scenarios.iter().zip(evs.iter()) {
                let fresh = IncrementalEvaluator::new_with_failures(net, &ws, demands, &wp, dead)
                    .expect("surviving scenarios stay routable under any weights");
                assert_eq!(
                    fresh.mlu().to_bits(),
                    ev.mlu().to_bits(),
                    "committed failure-scenario state diverged from scratch"
                );
                assert_eq!(
                    fresh.phi().to_bits(),
                    ev.phi().to_bits(),
                    "committed failure-scenario state diverged from scratch"
                );
            }
        },
    )
}

/// The shared first-improvement descent: restarts, shuffled link scans, and
/// the speculative `(candidate × scenario)` probe grid, generic over what a
/// "scenario" is. [`heur_ospf_robust`] instantiates it with one incremental
/// evaluator per traffic matrix; [`heur_ospf_failure_robust`] with one per
/// failure scenario.
///
/// `build` constructs the per-scenario evaluators for a weight vector
/// (`None` ⇒ some scenario is unroutable ⇒ the scratch scorer's infinite
/// score rejects every move), `scratch_score` is the from-scratch fallback
/// scorer (also used when `use_incremental` is off), and `debug_check`
/// asserts commit consistency of every evaluator after an accepted move
/// (invoked in debug builds only).
fn descend<'n, B, S, C>(
    net: &'n Network,
    cfg: &HeurOspfConfig,
    robust: RobustObjective,
    k: usize,
    build: B,
    scratch_score: S,
    debug_check: C,
) -> WeightSetting
where
    B: Fn(&[u32]) -> Option<Vec<IncrementalEvaluator<'n>>>,
    S: Fn(&[u32]) -> Score + Sync,
    C: Fn(&[u32], &[IncrementalEvaluator<'n>]),
{
    // `heurospf.iterations` counts candidate-weight evaluations (one full
    // ECMP scoring each); the trajectory series records the incumbent MLU at
    // every accepted move — the Figure 4-6 convergence signal. Robust runs
    // (`K > 1`) additionally count per-matrix evaluations, K per candidate.
    let iterations = segrout_obs::counter("heurospf.iterations");
    let matrix_evals = (k > 1).then(|| segrout_obs::counter("robust.matrix_evals"));
    let trajectory = segrout_obs::series("heurospf.mlu_trajectory");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = net.edge_count();

    let mut best: Vec<u32> = inverse_capacity_start(net, cfg.max_weight);
    let mut best_score = scratch_score(&best);
    iterations.inc();
    // Local evaluation count for the flight recorder (the global counter is
    // shared across concurrent runs in one process); `trace_best` gates the
    // trace on *global* improvement so the recorded best-MLU curve is
    // monotone across restarts. Tracing never feeds back into the search.
    let mut total_evals: u64 = 1;
    let mut trace_best = best_score;
    segrout_obs::trace_point(
        "heurospf.start",
        total_evals,
        best_score.phi(cfg.objective),
        best_score.mlu(cfg.objective),
    );
    trajectory.push(best_score.mlu(cfg.objective));
    event!(
        Level::Debug,
        "heurospf.start",
        edges = m,
        matrices = k,
        restarts = cfg.restarts,
        start_mlu = best_score.mlu(cfg.objective),
    );

    for restart in 0..=cfg.restarts {
        let mut cur: Vec<u32> = if restart == 0 {
            best.clone()
        } else {
            (0..m).map(|_| rng.gen_range(1..=cfg.max_weight)).collect()
        };
        // The evaluators own the descent's base state (weights, per-dest
        // DAGs and load partials, Φ/MLU per matrix); construction is one
        // full evaluation per matrix, so their aggregated score is the
        // restart's starting score.
        let mut evaluators = if cfg.use_incremental {
            build(&cur)
        } else {
            None
        };
        let mut cur_score = match &evaluators {
            Some(evs) => evaluators_score(evs, robust, cfg.objective),
            None => scratch_score(&cur),
        };
        iterations.inc();
        total_evals += 1;
        event!(
            Level::Debug,
            "heurospf.restart",
            restart = restart,
            mlu = cur_score.mlu(cfg.objective),
        );
        let mut visited = VisitedSet::default();
        visited.insert(&cur);

        let mut edge_order: Vec<usize> = (0..m).collect();
        for pass in 0..cfg.max_passes {
            let mut improved = false;
            // Batched locally and flushed once per pass so the hot candidate
            // loop pays no atomic traffic.
            let mut pass_evals: u64 = 0;
            edge_order.shuffle(&mut rng);
            for &e in &edge_order {
                let old = cur[e];
                // Candidate moves: small steps, halving/doubling, extremes,
                // and one random value — a cheap but diverse neighbourhood.
                // Computed before any evaluation so the RNG stream is
                // independent of how the neighbourhood is scheduled.
                let candidates = [
                    old.saturating_sub(1).max(1),
                    (old + 1).min(cfg.max_weight),
                    (old / 2).max(1),
                    (old * 2).min(cfg.max_weight),
                    1,
                    cfg.max_weight,
                    rng.gen_range(1..=cfg.max_weight),
                ];
                // Filter against the visited set serially, in candidate
                // order (set membership must not depend on scheduling).
                let mut fresh: Vec<u32> = Vec::with_capacity(candidates.len());
                for &cand in &candidates {
                    if cand == old {
                        continue;
                    }
                    cur[e] = cand;
                    let is_new = visited.insert(&cur);
                    cur[e] = old;
                    if is_new {
                        fresh.push(cand);
                    }
                }
                // Score the whole neighbourhood speculatively on the pool,
                // then accept the first improving candidate *in candidate
                // order* — the ordered (score, index) reduction that keeps
                // the search bit-identical at any thread count.
                pass_evals += fresh.len() as u64;
                match evaluators.as_mut() {
                    Some(evs) => {
                        // Probes borrow the base state read-only: each one
                        // repairs only the destinations the single-edge
                        // change can affect, then re-sums the cached load
                        // partials — no full ECMP evaluation, no weight
                        // vector clone. The fan-out covers the full
                        // (candidate × matrix) grid, candidate-major, so
                        // candidate `ci`'s probes live at `[ci·K, ci·K+K)`.
                        let ev_refs: &[IncrementalEvaluator] = evs;
                        let eid = segrout_core::EdgeId(e as u32);
                        let tasks: Vec<(usize, usize)> = fresh
                            .iter()
                            .enumerate()
                            .flat_map(|(ci, _)| (0..k).map(move |mi| (ci, mi)))
                            .collect();
                        let mut probes = segrout_par::par_map_slice(&tasks, |_, &(ci, mi)| {
                            ev_refs[mi].probe(eid, f64::from(fresh[ci])).ok()
                        });
                        for (idx, &cand) in fresh.iter().enumerate() {
                            let group = &probes[idx * k..(idx + 1) * k];
                            let s = if group.iter().all(Option::is_some) {
                                let mut phis = Vec::with_capacity(k);
                                let mut mlus = Vec::with_capacity(k);
                                for p in group.iter().flatten() {
                                    phis.push(p.phi);
                                    mlus.push(p.mlu);
                                }
                                score_from(
                                    robust.aggregate(&phis),
                                    robust.aggregate(&mlus),
                                    cfg.objective,
                                )
                            } else {
                                Score(f64::INFINITY, f64::INFINITY)
                            };
                            if s.better_than(&cur_score) {
                                for (mi, ev) in evs.iter_mut().enumerate() {
                                    let p = probes[idx * k + mi]
                                        .take()
                                        .expect("an infinite score never improves");
                                    ev.commit(p);
                                }
                                cur[e] = cand;
                                cur_score = s;
                                improved = true;
                                if cfg!(debug_assertions) {
                                    debug_check(&cur, evs);
                                }
                                trajectory.push(cur_score.mlu(cfg.objective));
                                if segrout_obs::trace_enabled()
                                    && cur_score.better_than(&trace_best)
                                {
                                    trace_best = cur_score;
                                    segrout_obs::trace_point(
                                        "heurospf.accept",
                                        total_evals + pass_evals,
                                        cur_score.phi(cfg.objective),
                                        cur_score.mlu(cfg.objective),
                                    );
                                    // Robust runs also record the accepted
                                    // move's per-matrix state (`iter` is the
                                    // matrix index within the set).
                                    if k > 1 {
                                        for (mi, ev) in evs.iter().enumerate() {
                                            segrout_obs::trace_point(
                                                "robust.matrix",
                                                mi as u64,
                                                ev.phi(),
                                                ev.mlu(),
                                            );
                                        }
                                    }
                                }
                                event!(
                                    Level::Trace,
                                    "heurospf.accept",
                                    edge = e,
                                    weight = cand,
                                    mlu = cur_score.mlu(cfg.objective),
                                );
                                break; // first improvement: keep cand
                            }
                        }
                    }
                    None => {
                        let scores = segrout_par::par_map_slice(&fresh, |_, &cand| {
                            SCRATCH_WEIGHTS.with(|buf| {
                                let mut w = buf.borrow_mut();
                                w.clear();
                                w.extend_from_slice(&cur);
                                w[e] = cand;
                                scratch_score(&w)
                            })
                        });
                        for (cand, s) in fresh.iter().zip(&scores) {
                            if s.better_than(&cur_score) {
                                cur[e] = *cand;
                                cur_score = *s;
                                improved = true;
                                trajectory.push(cur_score.mlu(cfg.objective));
                                if segrout_obs::trace_enabled()
                                    && cur_score.better_than(&trace_best)
                                {
                                    trace_best = cur_score;
                                    segrout_obs::trace_point(
                                        "heurospf.accept",
                                        total_evals + pass_evals,
                                        cur_score.phi(cfg.objective),
                                        cur_score.mlu(cfg.objective),
                                    );
                                }
                                event!(
                                    Level::Trace,
                                    "heurospf.accept",
                                    edge = e,
                                    weight = *cand,
                                    mlu = cur_score.mlu(cfg.objective),
                                );
                                break; // first improvement: keep cand
                            }
                        }
                    }
                }
            }
            iterations.add(pass_evals);
            if let Some(ctr) = &matrix_evals {
                ctr.add(pass_evals * k as u64);
            }
            total_evals += pass_evals;
            event!(
                Level::Debug,
                "heurospf.pass",
                restart = restart,
                pass = pass,
                evals = pass_evals,
                improved = improved,
                mlu = cur_score.mlu(cfg.objective),
            );
            if !improved {
                break;
            }
        }
        if cur_score.better_than(&best_score) {
            best_score = cur_score;
            best = cur;
        }
    }

    segrout_obs::gauge("heurospf.best_mlu").set(best_score.mlu(cfg.objective));
    segrout_obs::trace_point(
        "heurospf.done",
        total_evals,
        best_score.phi(cfg.objective),
        best_score.mlu(cfg.objective),
    );
    event!(
        Level::Info,
        "heurospf.done",
        evals = iterations.get(),
        best_mlu = best_score.mlu(cfg.objective),
    );
    WeightSetting::new(net, best.iter().map(|&x| x as f64).collect())
        .expect("integer weights in range are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::NodeId;

    /// The Figure-1 style trap: direct link (s,t) with capacity 1, detour
    /// with capacity 10. Unit weights overload the direct link; the local
    /// search must lengthen it.
    fn trap_network() -> (Network, DemandList) {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(2), 1.0); // direct, thin
        b.link(NodeId(0), NodeId(1), 10.0);
        b.link(NodeId(1), NodeId(2), 10.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 10.0);
        (net, d)
    }

    #[test]
    fn escapes_the_thin_direct_link() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig::default();
        let w = heur_ospf(&net, &d, &cfg);
        let router = Router::new(&net, &w);
        let mlu = router.mlu(&d).unwrap();
        // Routing everything over the detour gives MLU 1.0; splitting gives
        // 5.0; direct-only gives 10. The search must find <= 1.0.
        assert!(mlu <= 1.0 + 1e-9, "mlu = {mlu}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig::default();
        let a = heur_ospf(&net, &d, &cfg);
        let b = heur_ospf(&net, &d, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn weights_stay_in_range() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig {
            max_weight: 7,
            ..Default::default()
        };
        let w = heur_ospf(&net, &d, &cfg);
        for &x in w.as_slice() {
            assert!((1.0..=7.0).contains(&x));
            assert_eq!(x, x.round());
        }
    }

    #[test]
    fn phi_objective_also_improves() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig {
            objective: Objective::PhiThenMlu,
            ..Default::default()
        };
        let w = heur_ospf(&net, &d, &cfg);
        let router = Router::new(&net, &w);
        assert!(router.mlu(&d).unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn multi_demand_balancing() {
        // Square with two crossing demands; unit capacities force the search
        // to keep the demands on disjoint sides.
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        b.bilink(NodeId(3), NodeId(0), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        d.push(NodeId(2), NodeId(0), 1.0);
        let w = heur_ospf(&net, &d, &HeurOspfConfig::default());
        let router = Router::new(&net, &w);
        // Perfectly balanced: each unit takes one two-hop side, MLU 1.0 (or
        // 0.5 each way if split). Must not exceed 1.
        assert!(router.mlu(&d).unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn inverse_capacity_start_is_sane() {
        let (net, _) = trap_network();
        let start = inverse_capacity_start(&net, 20);
        assert_eq!(start[0], 20); // thin link gets the largest weight
        assert_eq!(start[1], 2); // 1/10 of max, rounded
    }

    #[test]
    #[should_panic(expected = "no links")]
    fn inverse_capacity_start_rejects_edgeless_network() {
        let net = Network::builder(3).build().unwrap();
        inverse_capacity_start(&net, 20);
    }

    /// The visited set must be exact: every distinct weight vector is fresh
    /// exactly once, regardless of how collision-prone its content is. (The
    /// old 64-bit digest version could silently discard a never-evaluated
    /// candidate on a hash collision.)
    #[test]
    fn visited_set_is_exact() {
        let mut visited = VisitedSet::default();
        let mut vectors: Vec<Vec<u32>> = Vec::new();
        // Small, highly regular vectors — the worst case for weak digests.
        for a in 1..=40u32 {
            for b in 1..=40u32 {
                vectors.push(vec![a, b]);
                vectors.push(vec![b, a]);
            }
        }
        for (i, v) in vectors.iter().enumerate() {
            // a==b produces the only duplicates in the stream; every first
            // occurrence must be fresh, every repeat must not.
            let first_occurrence = vectors.iter().position(|x| x == v) == Some(i);
            assert_eq!(visited.insert(v), first_occurrence, "vector {v:?}");
        }
        for v in &vectors {
            assert!(!visited.insert(v), "vector {v:?} reported fresh twice");
        }
    }

    /// The incremental scorer must retrace the from-scratch scorer's search
    /// byte for byte: same accepted moves, same final weights.
    #[test]
    fn incremental_and_scratch_trajectories_agree() {
        let mut nets: Vec<(Network, DemandList)> = vec![trap_network()];
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        b.bilink(NodeId(3), NodeId(0), 1.0);
        b.bilink(NodeId(0), NodeId(2), 3.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        d.push(NodeId(2), NodeId(0), 1.0);
        d.push(NodeId(1), NodeId(3), 0.5);
        nets.push((net, d));

        for (net, d) in &nets {
            for objective in [Objective::MluThenPhi, Objective::PhiThenMlu] {
                let incremental = heur_ospf(
                    net,
                    d,
                    &HeurOspfConfig {
                        objective,
                        use_incremental: true,
                        ..Default::default()
                    },
                );
                let scratch = heur_ospf(
                    net,
                    d,
                    &HeurOspfConfig {
                        objective,
                        use_incremental: false,
                        ..Default::default()
                    },
                );
                assert_eq!(incremental.as_slice(), scratch.as_slice());
            }
        }
    }

    /// A two-matrix robust search must find weights whose *worst-case* MLU
    /// beats optimizing for either matrix alone on an instance built to
    /// punish single-matrix tuning.
    #[test]
    fn robust_search_protects_the_worst_matrix() {
        // Two parallel two-hop corridors between 0 and 3; matrix A loads
        // (0→3), matrix B loads (3→0). Tuning weights for one direction
        // only is free to break the other.
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(3), 1.0);
        b.bilink(NodeId(0), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut a = DemandList::new();
        a.push(NodeId(0), NodeId(3), 1.6);
        let mut bm = DemandList::new();
        bm.push(NodeId(3), NodeId(0), 1.6);
        let mut set = DemandSet::single(a);
        set.push("reverse", bm);

        let w = heur_ospf_robust(
            &net,
            &set,
            RobustObjective::WorstCase,
            &HeurOspfConfig::default(),
        );
        let rep =
            segrout_core::evaluate_robust(&net, &w, &set, &WaypointSetting::none(set.pair_count()))
                .unwrap();
        // Splitting each 1.6-unit demand across both corridors gives 0.8 on
        // every link; any single-corridor routing hits 1.6.
        assert!(rep.worst_mlu() <= 0.8 + 1e-9, "worst {}", rep.worst_mlu());
    }

    /// Four parallel links, one fat: the inverse-capacity start puts all
    /// traffic on the fat link (every thin-link failure scenario — and the
    /// intact one — then sits at MLU 1.0); the failure-robust search must
    /// lengthen the fat link into the tie so that losing any one link
    /// still leaves an even split over the remaining three.
    #[test]
    fn failure_robust_search_lowers_worst_case() {
        let mut b = Network::builder(2);
        b.bilink(NodeId(0), NodeId(1), 2.0); // fat
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 2.0);
        let failures = FailureSet::enumerate(&net, false);

        let w = heur_ospf_failure_robust(
            &net,
            &d,
            &failures,
            RobustObjective::WorstCase,
            &HeurOspfConfig::default(),
        );
        let rep = segrout_core::sweep_failures(
            &net,
            &w,
            &d,
            &WaypointSetting::none(d.len()),
            &failures,
            &[1.0],
        )
        .unwrap();
        // All four links tied: intact split 0.5 each (MLU 0.5); losing any
        // link leaves a 3-way split of 2.0 = 2/3 on a thin link — the
        // optimum, well below the start's worst case of 1.0.
        assert!(
            rep.base_mlu[0] <= 0.5 + 1e-9,
            "intact mlu = {}",
            rep.base_mlu[0]
        );
        let worst = rep.worst.as_ref().expect("patterns evaluated").mlu;
        assert!(worst <= 2.0 / 3.0 + 1e-9, "worst-case mlu = {worst}");
        assert_eq!(rep.disconnects, 0);
    }

    #[test]
    fn failure_robust_deterministic_and_matches_scratch() {
        let mut b = Network::builder(5);
        b.bilink(NodeId(0), NodeId(1), 2.0);
        b.bilink(NodeId(1), NodeId(4), 2.0);
        b.bilink(NodeId(0), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(4), 1.0);
        b.bilink(NodeId(0), NodeId(3), 1.0);
        b.bilink(NodeId(3), NodeId(4), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(4), 1.5);
        d.push(NodeId(4), NodeId(0), 0.5);
        let failures = FailureSet::enumerate(&net, false);

        let incremental = heur_ospf_failure_robust(
            &net,
            &d,
            &failures,
            RobustObjective::WorstCase,
            &HeurOspfConfig::default(),
        );
        let again = heur_ospf_failure_robust(
            &net,
            &d,
            &failures,
            RobustObjective::WorstCase,
            &HeurOspfConfig::default(),
        );
        assert_eq!(incremental.as_slice(), again.as_slice());
        // The probe grid must retrace the scratch scorer's trajectory byte
        // for byte (same contract as the plain search).
        let scratch = heur_ospf_failure_robust(
            &net,
            &d,
            &failures,
            RobustObjective::WorstCase,
            &HeurOspfConfig {
                use_incremental: false,
                ..Default::default()
            },
        );
        assert_eq!(incremental.as_slice(), scratch.as_slice());
    }

    /// A pendant demand whose only link appears in the failure set: those
    /// patterns are classified as disconnecting and excluded, and the
    /// search still optimizes the surviving scenarios.
    #[test]
    fn failure_robust_skips_disconnecting_patterns() {
        let mut b = Network::builder(5);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(3), 1.0);
        b.bilink(NodeId(0), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        b.bilink(NodeId(3), NodeId(4), 1.0); // pendant: only route to 4
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.2);
        d.push(NodeId(0), NodeId(4), 0.3);
        let failures = FailureSet::enumerate(&net, false);

        let w = heur_ospf_failure_robust(
            &net,
            &d,
            &failures,
            RobustObjective::WorstCase,
            &HeurOspfConfig::default(),
        );
        for &x in w.as_slice() {
            assert!((1.0..=20.0).contains(&x));
            assert_eq!(x, x.round());
        }
        // Sanity: the surviving worst case (losing one diamond corridor
        // reroutes 1.2 + 0.3 onto the other) is achieved.
        let rep = segrout_core::sweep_failures(
            &net,
            &w,
            &d,
            &WaypointSetting::none(d.len()),
            &failures,
            &[1.0],
        )
        .unwrap();
        assert_eq!(rep.disconnects, 1, "only the pendant link disconnects");
        let worst = rep.worst.as_ref().expect("patterns evaluated").mlu;
        assert!(worst <= 1.5 + 1e-9, "worst-case mlu = {worst}");
    }

    /// A one-matrix `DemandSet` must reproduce the classic single-matrix
    /// search bit for bit (the module-level reduction contract).
    #[test]
    fn single_matrix_set_reduces_bit_identically() {
        let (net, d) = trap_network();
        for use_incremental in [true, false] {
            let cfg = HeurOspfConfig {
                use_incremental,
                ..Default::default()
            };
            let classic = heur_ospf(&net, &d, &cfg);
            let robust = heur_ospf_robust(
                &net,
                &DemandSet::single(d.clone()),
                RobustObjective::Quantile(1.0),
                &cfg,
            );
            assert_eq!(classic.as_slice(), robust.as_slice());
        }
    }
}
