//! HeurOSPF: the Fortz–Thorup local search for link-weight optimization
//! (paper \[11\], used as the subroutine of JOINT-Heur in §6).
//!
//! Weights are integers in `[1, max_weight]`. The search starts from the
//! inverse-capacity setting (plus optional random restarts), and repeatedly
//! scans the links in random order trying a small family of candidate weight
//! changes per link, accepting the first strict improvement of the
//! objective. A hash set of visited weight vectors avoids re-evaluating
//! settings, and a no-improvement full pass ends a descent.
//!
//! Each link's candidate neighbourhood is scored **speculatively in
//! parallel** on the `segrout-par` pool (one full ECMP evaluation per
//! candidate), then the first improving candidate in fixed candidate order
//! is accepted. Candidate generation, visited-set filtering, and the
//! accepting reduction all run serially on the caller, so the search is
//! bit-identical at any thread count.
//!
//! Objective: the paper's local search minimizes the piecewise-linear
//! congestion cost `Φ` (which correlates with, and tie-breaks on, MLU); the
//! evaluation in §7 reports MLU. Both orderings are supported.

use segrout_core::rng::{SliceRandom, StdRng};
use segrout_core::{fortz_phi, DemandList, Network, Router, WaypointSetting, WeightSetting};
use segrout_obs::{event, Level};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Which objective the local search descends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Lexicographic `(Φ, MLU)` — the Fortz–Thorup congestion cost first.
    PhiThenMlu,
    /// Lexicographic `(MLU, Φ)` — minimize the paper's reported metric
    /// directly, tie-breaking on Φ.
    MluThenPhi,
}

/// Configuration of the local search.
#[derive(Clone, Debug)]
pub struct HeurOspfConfig {
    /// Largest integer weight (Fortz–Thorup use 16–20 for ISP topologies).
    pub max_weight: u32,
    /// Number of random restarts in addition to the inverse-capacity start.
    pub restarts: usize,
    /// Upper bound on full link-scan passes per descent.
    pub max_passes: usize,
    /// Objective ordering.
    pub objective: Objective,
    /// RNG seed (the search is deterministic given the seed).
    pub seed: u64,
}

impl Default for HeurOspfConfig {
    fn default() -> Self {
        Self {
            max_weight: 20,
            restarts: 2,
            max_passes: 30,
            objective: Objective::MluThenPhi,
            seed: 0x5eed,
        }
    }
}

/// Objective value: a lexicographic pair.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Score(f64, f64);

impl Score {
    /// The MLU component of the lexicographic pair.
    fn mlu(&self, objective: Objective) -> f64 {
        match objective {
            Objective::PhiThenMlu => self.1,
            Objective::MluThenPhi => self.0,
        }
    }

    fn better_than(&self, other: &Score) -> bool {
        const REL: f64 = 1e-9;
        let tol0 = REL * (1.0 + other.0.abs());
        if self.0 < other.0 - tol0 {
            return true;
        }
        if self.0 > other.0 + tol0 {
            return false;
        }
        self.1 < other.1 - REL * (1.0 + other.1.abs())
    }
}

fn hash_weights(w: &[u32]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    w.hash(&mut h);
    h.finish()
}

/// Evaluates integer weights, returning the configured lexicographic score.
/// Unroutable demand sets score infinitely bad.
fn score(net: &Network, demands: &DemandList, weights: &[u32], objective: Objective) -> Score {
    let w = WeightSetting::new(net, weights.iter().map(|&x| x as f64).collect())
        .expect("integer weights in range are always valid");
    let router = Router::new(net, &w);
    match router.evaluate(demands, &WaypointSetting::none(demands.len())) {
        Err(_) => Score(f64::INFINITY, f64::INFINITY),
        Ok(report) => {
            let phi = fortz_phi(&report.loads, net.capacities());
            match objective {
                Objective::PhiThenMlu => Score(phi, report.mlu),
                Objective::MluThenPhi => Score(report.mlu, phi),
            }
        }
    }
}

/// Scales the inverse-capacity setting into the integer range
/// `[1, max_weight]` — the conventional warm start.
fn inverse_capacity_start(net: &Network, max_weight: u32) -> Vec<u32> {
    let min_cap = net
        .capacities()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    net.capacities()
        .iter()
        .map(|&c| {
            let w = (min_cap / c * max_weight as f64).round();
            (w as u32).clamp(1, max_weight)
        })
        .collect()
}

/// Runs the HeurOSPF local search, returning the best weight setting found.
///
/// Deterministic for a fixed seed. Demands that are unroutable under every
/// weight setting make every score infinite; the inverse-capacity start is
/// then returned unchanged.
pub fn heur_ospf(net: &Network, demands: &DemandList, cfg: &HeurOspfConfig) -> WeightSetting {
    assert!(
        cfg.max_weight >= 2,
        "max_weight must allow at least {{1, 2}}"
    );
    let _span = segrout_obs::span("heurospf");
    // `heurospf.iterations` counts candidate-weight evaluations (one full
    // ECMP scoring each); the trajectory series records the incumbent MLU at
    // every accepted move — the Figure 4-6 convergence signal.
    let iterations = segrout_obs::counter("heurospf.iterations");
    let trajectory = segrout_obs::series("heurospf.mlu_trajectory");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = net.edge_count();

    let mut best: Vec<u32> = inverse_capacity_start(net, cfg.max_weight);
    let mut best_score = score(net, demands, &best, cfg.objective);
    iterations.inc();
    trajectory.push(best_score.mlu(cfg.objective));
    event!(
        Level::Debug,
        "heurospf.start",
        edges = m,
        restarts = cfg.restarts,
        start_mlu = best_score.mlu(cfg.objective),
    );

    for restart in 0..=cfg.restarts {
        let mut cur: Vec<u32> = if restart == 0 {
            best.clone()
        } else {
            (0..m).map(|_| rng.gen_range(1..=cfg.max_weight)).collect()
        };
        let mut cur_score = score(net, demands, &cur, cfg.objective);
        iterations.inc();
        event!(
            Level::Debug,
            "heurospf.restart",
            restart = restart,
            mlu = cur_score.mlu(cfg.objective),
        );
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(hash_weights(&cur));

        let mut edge_order: Vec<usize> = (0..m).collect();
        for pass in 0..cfg.max_passes {
            let mut improved = false;
            // Batched locally and flushed once per pass so the hot candidate
            // loop pays no atomic traffic.
            let mut pass_evals: u64 = 0;
            edge_order.shuffle(&mut rng);
            for &e in &edge_order {
                let old = cur[e];
                // Candidate moves: small steps, halving/doubling, extremes,
                // and one random value — a cheap but diverse neighbourhood.
                // Computed before any evaluation so the RNG stream is
                // independent of how the neighbourhood is scheduled.
                let candidates = [
                    old.saturating_sub(1).max(1),
                    (old + 1).min(cfg.max_weight),
                    (old / 2).max(1),
                    (old * 2).min(cfg.max_weight),
                    1,
                    cfg.max_weight,
                    rng.gen_range(1..=cfg.max_weight),
                ];
                // Filter against the visited set serially, in candidate
                // order (set membership must not depend on scheduling).
                let mut fresh: Vec<u32> = Vec::with_capacity(candidates.len());
                for &cand in &candidates {
                    if cand == old {
                        continue;
                    }
                    cur[e] = cand;
                    let h = hash_weights(&cur);
                    cur[e] = old;
                    if visited.insert(h) {
                        fresh.push(cand);
                    }
                }
                // Score the whole neighbourhood speculatively on the pool,
                // then accept the first improving candidate *in candidate
                // order* — the ordered (score, index) reduction that keeps
                // the search bit-identical at any thread count.
                let scores = segrout_par::par_map_slice(&fresh, |_, &cand| {
                    let mut w = cur.clone();
                    w[e] = cand;
                    score(net, demands, &w, cfg.objective)
                });
                pass_evals += fresh.len() as u64;
                for (cand, s) in fresh.iter().zip(&scores) {
                    if s.better_than(&cur_score) {
                        cur[e] = *cand;
                        cur_score = *s;
                        improved = true;
                        trajectory.push(cur_score.mlu(cfg.objective));
                        event!(
                            Level::Trace,
                            "heurospf.accept",
                            edge = e,
                            weight = *cand,
                            mlu = cur_score.mlu(cfg.objective),
                        );
                        break; // first improvement: keep cand
                    }
                }
            }
            iterations.add(pass_evals);
            event!(
                Level::Debug,
                "heurospf.pass",
                restart = restart,
                pass = pass,
                evals = pass_evals,
                improved = improved,
                mlu = cur_score.mlu(cfg.objective),
            );
            if !improved {
                break;
            }
        }
        if cur_score.better_than(&best_score) {
            best_score = cur_score;
            best = cur;
        }
    }

    segrout_obs::gauge("heurospf.best_mlu").set(best_score.mlu(cfg.objective));
    event!(
        Level::Info,
        "heurospf.done",
        evals = iterations.get(),
        best_mlu = best_score.mlu(cfg.objective),
    );
    WeightSetting::new(net, best.iter().map(|&x| x as f64).collect())
        .expect("integer weights in range are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::NodeId;

    /// The Figure-1 style trap: direct link (s,t) with capacity 1, detour
    /// with capacity 10. Unit weights overload the direct link; the local
    /// search must lengthen it.
    fn trap_network() -> (Network, DemandList) {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(2), 1.0); // direct, thin
        b.link(NodeId(0), NodeId(1), 10.0);
        b.link(NodeId(1), NodeId(2), 10.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 10.0);
        (net, d)
    }

    #[test]
    fn escapes_the_thin_direct_link() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig::default();
        let w = heur_ospf(&net, &d, &cfg);
        let router = Router::new(&net, &w);
        let mlu = router.mlu(&d).unwrap();
        // Routing everything over the detour gives MLU 1.0; splitting gives
        // 5.0; direct-only gives 10. The search must find <= 1.0.
        assert!(mlu <= 1.0 + 1e-9, "mlu = {mlu}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig::default();
        let a = heur_ospf(&net, &d, &cfg);
        let b = heur_ospf(&net, &d, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn weights_stay_in_range() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig {
            max_weight: 7,
            ..Default::default()
        };
        let w = heur_ospf(&net, &d, &cfg);
        for &x in w.as_slice() {
            assert!((1.0..=7.0).contains(&x));
            assert_eq!(x, x.round());
        }
    }

    #[test]
    fn phi_objective_also_improves() {
        let (net, d) = trap_network();
        let cfg = HeurOspfConfig {
            objective: Objective::PhiThenMlu,
            ..Default::default()
        };
        let w = heur_ospf(&net, &d, &cfg);
        let router = Router::new(&net, &w);
        assert!(router.mlu(&d).unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn multi_demand_balancing() {
        // Square with two crossing demands; unit capacities force the search
        // to keep the demands on disjoint sides.
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        b.bilink(NodeId(3), NodeId(0), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        d.push(NodeId(2), NodeId(0), 1.0);
        let w = heur_ospf(&net, &d, &HeurOspfConfig::default());
        let router = Router::new(&net, &w);
        // Perfectly balanced: each unit takes one two-hop side, MLU 1.0 (or
        // 0.5 each way if split). Must not exceed 1.
        assert!(router.mlu(&d).unwrap() <= 1.0 + 1e-9);
    }

    #[test]
    fn inverse_capacity_start_is_sane() {
        let (net, _) = trap_network();
        let start = inverse_capacity_start(&net, 20);
        assert_eq!(start[0], 20); // thin link gets the largest weight
        assert_eq!(start[1], 2); // 1/10 of max, rounded
    }
}
