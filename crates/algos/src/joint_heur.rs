//! Algorithm 2 (JOINT-Heur): the sequential joint weight + waypoint
//! heuristic (paper §6).
//!
//! 1. Run HeurOSPF to obtain a weight setting `ω`.
//! 2. Run GreedyWPO under `ω` to obtain a waypoint setting `π`.
//! 3. (Optional, paper lines 3–4) Replace each waypointed demand by its two
//!    segment demands and rerun HeurOSPF for a refreshed weight setting `ω'`.
//! 4. Return the better of `(ω, π)` and `(ω', π)` by evaluated MLU — the
//!    paper reports the improvement from the second pass as negligible and
//!    plots only the first two steps, so the second pass is off by default.

use crate::greedy_wpo::{greedy_wpo, GreedyWpoConfig};
use crate::heur_ospf::{heur_ospf, HeurOspfConfig};
use segrout_core::{DemandList, Network, Router, TeError, WaypointSetting, WeightSetting};
use segrout_obs::{event, Level};

/// Configuration of JOINT-Heur.
#[derive(Clone, Debug, Default)]
pub struct JointHeurConfig {
    /// Local-search configuration for the weight stages.
    pub ospf: HeurOspfConfig,
    /// Waypoint stage configuration.
    pub wpo: GreedyWpoConfig,
    /// Whether to run the second weight optimization on the segment-expanded
    /// demand list (Algorithm 2, lines 3–4).
    pub second_weight_pass: bool,
    /// Optional precomputed stage-1 weight setting: callers that already ran
    /// HeurOSPF (e.g. to report its standalone column) can pass the result
    /// here instead of paying for an identical second search.
    pub stage1_weights: Option<WeightSetting>,
}

/// Output of JOINT-Heur: a joint weight + waypoint setting with its MLU.
#[derive(Clone, Debug)]
pub struct JointHeurResult {
    /// The selected weight setting.
    pub weights: WeightSetting,
    /// The waypoint setting `π` (at most one waypoint per demand).
    pub waypoints: WaypointSetting,
    /// MLU of the joint configuration.
    pub mlu: f64,
    /// MLU after stage 1 only (HeurOSPF), for reporting the waypoint gain.
    pub mlu_weights_only: f64,
}

/// Runs JOINT-Heur on a general TE instance.
///
/// # Errors
/// Propagates routing errors (disconnected demand pairs).
pub fn joint_heur(
    net: &Network,
    demands: &DemandList,
    cfg: &JointHeurConfig,
) -> Result<JointHeurResult, TeError> {
    let _span = segrout_obs::span("joint_heur");
    // Stage 1: link-weight optimization (or the caller's precomputed one).
    let omega = match &cfg.stage1_weights {
        Some(w) => w.clone(),
        None => heur_ospf(net, demands, &cfg.ospf),
    };
    let router = Router::new(net, &omega);
    let mlu_weights_only = router.mlu(demands)?;
    segrout_obs::gauge("joint.stage1_mlu").set(mlu_weights_only);
    segrout_obs::trace_point("joint.stage1", 1, f64::NAN, mlu_weights_only);
    event!(Level::Info, "joint.stage1", mlu = mlu_weights_only);

    // Stage 2: greedy waypoints under omega.
    let pi = greedy_wpo(net, demands, &omega, &cfg.wpo)?;
    let mut best_mlu = router.evaluate(demands, &pi)?.mlu;
    let mut best_weights = omega.clone();
    segrout_obs::gauge("joint.stage2_mlu").set(best_mlu);
    segrout_obs::trace_point("joint.stage2", 2, f64::NAN, best_mlu);
    event!(Level::Info, "joint.stage2", mlu = best_mlu);

    // Stages 3-4: re-optimize weights on the segment-expanded demands.
    if cfg.second_weight_pass {
        let mut expanded = DemandList::new();
        for (i, d) in demands.iter().enumerate() {
            for (s, t, size) in pi.segments_of(i, d) {
                expanded.push(s, t, size);
            }
        }
        let omega2 = heur_ospf(net, &expanded, &cfg.ospf);
        let router2 = Router::new(net, &omega2);
        let mlu2 = router2.evaluate(demands, &pi)?.mlu;
        event!(
            Level::Info,
            "joint.second_pass",
            mlu = mlu2,
            accepted = mlu2 < best_mlu,
        );
        if mlu2 < best_mlu {
            best_mlu = mlu2;
            best_weights = omega2;
        }
    }

    segrout_obs::gauge("joint.final_mlu").set(best_mlu);
    segrout_obs::trace_point("joint.done", 3, f64::NAN, best_mlu);
    Ok(JointHeurResult {
        weights: best_weights,
        waypoints: pi,
        mlu: best_mlu,
        mlu_weights_only,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::NodeId;

    /// A network where weights alone cannot balance single-pair demands but
    /// waypoints can: the TE-Instance-1 pattern with m = 4.
    fn instance1_m4() -> (Network, DemandList) {
        let m = 4u32;
        let mut b = Network::builder(m as usize + 1); // v1..v4 = 0..3, t = 4
        for i in 0..m - 1 {
            b.link(NodeId(i), NodeId(i + 1), m as f64);
        }
        for i in 0..m {
            b.link(NodeId(i), NodeId(m), 1.0);
        }
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..m {
            d.push(NodeId(0), NodeId(m), 1.0);
        }
        (net, d)
    }

    #[test]
    fn joint_beats_weights_only() {
        let (net, d) = instance1_m4();
        let r = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        // LWO alone cannot do better than (n-1)/2 = 2 (Lemma 3.6); the joint
        // optimum is 1 (Lemma 3.5). The heuristic must close most of the gap.
        assert!(
            r.mlu < r.mlu_weights_only - 1e-9,
            "joint {} !< weights-only {}",
            r.mlu,
            r.mlu_weights_only
        );
        assert!(
            r.mlu <= 1.5 + 1e-9,
            "joint heuristic should approach 1.0, got {}",
            r.mlu
        );
    }

    #[test]
    fn result_is_consistent_with_reevaluation() {
        let (net, d) = instance1_m4();
        let r = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        let router = Router::new(&net, &r.weights);
        let mlu = router.evaluate(&d, &r.waypoints).unwrap().mlu;
        assert!((mlu - r.mlu).abs() < 1e-9);
    }

    #[test]
    fn second_pass_never_worsens() {
        let (net, d) = instance1_m4();
        let base = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        let with_pass = joint_heur(
            &net,
            &d,
            &JointHeurConfig {
                second_weight_pass: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_pass.mlu <= base.mlu + 1e-9);
    }

    #[test]
    fn waypoint_budget_is_one() {
        let (net, d) = instance1_m4();
        let r = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        assert!(r.waypoints.max_used() <= 1);
    }
}
