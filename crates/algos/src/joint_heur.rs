//! Algorithm 2 (JOINT-Heur): the sequential joint weight + waypoint
//! heuristic (paper §6).
//!
//! 1. Run HeurOSPF to obtain a weight setting `ω`.
//! 2. Run GreedyWPO under `ω` to obtain a waypoint setting `π`.
//! 3. (Optional, paper lines 3–4) Replace each waypointed demand by its two
//!    segment demands and rerun HeurOSPF for a refreshed weight setting `ω'`.
//! 4. Return the better of `(ω, π)` and `(ω', π)` by evaluated MLU — the
//!    paper reports the improvement from the second pass as negligible and
//!    plots only the first two steps, so the second pass is off by default.
//!
//! **Robust multi-matrix variant** ([`joint_heur_robust`]): the same
//! two-stage pipeline over a [`DemandSet`], with both stages descending on
//! the [`RobustObjective`]-aggregated per-matrix MLU and every acceptance
//! re-evaluated against every matrix. [`joint_heur`] is the one-matrix
//! special case and delegates here bit-identically.

use crate::greedy_wpo::{greedy_wpo_robust, GreedyWpoConfig};
use crate::heur_ospf::{heur_ospf_robust, HeurOspfConfig};
use segrout_core::{
    evaluate_robust, DemandList, DemandSet, Network, RobustObjective, TeError, WaypointSetting,
    WeightSetting,
};
use segrout_obs::{event, Level};

/// Configuration of JOINT-Heur.
#[derive(Clone, Debug, Default)]
pub struct JointHeurConfig {
    /// Local-search configuration for the weight stages.
    pub ospf: HeurOspfConfig,
    /// Waypoint stage configuration.
    pub wpo: GreedyWpoConfig,
    /// Whether to run the second weight optimization on the segment-expanded
    /// demand list (Algorithm 2, lines 3–4).
    pub second_weight_pass: bool,
    /// Optional precomputed stage-1 weight setting: callers that already ran
    /// HeurOSPF (e.g. to report its standalone column) can pass the result
    /// here instead of paying for an identical second search.
    pub stage1_weights: Option<WeightSetting>,
}

/// Output of JOINT-Heur: a joint weight + waypoint setting with its MLU.
#[derive(Clone, Debug)]
pub struct JointHeurResult {
    /// The selected weight setting.
    pub weights: WeightSetting,
    /// The waypoint setting `π` (at most one waypoint per demand).
    pub waypoints: WaypointSetting,
    /// MLU of the joint configuration. For robust runs this is the
    /// [`RobustObjective`]-aggregated MLU over the set's matrices.
    pub mlu: f64,
    /// MLU after stage 1 only (HeurOSPF), for reporting the waypoint gain
    /// (aggregated for robust runs).
    pub mlu_weights_only: f64,
    /// Per-matrix MLU of the returned configuration, in set order (a
    /// one-element vector for the single-matrix entry point).
    pub matrix_mlus: Vec<f64>,
}

/// Runs JOINT-Heur on a general TE instance.
///
/// # Errors
/// Propagates routing errors (disconnected demand pairs).
pub fn joint_heur(
    net: &Network,
    demands: &DemandList,
    cfg: &JointHeurConfig,
) -> Result<JointHeurResult, TeError> {
    joint_heur_robust(
        net,
        &DemandSet::single(demands.clone()),
        RobustObjective::WorstCase,
        cfg,
    )
}

/// Runs JOINT-Heur against an aligned set of traffic matrices: one
/// weight/waypoint configuration optimized for the `robust`-aggregated MLU
/// over every matrix. A single-matrix set is bit-identical to
/// [`joint_heur`].
///
/// # Errors
/// Propagates routing errors from any matrix and rejects misaligned sets.
///
/// # Panics
/// Panics on an empty demand set.
pub fn joint_heur_robust(
    net: &Network,
    set: &DemandSet,
    robust: RobustObjective,
    cfg: &JointHeurConfig,
) -> Result<JointHeurResult, TeError> {
    assert!(!set.is_empty(), "demand set must hold at least one matrix");
    set.require_aligned()?;
    let _span = segrout_obs::span("joint_heur");
    let k = set.len();
    // Stage 1: link-weight optimization (or the caller's precomputed one).
    let omega = match &cfg.stage1_weights {
        Some(w) => w.clone(),
        None => heur_ospf_robust(net, set, robust, &cfg.ospf),
    };
    let none = WaypointSetting::none(set.pair_count());
    let stage1 = evaluate_robust(net, &omega, set, &none)?;
    let mlu_weights_only = stage1.aggregate_mlu(robust);
    segrout_obs::gauge("joint.stage1_mlu").set(mlu_weights_only);
    segrout_obs::trace_point("joint.stage1", 1, f64::NAN, mlu_weights_only);
    event!(Level::Info, "joint.stage1", mlu = mlu_weights_only);

    // Stage 2: greedy waypoints under omega.
    let pi = greedy_wpo_robust(net, set, &omega, robust, &cfg.wpo)?;
    let mut best = evaluate_robust(net, &omega, set, &pi)?;
    let mut best_mlu = best.aggregate_mlu(robust);
    let mut best_weights = omega.clone();
    segrout_obs::gauge("joint.stage2_mlu").set(best_mlu);
    segrout_obs::trace_point("joint.stage2", 2, f64::NAN, best_mlu);
    event!(Level::Info, "joint.stage2", mlu = best_mlu);

    // Stages 3-4: re-optimize weights on the segment-expanded demands
    // (expanded per matrix; the chains are shared, so the expanded set stays
    // aligned).
    if cfg.second_weight_pass {
        let mut expanded_set = DemandSet::new();
        for (name, demands) in set.iter() {
            let mut expanded = DemandList::new();
            for (i, d) in demands.iter().enumerate() {
                for (s, t, size) in pi.segments_of(i, d) {
                    expanded.push(s, t, size);
                }
            }
            expanded_set.push(name, expanded);
        }
        let omega2 = heur_ospf_robust(net, &expanded_set, robust, &cfg.ospf);
        let rep2 = evaluate_robust(net, &omega2, set, &pi)?;
        let mlu2 = rep2.aggregate_mlu(robust);
        event!(
            Level::Info,
            "joint.second_pass",
            mlu = mlu2,
            accepted = mlu2 < best_mlu,
        );
        if mlu2 < best_mlu {
            best_mlu = mlu2;
            best = rep2;
            best_weights = omega2;
        }
    }

    segrout_obs::gauge("joint.final_mlu").set(best_mlu);
    segrout_obs::trace_point("joint.done", 3, f64::NAN, best_mlu);
    if k > 1 {
        segrout_obs::gauge("robust.worst_mlu").set(best.worst_mlu());
        if segrout_obs::trace_enabled() {
            for (mi, &mlu) in best.mlus.iter().enumerate() {
                segrout_obs::trace_point("robust.matrix", mi as u64, best.phis[mi], mlu);
            }
        }
    }
    Ok(JointHeurResult {
        weights: best_weights,
        waypoints: pi,
        mlu: best_mlu,
        mlu_weights_only,
        matrix_mlus: best.mlus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::{NodeId, Router};

    /// A network where weights alone cannot balance single-pair demands but
    /// waypoints can: the TE-Instance-1 pattern with m = 4.
    fn instance1_m4() -> (Network, DemandList) {
        let m = 4u32;
        let mut b = Network::builder(m as usize + 1); // v1..v4 = 0..3, t = 4
        for i in 0..m - 1 {
            b.link(NodeId(i), NodeId(i + 1), m as f64);
        }
        for i in 0..m {
            b.link(NodeId(i), NodeId(m), 1.0);
        }
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..m {
            d.push(NodeId(0), NodeId(m), 1.0);
        }
        (net, d)
    }

    #[test]
    fn joint_beats_weights_only() {
        let (net, d) = instance1_m4();
        let r = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        // LWO alone cannot do better than (n-1)/2 = 2 (Lemma 3.6); the joint
        // optimum is 1 (Lemma 3.5). The heuristic must close most of the gap.
        assert!(
            r.mlu < r.mlu_weights_only - 1e-9,
            "joint {} !< weights-only {}",
            r.mlu,
            r.mlu_weights_only
        );
        assert!(
            r.mlu <= 1.5 + 1e-9,
            "joint heuristic should approach 1.0, got {}",
            r.mlu
        );
    }

    #[test]
    fn result_is_consistent_with_reevaluation() {
        let (net, d) = instance1_m4();
        let r = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        let router = Router::new(&net, &r.weights);
        let mlu = router.evaluate(&d, &r.waypoints).unwrap().mlu;
        assert!((mlu - r.mlu).abs() < 1e-9);
        assert_eq!(r.matrix_mlus.len(), 1);
        assert_eq!(r.matrix_mlus[0].to_bits(), r.mlu.to_bits());
    }

    #[test]
    fn second_pass_never_worsens() {
        let (net, d) = instance1_m4();
        let base = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        let with_pass = joint_heur(
            &net,
            &d,
            &JointHeurConfig {
                second_weight_pass: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_pass.mlu <= base.mlu + 1e-9);
    }

    #[test]
    fn waypoint_budget_is_one() {
        let (net, d) = instance1_m4();
        let r = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        assert!(r.waypoints.max_used() <= 1);
    }

    /// Robust JOINT-Heur over a two-matrix set: the returned configuration's
    /// per-matrix MLUs must match an independent re-evaluation, and the
    /// single-matrix reduction must be bit-identical to `joint_heur`.
    #[test]
    fn robust_joint_is_consistent_and_reduces() {
        let (net, d) = instance1_m4();
        let scaled: DemandList = d
            .iter()
            .map(|x| segrout_core::Demand::new(x.src, x.dst, x.size * 0.5))
            .collect();
        let mut set = DemandSet::single(d.clone());
        set.push("offpeak", scaled);

        let r = joint_heur_robust(
            &net,
            &set,
            RobustObjective::WorstCase,
            &JointHeurConfig::default(),
        )
        .unwrap();
        let rep = evaluate_robust(&net, &r.weights, &set, &r.waypoints).unwrap();
        assert_eq!(rep.mlus.len(), 2);
        for (a, b) in rep.mlus.iter().zip(&r.matrix_mlus) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.mlu.to_bits(), rep.worst_mlu().to_bits());

        let classic = joint_heur(&net, &d, &JointHeurConfig::default()).unwrap();
        let single = joint_heur_robust(
            &net,
            &DemandSet::single(d.clone()),
            RobustObjective::Quantile(1.0),
            &JointHeurConfig::default(),
        )
        .unwrap();
        assert_eq!(classic.weights.as_slice(), single.weights.as_slice());
        assert_eq!(classic.mlu.to_bits(), single.mlu.to_bits());
        for i in 0..d.len() {
            assert_eq!(classic.waypoints.get(i), single.waypoints.get(i));
        }
    }
}
