//! # segrout-algos
//!
//! The optimization algorithms of
//! *Traffic Engineering with Joint Link Weight and Segment Optimization*
//! (CoNEXT'21):
//!
//! * [`dag_weights`] — Lemma 4.1: a weight setting whose ECMP flow uses
//!   exactly a given DAG (every DAG link lies on a shortest path to the
//!   target),
//! * [`mod@lwo_apx`] — Algorithm 1 (LWO-APX): the `O(n log n)`-approximate link
//!   weight optimization for single source–target demands, built on
//!   effective capacities,
//! * [`mod@heur_ospf`] — the Fortz–Thorup local search for general demand
//!   matrices (the paper's HeurOSPF subroutine \[11\]),
//! * [`mod@greedy_wpo`] — Algorithm 3 (GreedyWPO): greedy single-waypoint
//!   selection on top of a fixed weight setting,
//! * [`mod@joint_heur`] — Algorithm 2 (JOINT-Heur): the sequential joint
//!   optimization combining the two,
//! * [`mcf`] — a Garg–Könemann/Fleischer max-concurrent-flow FPTAS providing
//!   `OPT` lower bounds and the paper's "MCF Synthetic" demand scaling at
//!   sizes where the exact LP is too slow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag_weights;
pub mod greedy_wpo;
pub mod heur_ospf;
pub mod joint_heur;
pub mod lwo_apx;
pub mod mcf;
pub mod reopt;
pub mod serve;
pub mod wpo_local;

pub use dag_weights::dag_realizing_weights;
pub use greedy_wpo::{greedy_wpo, greedy_wpo_robust, GreedyWpoConfig};
pub use heur_ospf::{
    heur_ospf, heur_ospf_failure_robust, heur_ospf_robust, HeurOspfConfig, Objective,
};
pub use joint_heur::{joint_heur, joint_heur_robust, JointHeurConfig, JointHeurResult};
pub use lwo_apx::{lwo_apx, LwoApxResult};
pub use mcf::{max_concurrent_flow, McfResult};
pub use reopt::{
    reoptimize_joint, reoptimize_unconstrained, reoptimize_weights, reoptimize_weights_on,
    round_deployed, weight_distance, EvaluatorReopt, ReoptimizeConfig, ReoptimizeResult,
};
pub use serve::{ServeConfig, ServeEvent, ServeResponse, ServeSession, ServeStats, ServeTier};
pub use wpo_local::{wpo_local_search, WpoLocalConfig};
