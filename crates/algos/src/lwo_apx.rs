//! Algorithm 1 (LWO-APX): the `O(n log n)`-approximation for link-weight
//! optimization with single source–target demands (paper §5).
//!
//! The algorithm
//!
//! 1. computes an acyclic maximum `(s,t)`-flow `f*` and keeps its support
//!    DAG `G*` with *usable capacities* `c*(ℓ) = f*(ℓ)`;
//! 2. walks the nodes of `G*` in reverse topological order and, at each node
//!    `v`, keeps the prefix of outgoing links (sorted by decreasing effective
//!    capacity) maximizing `j · ec(ℓ_j)` — the best even-split — pruning the
//!    rest (lines 5–10);
//! 3. emits the Lemma 4.1 weight setting realizing the pruned DAG (line 11).
//!
//! The effective capacity of `s` on the pruned DAG is the size of the
//! ES-flow the weight setting supports; Theorem 5.4 shows it is within a
//! factor `n⌈ln Δ*⌉` of the maximum flow.

use crate::dag_weights::dag_realizing_weights;
use segrout_core::{Network, NodeId, TeError, WeightSetting};
use segrout_graph::{acyclic_max_flow, topological_order, EPS};

/// Output of [`lwo_apx`].
#[derive(Clone, Debug)]
pub struct LwoApxResult {
    /// The computed weight setting (integral weights).
    pub weights: WeightSetting,
    /// The pruned DAG the weights realize (edge mask).
    pub dag_mask: Vec<bool>,
    /// The exact size of the even-split flow deliverable under `weights`
    /// while respecting the usable capacities `c*` — computed by routing the
    /// realized splits, not from the (optimistic) per-node recursion.
    pub es_flow_value: f64,
    /// Size `|f*|` of the maximum `(s,t)`-flow (the OPT denominator).
    pub max_flow_value: f64,
}

impl LwoApxResult {
    /// The a-posteriori approximation ratio `|f*| / ec(s)` actually achieved
    /// on this instance (Theorem 5.4 guarantees it is `O(n log n)`).
    pub fn achieved_ratio(&self) -> f64 {
        if self.es_flow_value <= EPS {
            f64::INFINITY
        } else {
            self.max_flow_value / self.es_flow_value
        }
    }
}

/// Runs LWO-APX for the single source–target pair `(s, t)`.
///
/// ```
/// use segrout_algos::lwo_apx;
/// use segrout_core::{Network, NodeId};
///
/// // Three disjoint equal paths: even splitting is optimal, ratio 1.
/// let mut b = Network::builder(5);
/// for i in 1..=3u32 {
///     b.link(NodeId(0), NodeId(i), 2.0);
///     b.link(NodeId(i), NodeId(4), 2.0);
/// }
/// let net = b.build()?;
/// let r = lwo_apx(&net, NodeId(0), NodeId(4))?;
/// assert!((r.max_flow_value - 6.0).abs() < 1e-9);
/// assert!((r.es_flow_value - 6.0).abs() < 1e-9);
/// assert!((r.achieved_ratio() - 1.0).abs() < 1e-9);
/// # Ok::<(), segrout_core::TeError>(())
/// ```
///
/// # Errors
/// Returns [`TeError::Unroutable`] when `t` is unreachable from `s`.
pub fn lwo_apx(net: &Network, s: NodeId, t: NodeId) -> Result<LwoApxResult, TeError> {
    let _span = segrout_obs::span("lwo_apx");
    let g = net.graph();
    let flow = acyclic_max_flow(g, net.capacities(), s, t);
    if flow.value <= EPS {
        return Err(TeError::Unroutable { src: s, dst: t });
    }

    // G*: support of the acyclic max flow; c* = flow amounts.
    let mut mask = flow.support_mask();
    let usable: Vec<f64> = flow.on_edge.clone();

    let order = topological_order(g, &mask).expect("support of an acyclic flow must be acyclic");

    // Effective capacities, maximizing j * ec(l_j) at every node and pruning
    // the losing links (Algorithm 1 lines 5-10). Nodes are processed in
    // reverse topological order, so all out-edges are final when visited.
    let mut ec_node = vec![0.0; g.node_count()];
    let mut ec_edge = vec![0.0; g.edge_count()];
    ec_node[t.index()] = f64::INFINITY;

    for &v in order.iter().rev() {
        if v == t {
            for &e in g.in_edges(v) {
                if mask[e.index()] {
                    ec_edge[e.index()] = usable[e.index()];
                }
            }
            continue;
        }
        let mut outs: Vec<_> = g
            .out_edges(v)
            .iter()
            .copied()
            .filter(|e| mask[e.index()])
            .collect();
        if outs.is_empty() {
            // Node not on any s-t flow path (or a dead end after pruning
            // upstream): contributes nothing.
            for &e in g.in_edges(v) {
                if mask[e.index()] {
                    ec_edge[e.index()] = 0.0;
                }
            }
            continue;
        }
        // Sort by decreasing effective capacity (line 6).
        outs.sort_by(|a, b| {
            ec_edge[b.index()]
                .partial_cmp(&ec_edge[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        // j* = argmax_j j * ec(l_j) (line 7); ties prefer splitting wider,
        // matching the paper's "break ties by always splitting".
        let mut j_star = 0usize;
        let mut best: f64 = -1.0;
        for (j, e) in outs.iter().enumerate() {
            let val = (j + 1) as f64 * ec_edge[e.index()];
            if val >= best - EPS * (1.0 + best.abs()) {
                if val > best {
                    best = val;
                }
                j_star = j;
            }
        }
        ec_node[v.index()] = (j_star + 1) as f64 * ec_edge[outs[j_star].index()];
        // Prune links past j* (line 10).
        for e in &outs[j_star + 1..] {
            mask[e.index()] = false;
        }
        // Effective capacity of incoming links (line 9).
        for &e in g.in_edges(v) {
            if mask[e.index()] {
                ec_edge[e.index()] = usable[e.index()].min(ec_node[v.index()]);
            }
        }
    }

    // Drop edges that can no longer reach t in the pruned DAG (dead ends):
    // iterate removals to a fixed point so the realized DAG routes all flow
    // to t.
    prune_dead_ends(net, &mut mask, t);

    // The recursion above decides the pruning, but its value ec(s) can
    // overestimate the deliverable flow: it bounds each in-edge of v by
    // min(c*, ec(v)) without bounding their sum, so where several kept
    // in-edges converge the even split pushes more through v than its kept
    // out-links can forward. Emit the exact value instead: route a unit
    // even-split flow through the realized splits and scale it to the
    // tightest usable capacity, so routing `es_flow_value` under the
    // Lemma 4.1 weights never exceeds c*.
    let es_flow_value = exact_es_flow(net, &mask, &usable, s, t);

    let weights = dag_realizing_weights(net, &mask)?;
    segrout_obs::counter("lwoapx.runs").inc();
    segrout_obs::event!(
        segrout_obs::Level::Debug,
        "lwoapx.done",
        es_flow = es_flow_value,
        max_flow = flow.value,
        kept_edges = mask.iter().filter(|&&b| b).count(),
    );
    Ok(LwoApxResult {
        weights,
        dag_mask: mask,
        es_flow_value,
        max_flow_value: flow.value,
    })
}

/// The exact maximum even-split flow on the pruned DAG under capacities
/// `usable`: per-edge loads of a unit ES-flow from `s`, scaled to the
/// tightest edge.
fn exact_es_flow(net: &Network, mask: &[bool], usable: &[f64], s: NodeId, t: NodeId) -> f64 {
    let g = net.graph();
    let order = topological_order(g, mask).expect("pruned DAG stays acyclic");
    let mut inflow = vec![0.0; g.node_count()];
    let mut unit_load = vec![0.0; g.edge_count()];
    inflow[s.index()] = 1.0;
    for &v in &order {
        if v == t || inflow[v.index()] <= EPS {
            continue;
        }
        let outs: Vec<_> = g
            .out_edges(v)
            .iter()
            .copied()
            .filter(|e| mask[e.index()])
            .collect();
        if outs.is_empty() {
            return 0.0; // s cut off from t
        }
        let share = inflow[v.index()] / outs.len() as f64;
        for e in outs {
            unit_load[e.index()] += share;
            inflow[g.endpoints(e).1.index()] += share;
        }
    }
    if inflow[t.index()] <= EPS {
        return 0.0;
    }
    let mut scale = f64::INFINITY;
    for e in 0..g.edge_count() {
        if unit_load[e] > EPS {
            scale = scale.min(usable[e] / unit_load[e]);
        }
    }
    if scale.is_finite() {
        scale
    } else {
        0.0
    }
}

/// Removes masked edges that lead to nodes with no masked path to `t`.
fn prune_dead_ends(net: &Network, mask: &mut [bool], t: NodeId) {
    let g = net.graph();
    loop {
        let mut changed = false;
        for v in g.nodes() {
            if v == t {
                continue;
            }
            let has_out = g.out_edges(v).iter().any(|e| mask[e.index()]);
            if !has_out {
                for &e in g.in_edges(v) {
                    if mask[e.index()] {
                        mask[e.index()] = false;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::{DemandList, Router, WaypointSetting};

    /// Paper Figure 3b network (capacities = usable capacities).
    fn figure_3b() -> Network {
        let mut b = Network::builder(6); // s=0, v1=1, v2=2, v3=3, v4=4, t=5
        b.link(NodeId(0), NodeId(1), 0.5);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0 / 6.0);
        b.link(NodeId(1), NodeId(4), 1.0 / 3.0);
        b.link(NodeId(2), NodeId(3), 1.0 / 3.0);
        b.link(NodeId(2), NodeId(4), 2.0 / 3.0);
        b.link(NodeId(3), NodeId(5), 0.5);
        b.link(NodeId(4), NodeId(5), 1.0);
        b.build().unwrap()
    }

    #[test]
    fn prunes_the_bad_split_at_v2() {
        // Discussed under Figure 3b: splitting evenly at v2 yields 1/2; not
        // splitting (keeping only (v2,v4)) yields 2/3. LWO-APX must pick the
        // larger option, so ec(v2) = 2/3.
        let net = figure_3b();
        let r = lwo_apx(&net, NodeId(0), NodeId(5)).unwrap();
        assert!((r.max_flow_value - 1.5).abs() < 1e-9);
        // v2's two out-edges sorted by ec: (v2,v4) -> 2/3, (v2,v3) -> 1/3.
        // j=1: 2/3; j=2: 2*1/3 = 2/3. Tie broken towards splitting, giving
        // ec(v2) = 2/3 either way. At s: out-ec are min(c, ec): (s,v1) and
        // (s,v2). ec(v1) = 2 * 1/6 = 1/3 (or keep only (v1,v4): 1/3 — tie).
        // ec(s) = max(1*2/3, 2*1/3) = 2/3.
        assert!((r.es_flow_value - 2.0 / 3.0).abs() < 1e-9);
        assert!(r.achieved_ratio() > 2.0 && r.achieved_ratio() < 2.5);
    }

    #[test]
    fn weight_setting_realizes_the_es_flow() {
        // Route ec(s) units under the produced weights: no capacity excess.
        let net = figure_3b();
        let r = lwo_apx(&net, NodeId(0), NodeId(5)).unwrap();
        let router = Router::new(&net, &r.weights);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(5), r.es_flow_value);
        let report = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
        assert!(
            report.mlu <= 1.0 + 1e-9,
            "ES-flow of size ec(s) must fit: mlu = {}",
            report.mlu
        );
    }

    #[test]
    fn single_path_network_is_exact() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 5.0);
        b.link(NodeId(1), NodeId(2), 3.0);
        let net = b.build().unwrap();
        let r = lwo_apx(&net, NodeId(0), NodeId(2)).unwrap();
        assert!((r.max_flow_value - 3.0).abs() < 1e-9);
        assert!((r.es_flow_value - 3.0).abs() < 1e-9);
        assert!((r.achieved_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_equal_paths_split() {
        // k equal disjoint paths: even split is optimal, ratio 1.
        let k = 4u32;
        let mut b = Network::builder(2 + k as usize);
        for i in 0..k {
            let mid = NodeId(2 + i);
            b.link(NodeId(0), mid, 1.0);
            b.link(mid, NodeId(1), 1.0);
        }
        let net = b.build().unwrap();
        let r = lwo_apx(&net, NodeId(0), NodeId(1)).unwrap();
        assert!((r.es_flow_value - k as f64).abs() < 1e-9);
        assert!((r.achieved_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_fan_keeps_prefix() {
        // TE-Instance 2 structure: parallel 2-hop paths with harmonic
        // capacities 1, 1/2, ..., 1/m. Max ES-flow = 1 (Lemma 3.10): any
        // prefix j gives j * (1/j) = 1.
        let m = 6u32;
        let mut b = Network::builder(2 + m as usize);
        for j in 1..=m {
            let mid = NodeId(1 + j);
            let c = 1.0 / j as f64;
            b.link(NodeId(0), mid, c);
            b.link(mid, NodeId(1), c);
        }
        let net = b.build().unwrap();
        let r = lwo_apx(&net, NodeId(0), NodeId(1)).unwrap();
        let h: f64 = (1..=m).map(|j| 1.0 / j as f64).sum();
        assert!((r.max_flow_value - h).abs() < 1e-9);
        assert!((r.es_flow_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_5_4_bound_holds() {
        // On every test network the achieved ratio must respect the
        // n * ceil(ln Delta*) guarantee.
        {
            let net = figure_3b();
            let r = lwo_apx(&net, NodeId(0), NodeId(5)).unwrap();
            let n = net.node_count() as f64;
            let delta = net.graph().max_out_degree() as f64;
            let bound = n * delta.ln().ceil().max(1.0);
            assert!(r.achieved_ratio() <= bound + 1e-9);
        }
    }

    #[test]
    fn unroutable_pair_errors() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        assert!(lwo_apx(&net, NodeId(0), NodeId(2)).is_err());
    }
}
