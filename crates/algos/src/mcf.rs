//! Maximum concurrent multi-commodity flow via the Garg–Könemann /
//! Fleischer width-independent FPTAS.
//!
//! `OPT` in the paper is the minimum-MLU multi-commodity flow; it equals
//! `1/λ*`, where `λ*` is the maximum concurrent throughput factor (the
//! largest `λ` such that `λ · d_k` is simultaneously routable for every
//! commodity within capacities). The paper solves this as an LP with Gurobi;
//! `segrout-milp` provides that exact LP for small instances, and this
//! module provides the FPTAS used for larger topologies and for the "MCF
//! Synthetic" demand scaling of §7.
//!
//! The result is *self-certifying*: the returned flow is an explicit feasible
//! routing whose MLU upper-bounds `OPT` regardless of the approximation
//! analysis (we scale the accumulated flow by its own measured MLU), so the
//! epsilon only influences quality, never soundness.

use segrout_core::{DemandList, Network, NodeId, TeError};
use segrout_graph::EPS;
use segrout_obs::{event, Level};
use std::collections::HashMap;

/// Result of [`max_concurrent_flow`].
#[derive(Clone, Debug)]
pub struct McfResult {
    /// Feasible concurrent throughput factor `λ` (a lower bound on `λ*`,
    /// within `(1-ε)²` of it for connected instances).
    pub lambda: f64,
    /// Upper bound on the optimal MLU for routing the demands once:
    /// `opt_mlu = 1/λ`.
    pub opt_mlu: f64,
    /// Per-link loads of a feasible routing of the demand list whose MLU is
    /// exactly `opt_mlu`.
    pub loads: Vec<f64>,
    /// Number of completed phases of the FPTAS (diagnostic).
    pub phases: usize,
}

/// Computes the (approximately) maximum concurrent flow for `demands` on
/// `net` with accuracy parameter `epsilon` (e.g. 0.05).
///
/// # Errors
/// Returns [`TeError::Unroutable`] when some demand pair is disconnected.
///
/// # Panics
/// Panics when `epsilon` is outside `(0, 0.5]` or the demand list is empty.
pub fn max_concurrent_flow(
    net: &Network,
    demands: &DemandList,
    epsilon: f64,
) -> Result<McfResult, TeError> {
    assert!(
        epsilon > 0.0 && epsilon <= 0.5,
        "epsilon must lie in (0, 0.5]"
    );
    assert!(!demands.is_empty(), "demand list must be non-empty");
    let _span = segrout_obs::span("mcf");
    let augmentations = segrout_obs::counter("mcf.augmentations");

    let g = net.graph();
    let caps = net.capacities();
    let m = g.edge_count() as f64;

    // Group demands into commodities.
    let mut commodities: HashMap<(NodeId, NodeId), f64> = HashMap::new();
    for d in demands {
        *commodities.entry((d.src, d.dst)).or_insert(0.0) += d.size;
    }
    let mut commodities: Vec<((NodeId, NodeId), f64)> = commodities.into_iter().collect();
    commodities.sort_by_key(|&((s, t), _)| (s, t));

    // Demand pre-scaling (Fleischer): the FPTAS pushes min(remaining,
    // bottleneck) per augmentation, so tiny demands against fat links make
    // dual lengths crawl. Scale all demands by ζ = min_k maxflow_k / d_k —
    // an upper bound on λ*, so the scaled instance has λ'* ≤ 1 and every
    // push happens at capacity scale. λ is rescaled back at the end.
    let mut zeta = f64::INFINITY;
    for &((s, t), dk) in &commodities {
        let mf = segrout_graph::max_flow(g, caps, s, t);
        if mf.value <= EPS {
            return Err(TeError::Unroutable { src: s, dst: t });
        }
        zeta = zeta.min(mf.value / dk);
    }
    for (_, dk) in commodities.iter_mut() {
        *dk *= zeta;
    }

    // Initial dual lengths.
    let delta = (1.0 + epsilon) * ((1.0 + epsilon) * m).powf(-1.0 / epsilon);
    let mut length: Vec<f64> = caps.iter().map(|c| delta / c).collect();

    let mut flow = vec![0.0; g.edge_count()];
    let mut flow_at_phase_end = vec![0.0; g.edge_count()];
    let mut full_phases = 0usize;

    // Run until the dual objective crosses 1 AND at least `MIN_PHASES`
    // phases are complete (extra phases only sharpen the result); cap the
    // phase count defensively.
    const MIN_PHASES: usize = 3;
    const MAX_PHASES: usize = 100_000;
    'phases: for _phase in 0..MAX_PHASES {
        let mut phase_augs: u64 = 0;
        for &((s, t), dk) in &commodities {
            let mut remaining = dk;
            while remaining > EPS * dk {
                phase_augs += 1;
                // Extract one shortest path s -> t via parent pointers (a
                // tree walk cannot loop, unlike a greedy descent over
                // distance labels that may tie numerically when lengths
                // span many orders of magnitude).
                let Some(path) = shortest_path_edges(net, &length, s, t) else {
                    return Err(TeError::Unroutable { src: s, dst: t });
                };
                let bottleneck = path.iter().map(|&e| caps[e]).fold(f64::INFINITY, f64::min);
                let push = remaining.min(bottleneck);
                for &e in &path {
                    flow[e] += push;
                    length[e] *= 1.0 + epsilon * push / caps[e];
                }
                remaining -= push;
            }
        }
        full_phases += 1;
        augmentations.add(phase_augs);
        flow_at_phase_end.copy_from_slice(&flow);
        let dual: f64 = length.iter().zip(caps).map(|(l, c)| l * c).sum();
        event!(
            Level::Trace,
            "mcf.phase",
            phase = full_phases,
            augmentations = phase_augs,
            dual = dual,
        );
        if dual >= 1.0 && full_phases >= MIN_PHASES {
            break 'phases;
        }
    }

    // The accumulated flow routes `full_phases` copies of every commodity.
    // Scale it by its own MLU: a feasible concurrent flow of factor
    // T / MLU(F).
    let mlu_raw = flow_at_phase_end
        .iter()
        .zip(caps)
        .map(|(f, c)| f / c)
        .fold(0.0, f64::max);
    debug_assert!(mlu_raw > 0.0, "flow must be positive after a full phase");
    // Undo the ζ pre-scaling: the flow routes `full_phases` copies of the
    // *scaled* demands, i.e. `full_phases · ζ` copies of the originals.
    let lambda = full_phases as f64 * zeta / mlu_raw;
    let opt_mlu = 1.0 / lambda;
    let loads: Vec<f64> = flow_at_phase_end
        .iter()
        .map(|f| f / (full_phases as f64 * zeta))
        .collect();

    segrout_obs::counter("mcf.phases").add(full_phases as u64);
    event!(
        Level::Info,
        "mcf.done",
        phases = full_phases,
        lambda = lambda,
        opt_mlu = opt_mlu,
    );
    Ok(McfResult {
        lambda,
        opt_mlu,
        loads,
        phases: full_phases,
    })
}

/// Computes one shortest `s → t` path under `length` by a forward Dijkstra
/// with parent pointers; returns the edge-index sequence, or `None` when
/// `t` is unreachable. The parent-pointer tree guarantees a simple path
/// even under extreme length magnitudes.
fn shortest_path_edges(net: &Network, length: &[f64], s: NodeId, t: NodeId) -> Option<Vec<usize>> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    let g = net.graph();
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut done = vec![false; n];

    struct Entry {
        d: f64,
        v: NodeId,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.d == other.d
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other.d.partial_cmp(&self.d).unwrap_or(Ordering::Equal)
        }
    }

    let mut heap = BinaryHeap::new();
    dist[s.index()] = 0.0;
    heap.push(Entry { d: 0.0, v: s });
    while let Some(Entry { d, v }) = heap.pop() {
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        if v == t {
            break;
        }
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            let nd = d + length[e.index()];
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                parent[w.index()] = Some(e.index());
                heap.push(Entry { d: nd, v: w });
            }
        }
    }
    if !dist[t.index()].is_finite() {
        return None;
    }
    let mut path = Vec::new();
    let mut v = t;
    while v != s {
        let e = parent[v.index()]?;
        path.push(e);
        v = g.src(segrout_graph::EdgeId(e as u32));
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_parallel_links() {
        // caps 3 and 1, demand 2: lambda* = 2, OPT MLU = 0.5.
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 3.0);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 2.0);
        let r = max_concurrent_flow(&net, &d, 0.05).unwrap();
        assert!(
            (r.lambda - 2.0).abs() < 0.2,
            "lambda = {} should be near 2",
            r.lambda
        );
        // Soundness: the scaled loads must have MLU == opt_mlu and respect
        // conservation of the demand.
        let mlu = r
            .loads
            .iter()
            .zip(net.capacities())
            .map(|(l, c)| l / c)
            .fold(0.0, f64::max);
        assert!((mlu - r.opt_mlu).abs() < 1e-9);
        let total: f64 = r.loads.iter().sum();
        assert!((total - 2.0).abs() < 1e-6, "loads route the full demand");
    }

    #[test]
    fn crossing_commodities_share_a_link() {
        // Two commodities forced through one shared middle link (cap 1):
        // lambda* = 1 / 2 for unit demands.
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(2), 10.0);
        b.link(NodeId(1), NodeId(2), 10.0);
        b.link(NodeId(2), NodeId(3), 1.0); // shared bottleneck
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.0);
        d.push(NodeId(1), NodeId(3), 1.0);
        let r = max_concurrent_flow(&net, &d, 0.05).unwrap();
        assert!((r.opt_mlu - 2.0).abs() < 0.25, "opt_mlu = {}", r.opt_mlu);
    }

    #[test]
    fn instance1_opt_is_one() {
        // TE-Instance 1 with m = 4: OPT = 1 for the m unit demands.
        let m = 4u32;
        let mut b = Network::builder(m as usize + 1);
        for i in 0..m - 1 {
            b.link(NodeId(i), NodeId(i + 1), m as f64);
        }
        for i in 0..m {
            b.link(NodeId(i), NodeId(m), 1.0);
        }
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..m {
            d.push(NodeId(0), NodeId(m), 1.0);
        }
        let r = max_concurrent_flow(&net, &d, 0.03).unwrap();
        assert!(
            (r.opt_mlu - 1.0).abs() < 0.1,
            "opt_mlu = {} should be near 1",
            r.opt_mlu
        );
    }

    #[test]
    fn disconnected_commodity_errors() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        assert!(max_concurrent_flow(&net, &d, 0.1).is_err());
    }

    #[test]
    fn tighter_epsilon_is_at_least_as_good() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 3.0);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 2.0);
        let coarse = max_concurrent_flow(&net, &d, 0.3).unwrap();
        let fine = max_concurrent_flow(&net, &d, 0.02).unwrap();
        assert!(fine.lambda >= coarse.lambda - 0.05);
        // Both are sound lower bounds on lambda* = 2.
        assert!(coarse.lambda <= 2.0 + 1e-9);
        assert!(fine.lambda <= 2.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 1.0);
        let _ = max_concurrent_flow(&net, &d, 0.0);
    }
}
