//! Reconfiguration-aware re-optimization — the extension the paper's
//! conclusion calls for: *"It would be interesting to explore TE algorithms
//! that react to shifts in the traffic demand and account for
//! reconfiguration costs."*
//!
//! When the traffic matrix drifts, re-running HeurOSPF from scratch may
//! rewrite most link weights; every changed weight triggers an IGP
//! re-convergence with transient loops and packet loss, so operators want
//! *few* changes. [`reoptimize_weights`] runs the same local search but
//! constrains the result to differ from the currently deployed setting on
//! at most `max_weight_changes` links. Because segment-routing waypoints
//! are per-demand header state (no IGP flooding), waypoint churn is free by
//! comparison — so [`reoptimize_joint`] first spends the cheap knob
//! (waypoints on the *old* weights) and only then the constrained weight
//! changes, quantifying the papers' intuition that the joint approach also
//! helps operationally.

use crate::greedy_wpo::{greedy_wpo, GreedyWpoConfig};
use crate::heur_ospf::{heur_ospf, HeurOspfConfig, Objective};
use segrout_core::rng::{SliceRandom, StdRng};
use segrout_core::{
    DemandList, EdgeId, IncrementalEvaluator, Network, Router, TeError, WaypointSetting,
    WeightSetting,
};
use segrout_obs::{event, Level};

/// Configuration for reconfiguration-aware re-optimization.
#[derive(Clone, Debug)]
pub struct ReoptimizeConfig {
    /// Maximum number of links whose weight may differ from the deployed
    /// setting (the reconfiguration budget).
    pub max_weight_changes: usize,
    /// Local-search parameters (weight range, passes, seed, objective).
    pub ospf: HeurOspfConfig,
    /// Waypoint stage parameters for [`reoptimize_joint`].
    pub wpo: GreedyWpoConfig,
}

impl Default for ReoptimizeConfig {
    fn default() -> Self {
        Self {
            max_weight_changes: 3,
            ospf: HeurOspfConfig::default(),
            wpo: GreedyWpoConfig::default(),
        }
    }
}

/// Result of a re-optimization step.
#[derive(Clone, Debug)]
pub struct ReoptimizeResult {
    /// The new weight setting (within the change budget of the deployed
    /// one for the constrained entry points).
    pub weights: WeightSetting,
    /// New waypoint setting (empty rows for [`reoptimize_weights`]).
    pub waypoints: WaypointSetting,
    /// MLU under the new configuration.
    pub mlu: f64,
    /// Number of links whose weight changed vs the deployed setting.
    pub weight_changes: usize,
}

/// Counts links where two settings differ.
pub fn weight_distance(a: &WeightSetting, b: &WeightSetting) -> usize {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| (*x - *y).abs() > 1e-9)
        .count()
}

/// Rounds a deployed weight setting into the integer range `[1,
/// max_weight]` — re-optimization assumes the deployed setting came from the
/// same toolchain, which emits integral weights.
pub fn round_deployed(net: &Network, deployed: &WeightSetting, max_weight: u32) -> WeightSetting {
    WeightSetting::new(
        net,
        deployed
            .as_slice()
            .iter()
            .map(|&w| (w.round() as u32).clamp(1, max_weight) as f64)
            .collect(),
    )
    .expect("rounded integer weights are valid")
}

/// Outcome of [`reoptimize_weights_on`]: the accepted weight setting plus
/// the search's bookkeeping (the evaluator itself is left committed on
/// exactly these weights).
#[derive(Clone, Debug)]
pub struct EvaluatorReopt {
    /// The new weight setting (within the change budget of the base).
    pub weights: WeightSetting,
    /// MLU under the new setting (bit-identical to the evaluator's).
    pub mlu: f64,
    /// Fortz–Thorup Φ under the new setting.
    pub phi: f64,
    /// Number of links whose weight changed vs the base setting.
    pub weight_changes: usize,
    /// Candidate evaluations (probes) the search spent.
    pub evaluations: u64,
}

/// The budgeted Fortz–Thorup descent on a **caller-provided** evaluator:
/// the same local search as [`reoptimize_weights`], but every candidate is
/// scored with an incremental probe against `ev`'s live state instead of a
/// from-scratch router build — the daemon path must not rebuild `|D|`
/// SP-DAGs per event, let alone per candidate. Accepted moves are committed
/// in place, so on return the evaluator sits exactly on the returned
/// weights.
///
/// The evaluator's committed weights are the deployed base and must already
/// be integral in `[1, cfg.ospf.max_weight]` (see [`round_deployed`]);
/// probes are bit-identical to scratch evaluation, so the search walks the
/// identical acceptance trajectory the router-based variant would.
///
/// The objective is scored on whatever workload (demands, waypoints,
/// failure mask, capacity overrides) the evaluator holds — which is what
/// lets the serving loop re-optimize under link failures and capacity
/// changes that a plain `(net, demands)` signature cannot express.
pub fn reoptimize_weights_on(
    ev: &mut IncrementalEvaluator<'_>,
    cfg: &ReoptimizeConfig,
) -> Result<EvaluatorReopt, TeError> {
    let _span = segrout_obs::span("reopt.weights");
    let evals = segrout_obs::counter("reopt.evaluations");
    let m = ev.network().edge_count();
    let base: Vec<u32> = ev
        .weights()
        .iter()
        .map(|&w| (w.round() as u32).clamp(1, cfg.ospf.max_weight))
        .collect();
    debug_assert!(
        ev.weights().iter().zip(&base).all(|(&w, &b)| w == b as f64),
        "reoptimize_weights_on requires integral deployed weights in range"
    );
    let objective = cfg.ospf.objective;
    let pack = |phi: f64, mlu: f64| match objective {
        Objective::PhiThenMlu => (phi, mlu),
        Objective::MluThenPhi => (mlu, phi),
    };

    let mut rng = StdRng::seed_from_u64(cfg.ospf.seed);
    let mut cur = base.clone();
    let mut cur_score = pack(ev.phi(), ev.mlu());
    let mut changed: Vec<usize> = Vec::new();

    // Flight recorder: (phi, mlu) per accepted move, evals counted locally.
    let unpack = |s: (f64, f64)| match objective {
        Objective::PhiThenMlu => (s.0, s.1),
        Objective::MluThenPhi => (s.1, s.0),
    };
    let mut total_evals: u64 = 1;
    let (phi0, mlu0) = unpack(cur_score);
    segrout_obs::trace_point("reopt.start", total_evals, phi0, mlu0);

    let mut edge_order: Vec<usize> = (0..m).collect();
    for _pass in 0..cfg.ospf.max_passes {
        let mut improved = false;
        edge_order.shuffle(&mut rng);
        for &e in &edge_order {
            // Budget: may modify an already-changed link freely, or a fresh
            // one only while budget remains.
            let is_changed = changed.contains(&e);
            if !is_changed && changed.len() >= cfg.max_weight_changes {
                continue;
            }
            let old = cur[e];
            let candidates = [
                old.saturating_sub(1).max(1),
                (old + 1).min(cfg.ospf.max_weight),
                1,
                cfg.ospf.max_weight,
                rng.gen_range(1..=cfg.ospf.max_weight),
            ];
            for &cand in &candidates {
                if cand == old {
                    continue;
                }
                let probe = ev.probe(EdgeId(e as u32), cand as f64)?;
                evals.inc();
                total_evals += 1;
                let s = pack(probe.phi, probe.mlu);
                if s.0 < cur_score.0 - 1e-12
                    || (s.0 <= cur_score.0 + 1e-12 && s.1 < cur_score.1 - 1e-12)
                {
                    cur[e] = cand;
                    ev.commit(probe);
                    cur_score = s;
                    improved = true;
                    let (phi, mlu) = unpack(cur_score);
                    segrout_obs::trace_point("reopt.accept", total_evals, phi, mlu);
                    if !is_changed && cur[e] != base[e] {
                        changed.push(e);
                    }
                    break;
                }
            }
            // Reverting a changed link back to base frees budget.
            if changed.contains(&e) && cur[e] == base[e] {
                changed.retain(|&x| x != e);
            }
            // Commit-point hook: the changed-set bookkeeping must track the
            // actual divergence from the deployed setting exactly — it is
            // what enforces the reconfiguration budget (debug builds only).
            #[cfg(debug_assertions)]
            {
                let diverged: Vec<usize> = (0..m).filter(|&i| cur[i] != base[i]).collect();
                debug_assert!(
                    diverged.len() <= cfg.max_weight_changes,
                    "reopt commit: {} links diverged, budget {}",
                    diverged.len(),
                    cfg.max_weight_changes
                );
                for &i in &diverged {
                    debug_assert!(
                        changed.contains(&i),
                        "reopt commit: link {i} diverged but is not tracked as changed"
                    );
                }
            }
        }
        if !improved {
            break;
        }
    }

    let weights = WeightSetting::new(ev.network(), cur.iter().map(|&x| x as f64).collect())
        .expect("integer weights are valid");
    debug_assert!(
        weights
            .as_slice()
            .iter()
            .zip(ev.weights())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "evaluator must sit on the accepted weights after the search"
    );
    let mlu = ev.mlu();
    let weight_changes = cur.iter().zip(&base).filter(|(a, b)| a != b).count();
    debug_assert!(weight_changes <= cfg.max_weight_changes);
    let (phi_fin, _) = unpack(cur_score);
    segrout_obs::trace_point("reopt.done", total_evals, phi_fin, mlu);
    event!(
        Level::Info,
        "reopt.weights_done",
        mlu = mlu,
        weight_changes = weight_changes,
        budget = cfg.max_weight_changes,
    );
    Ok(EvaluatorReopt {
        weights,
        mlu,
        phi: ev.phi(),
        weight_changes,
        evaluations: total_evals,
    })
}

/// Re-optimizes link weights for `demands` starting from the deployed
/// setting, changing at most `cfg.max_weight_changes` link weights.
///
/// The deployed weights are rounded into the integer range `[1,
/// cfg.ospf.max_weight]` first (re-optimization assumes the deployed
/// setting came from the same toolchain). One incremental evaluator is
/// built for the whole search ([`reoptimize_weights_on`] does the work) —
/// callers that already hold a live evaluator, like the serving loop,
/// should call that entry point directly and skip the build.
///
/// # Errors
/// Propagates routing errors (disconnected demands under every setting).
pub fn reoptimize_weights(
    net: &Network,
    demands: &DemandList,
    deployed: &WeightSetting,
    cfg: &ReoptimizeConfig,
) -> Result<ReoptimizeResult, TeError> {
    let rounded = round_deployed(net, deployed, cfg.ospf.max_weight);
    let mut ev = IncrementalEvaluator::new(
        net,
        &rounded,
        demands,
        &WaypointSetting::none(demands.len()),
    )?;
    let r = reoptimize_weights_on(&mut ev, cfg)?;
    Ok(ReoptimizeResult {
        weights: r.weights,
        waypoints: WaypointSetting::none(demands.len()),
        mlu: r.mlu,
        weight_changes: r.weight_changes,
    })
}

/// Joint re-optimization: first re-assign waypoints under the *deployed*
/// weights (free: no IGP churn), then spend the weight-change budget, then
/// re-assign waypoints once more under the final weights. Returns the best
/// stage.
///
/// # Errors
/// Propagates routing errors.
pub fn reoptimize_joint(
    net: &Network,
    demands: &DemandList,
    deployed: &WeightSetting,
    cfg: &ReoptimizeConfig,
) -> Result<ReoptimizeResult, TeError> {
    let _span = segrout_obs::span("reopt.joint");
    // Stage 1: waypoints on deployed weights.
    let router_old = Router::new(net, deployed);
    let wp1 = greedy_wpo(net, demands, deployed, &cfg.wpo)?;
    let mlu1 = router_old.evaluate(demands, &wp1)?.mlu;
    event!(Level::Debug, "reopt.joint_stage1", mlu = mlu1);

    // Stage 2: constrained weight changes (on the direct demands; the
    // waypoint stage is cheap to re-run afterwards).
    let rw = reoptimize_weights(net, demands, deployed, cfg)?;

    // Stage 3: waypoints on the new weights.
    let wp3 = greedy_wpo(net, demands, &rw.weights, &cfg.wpo)?;
    let router_new = Router::new(net, &rw.weights);
    let mlu3 = router_new.evaluate(demands, &wp3)?.mlu;
    event!(
        Level::Info,
        "reopt.joint_done",
        waypoints_only_mlu = mlu1,
        reweighted_mlu = mlu3,
        kept_deployed_weights = mlu1 <= mlu3,
    );

    let result = if mlu1 <= mlu3 {
        ReoptimizeResult {
            weights: deployed.clone(),
            waypoints: wp1,
            mlu: mlu1,
            weight_changes: 0,
        }
    } else {
        ReoptimizeResult {
            weights: rw.weights,
            waypoints: wp3,
            mlu: mlu3,
            weight_changes: rw.weight_changes,
        }
    };
    // Commit-point hook: the returned (weights, waypoints, mlu) triple must
    // be internally consistent — the stage-selection logic above pairs
    // values computed against different routers (debug builds only).
    #[cfg(debug_assertions)]
    {
        let report = Router::new(net, &result.weights).evaluate(demands, &result.waypoints)?;
        segrout_core::hooks::assert_commit_consistent(
            net,
            &result.weights,
            demands,
            &result.waypoints,
            &report.loads,
            result.mlu,
        );
    }
    Ok(result)
}

/// Convenience oracle: unconstrained re-optimization (full HeurOSPF from
/// scratch) for comparing against the budgeted variants.
pub fn reoptimize_unconstrained(
    net: &Network,
    demands: &DemandList,
    deployed: &WeightSetting,
    cfg: &ReoptimizeConfig,
) -> Result<ReoptimizeResult, TeError> {
    let weights = heur_ospf(net, demands, &cfg.ospf);
    let router = Router::new(net, &weights);
    let mlu = router.mlu(demands)?;
    Ok(ReoptimizeResult {
        weights: weights.clone(),
        waypoints: WaypointSetting::none(demands.len()),
        mlu,
        weight_changes: weight_distance(&weights, deployed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::NodeId;

    /// Deployed weights tuned for one matrix; then the traffic shifts.
    fn shifted_scenario() -> (Network, DemandList, DemandList) {
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 10.0);
        b.bilink(NodeId(1), NodeId(2), 10.0);
        b.bilink(NodeId(2), NodeId(3), 10.0);
        b.bilink(NodeId(3), NodeId(0), 10.0);
        b.bilink(NodeId(0), NodeId(2), 2.0);
        let net = b.build().unwrap();
        let mut before = DemandList::new();
        before.push(NodeId(1), NodeId(3), 8.0);
        let mut after = DemandList::new();
        after.push(NodeId(0), NodeId(2), 8.0); // now the thin diagonal beckons
        (net, before, after)
    }

    #[test]
    fn budget_is_respected() {
        let (net, before, after) = shifted_scenario();
        let deployed = heur_ospf(&net, &before, &HeurOspfConfig::default());
        for budget in [0usize, 1, 3] {
            let cfg = ReoptimizeConfig {
                max_weight_changes: budget,
                ..Default::default()
            };
            let r = reoptimize_weights(&net, &after, &deployed, &cfg).unwrap();
            assert!(
                r.weight_changes <= budget,
                "budget {budget} violated: {} changes",
                r.weight_changes
            );
        }
    }

    #[test]
    fn zero_budget_keeps_deployed_weights() {
        let (net, before, after) = shifted_scenario();
        let deployed = heur_ospf(&net, &before, &HeurOspfConfig::default());
        let cfg = ReoptimizeConfig {
            max_weight_changes: 0,
            ..Default::default()
        };
        let r = reoptimize_weights(&net, &after, &deployed, &cfg).unwrap();
        assert_eq!(r.weight_changes, 0);
    }

    #[test]
    fn more_budget_never_hurts() {
        let (net, before, after) = shifted_scenario();
        let deployed = heur_ospf(&net, &before, &HeurOspfConfig::default());
        let mut last = f64::INFINITY;
        for budget in [0usize, 2, 6] {
            let cfg = ReoptimizeConfig {
                max_weight_changes: budget,
                ..Default::default()
            };
            let r = reoptimize_weights(&net, &after, &deployed, &cfg).unwrap();
            assert!(r.mlu <= last + 1e-9, "budget {budget}: {} > {last}", r.mlu);
            last = r.mlu;
        }
    }

    #[test]
    fn joint_reopt_beats_or_matches_weights_only() {
        let (net, before, after) = shifted_scenario();
        let deployed = heur_ospf(&net, &before, &HeurOspfConfig::default());
        let cfg = ReoptimizeConfig {
            max_weight_changes: 1,
            ..Default::default()
        };
        let w_only = reoptimize_weights(&net, &after, &deployed, &cfg).unwrap();
        let joint = reoptimize_joint(&net, &after, &deployed, &cfg).unwrap();
        assert!(joint.mlu <= w_only.mlu + 1e-9);
    }

    #[test]
    fn unconstrained_is_the_quality_oracle() {
        let (net, before, after) = shifted_scenario();
        let deployed = heur_ospf(&net, &before, &HeurOspfConfig::default());
        let cfg = ReoptimizeConfig {
            max_weight_changes: 2,
            ..Default::default()
        };
        let constrained = reoptimize_weights(&net, &after, &deployed, &cfg).unwrap();
        let oracle = reoptimize_unconstrained(&net, &after, &deployed, &cfg).unwrap();
        assert!(oracle.mlu <= constrained.mlu + 1e-9);
    }

    #[test]
    fn weight_distance_counts_differences() {
        let (net, _, _) = shifted_scenario();
        let a = WeightSetting::unit(&net);
        let mut b = WeightSetting::unit(&net);
        b.set(segrout_core::EdgeId(0), 5.0);
        b.set(segrout_core::EdgeId(3), 2.0);
        assert_eq!(weight_distance(&a, &b), 2);
        assert_eq!(weight_distance(&a, &a), 0);
    }
}
