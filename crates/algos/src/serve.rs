//! Online reoptimization sessions: the in-process engine behind
//! `segrout serve`.
//!
//! A [`ServeSession`] holds a topology, the currently deployed
//! weights/waypoints, and a live [`IncrementalEvaluator`], and absorbs a
//! stream of [`ServeEvent`]s — demand updates, demand-matrix replacement,
//! link up/down, capacity changes — mutating the evaluator **in place**
//! (never rebuilding the `|D|` shortest-path DAGs wholesale) and answering
//! each event through a tiered policy:
//!
//! 1. **Probe** — the event's impact stays within `reopt_ratio` of the best
//!    MLU seen, so the instant incremental readout is the answer; no
//!    reconfiguration, zero churn.
//! 2. **Local** — MLU drifted past the reopt threshold: run the budgeted
//!    Fortz–Thorup descent ([`reoptimize_weights_on`]) on the live
//!    evaluator, changing at most `reopt.max_weight_changes` link weights.
//! 3. **Escalate** — MLU blew past `escalate_ratio` (e.g. a link failure
//!    severed a trunk): re-run the same warm-started descent with the
//!    change budget opened to every link. The evaluator still carries the
//!    failure mask and capacity overrides, so escalation optimizes the
//!    *actual* degraded network.
//!
//! Every response reports the minimal-churn weight diff (old/new pairs for
//! exactly the links that changed), the post-event MLU/Φ, and bookkeeping
//! for the `serve.*` metric catalog. Malformed or inapplicable events get
//! an error reply and leave the session state untouched — a serving daemon
//! must not die (or drift) on bad input.
//!
//! Everything observable is deterministic: responses carry no wall-clock
//! fields with protocol significance (latency is measured but excluded
//! from rendering/equality), and event application routes through the same
//! propagation kernels as a from-scratch build, so replaying an event log
//! yields bit-identical state at any thread count.

use crate::reopt::{reoptimize_weights_on, round_deployed, ReoptimizeConfig};
use segrout_core::{
    Demand, DemandList, EdgeId, IncrementalEvaluator, Network, NodeId, TeError, WaypointSetting,
    WeightSetting,
};

/// One event on the serving input stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeEvent {
    /// No state change — a keep-alive; answers with the current readout.
    Noop,
    /// Scale demand `index` by `factor` (the classic "flow crossed its
    /// threshold" trigger).
    DemandScale {
        /// Index into the current demand list.
        index: usize,
        /// Multiplicative factor (finite, positive).
        factor: f64,
    },
    /// Replace the whole demand matrix (a fresh measurement epoch). Resets
    /// waypoints to none — the old assignment indexes the old matrix.
    DemandMatrix {
        /// The new demands as `(src, dst, size)` triples.
        demands: Vec<(NodeId, NodeId, f64)>,
    },
    /// Take a link down (failure or maintenance).
    LinkDown {
        /// The failing edge.
        edge: EdgeId,
    },
    /// Bring a previously downed link back up.
    LinkUp {
        /// The recovering edge.
        edge: EdgeId,
    },
    /// Change a link's capacity (e.g. a LAG member loss).
    Capacity {
        /// The affected edge.
        edge: EdgeId,
        /// New capacity (finite, positive).
        capacity: f64,
    },
}

/// Which tier of the serving policy answered an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTier {
    /// Incremental readout only; no reconfiguration.
    Probe,
    /// Budgeted local search re-optimized within the churn budget.
    Local,
    /// Full-budget warm-started re-solve.
    Escalate,
    /// The event was rejected; state unchanged.
    Error,
}

impl ServeTier {
    /// Stable wire name (`none`/`local`/`escalate`/`error`).
    pub fn as_str(self) -> &'static str {
        match self {
            ServeTier::Probe => "none",
            ServeTier::Local => "local",
            ServeTier::Escalate => "escalate",
            ServeTier::Error => "error",
        }
    }
}

/// The answer to one [`ServeEvent`].
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// Monotone event sequence number (1-based; error replies consume one
    /// too, so responses and input lines stay zippable).
    pub seq: u64,
    /// Which policy tier produced the answer.
    pub tier: ServeTier,
    /// Post-event maximum link utilization.
    pub mlu: f64,
    /// Post-event Fortz–Thorup Φ.
    pub phi: f64,
    /// Minimal-churn weight diff: `(edge, old, new)` for exactly the links
    /// whose weight changed (bitwise) while answering this event.
    pub weight_diffs: Vec<(EdgeId, f64, f64)>,
    /// `weight_diffs.len()` — the reconfiguration churn of this event.
    pub churn: usize,
    /// Candidate evaluations spent (0 for probe/error tiers).
    pub evaluations: u64,
    /// Wall-clock time spent answering, in milliseconds. Bookkeeping only:
    /// excluded from the wire rendering so replays stay byte-identical.
    pub latency_ms: f64,
    /// Human-readable reason when `tier == Error`.
    pub error: Option<String>,
}

/// Serving-policy knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Budget/seed configuration for the local-search tiers.
    pub reopt: ReoptimizeConfig,
    /// Per-event latency SLO in milliseconds; answers slower than this are
    /// counted as violations (`<= 0` disables the bookkeeping).
    pub slo_ms: f64,
    /// Re-optimize when post-event MLU exceeds `best_mlu * reopt_ratio`.
    pub reopt_ratio: f64,
    /// Escalate to a full-budget re-solve when post-event MLU exceeds
    /// `best_mlu * escalate_ratio`.
    pub escalate_ratio: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            reopt: ReoptimizeConfig::default(),
            slo_ms: 50.0,
            reopt_ratio: 1.05,
            escalate_ratio: 1.5,
        }
    }
}

/// Session-local tallies mirroring the process-global `serve.*` counters
/// (tests read these — the obs registry is shared across a test binary's
/// threads and cannot be asserted on exactly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Events consumed (including rejected ones).
    pub events: u64,
    /// Events rejected with an error reply.
    pub errors: u64,
    /// Events answered by the probe tier alone.
    pub probe_only: u64,
    /// Events that triggered the budgeted local search.
    pub local_reopts: u64,
    /// Events that escalated to the full-budget re-solve.
    pub escalations: u64,
    /// Events whose latency exceeded the SLO.
    pub slo_violations: u64,
    /// Total link-weight changes deployed across all events.
    pub weight_churn: u64,
}

/// Process-global `serve.*` metric handles, registered once.
struct ServeMetrics {
    events: std::sync::Arc<segrout_obs::Counter>,
    errors: std::sync::Arc<segrout_obs::Counter>,
    probe_only: std::sync::Arc<segrout_obs::Counter>,
    local_reopts: std::sync::Arc<segrout_obs::Counter>,
    escalations: std::sync::Arc<segrout_obs::Counter>,
    slo_violations: std::sync::Arc<segrout_obs::Counter>,
    weight_churn: std::sync::Arc<segrout_obs::Counter>,
    latency_ms: std::sync::Arc<segrout_obs::Histogram>,
    mlu: std::sync::Arc<segrout_obs::Gauge>,
}

fn metrics() -> &'static ServeMetrics {
    static METRICS: std::sync::OnceLock<ServeMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        events: segrout_obs::counter("serve.events"),
        errors: segrout_obs::counter("serve.errors"),
        probe_only: segrout_obs::counter("serve.probe_only"),
        local_reopts: segrout_obs::counter("serve.local_reopts"),
        escalations: segrout_obs::counter("serve.escalations"),
        slo_violations: segrout_obs::counter("serve.slo_violations"),
        weight_churn: segrout_obs::counter("serve.weight_churn"),
        latency_ms: segrout_obs::histogram("serve.latency_ms", segrout_obs::latency_bounds_ms()),
        mlu: segrout_obs::gauge("serve.mlu"),
    })
}

/// A long-running serving session over one topology.
pub struct ServeSession<'n> {
    net: &'n Network,
    cfg: ServeConfig,
    demands: DemandList,
    waypoints: WaypointSetting,
    ev: IncrementalEvaluator<'n>,
    /// Best MLU seen since the last reconfiguration — the anchor the tier
    /// thresholds compare against.
    anchor_mlu: f64,
    seq: u64,
    stats: ServeStats,
}

impl<'n> ServeSession<'n> {
    /// Opens a session on `net` with the deployed setting. Weights are
    /// rounded into the integer range `[1, cfg.reopt.ospf.max_weight]`
    /// (the deployed setting came from the same toolchain; fractional
    /// settings like inverse-capacity are snapped onto the reopt grid so
    /// every later probe compares like with like).
    ///
    /// # Errors
    /// Propagates evaluator construction errors (disconnected demands).
    pub fn new(
        net: &'n Network,
        deployed: &WeightSetting,
        demands: DemandList,
        waypoints: WaypointSetting,
        cfg: ServeConfig,
    ) -> Result<Self, TeError> {
        let rounded = round_deployed(net, deployed, cfg.reopt.ospf.max_weight);
        let ev = IncrementalEvaluator::new(net, &rounded, &demands, &waypoints)?;
        let anchor_mlu = ev.mlu();
        Ok(Self {
            net,
            cfg,
            demands,
            waypoints,
            ev,
            anchor_mlu,
            seq: 0,
            stats: ServeStats::default(),
        })
    }

    /// The topology this session serves.
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The live evaluator (current weights, loads, failure mask, capacity
    /// overrides) — what differential tests compare against a scratch
    /// rebuild.
    pub fn evaluator(&self) -> &IncrementalEvaluator<'n> {
        &self.ev
    }

    /// The current demand list.
    pub fn demands(&self) -> &DemandList {
        &self.demands
    }

    /// The current waypoint assignment.
    pub fn waypoints(&self) -> &WaypointSetting {
        &self.waypoints
    }

    /// Session-local tallies.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Sequence number of the last response (0 before any event).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The serving-policy configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Rejects an input the caller could not even parse into a
    /// [`ServeEvent`] (malformed JSONL, unknown event type). Consumes a
    /// sequence number so responses stay zippable with input lines, and
    /// counts toward `serve.errors`; session state is untouched.
    pub fn reject(&mut self, reason: &str) -> ServeResponse {
        let m = metrics();
        self.seq += 1;
        self.stats.events += 1;
        self.stats.errors += 1;
        m.events.inc();
        m.errors.inc();
        ServeResponse {
            seq: self.seq,
            tier: ServeTier::Error,
            mlu: self.ev.mlu(),
            phi: self.ev.phi(),
            weight_diffs: Vec::new(),
            churn: 0,
            evaluations: 0,
            latency_ms: 0.0,
            error: Some(reason.to_string()),
        }
    }

    /// Applies one event and answers it through the tiered policy. Never
    /// fails: inapplicable events (bad index, disconnecting failure,
    /// invalid value) produce an [`ServeTier::Error`] response and leave
    /// the session state bit-for-bit untouched.
    pub fn apply(&mut self, event: &ServeEvent) -> ServeResponse {
        let _span = segrout_obs::span("serve.event");
        let m = metrics();
        let start = std::time::Instant::now();
        self.seq += 1;
        self.stats.events += 1;
        m.events.inc();

        let old_weights: Vec<f64> = self.ev.weights().to_vec();
        let mut response = match self.apply_inner(event) {
            Err(e) => {
                self.stats.errors += 1;
                m.errors.inc();
                ServeResponse {
                    seq: self.seq,
                    tier: ServeTier::Error,
                    mlu: self.ev.mlu(),
                    phi: self.ev.phi(),
                    weight_diffs: Vec::new(),
                    churn: 0,
                    evaluations: 0,
                    latency_ms: 0.0,
                    error: Some(e.to_string()),
                }
            }
            Ok(()) => self.answer(&old_weights),
        };

        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        response.latency_ms = latency_ms;
        m.latency_ms.observe(latency_ms);
        m.mlu.set(self.ev.mlu());
        if self.cfg.slo_ms > 0.0 && latency_ms > self.cfg.slo_ms {
            self.stats.slo_violations += 1;
            m.slo_violations.inc();
        }
        response
    }

    /// Mutates the evaluator (and session workload mirrors) in place.
    /// Every error path returns **before** any state change.
    fn apply_inner(&mut self, event: &ServeEvent) -> Result<(), TeError> {
        let edge_count = self.net.edge_count();
        let check_edge = |e: EdgeId| {
            if e.index() >= edge_count {
                Err(TeError::DimensionMismatch {
                    what: "edge id",
                    expected: edge_count,
                    actual: e.index(),
                })
            } else {
                Ok(())
            }
        };
        match event {
            ServeEvent::Noop => Ok(()),
            ServeEvent::DemandScale { index, factor } => {
                if *index >= self.demands.len() {
                    return Err(TeError::DimensionMismatch {
                        what: "demand index",
                        expected: self.demands.len(),
                        actual: *index,
                    });
                }
                if !(factor.is_finite() && *factor > 0.0) {
                    return Err(TeError::InvalidDemand {
                        index: *index,
                        value: *factor,
                    });
                }
                let mut scaled: Vec<Demand> = self.demands.as_slice().to_vec();
                scaled[*index].size *= factor;
                let new_demands = DemandList::from_vec(scaled)?;
                self.ev.set_workload(&new_demands, &self.waypoints)?;
                self.demands = new_demands;
                Ok(())
            }
            ServeEvent::DemandMatrix { demands } => {
                let node_count = self.net.node_count();
                for &(src, dst, _) in demands {
                    for n in [src, dst] {
                        if n.index() >= node_count {
                            return Err(TeError::DimensionMismatch {
                                what: "node id",
                                expected: node_count,
                                actual: n.index(),
                            });
                        }
                    }
                }
                let list: Vec<Demand> = demands
                    .iter()
                    .map(|&(src, dst, size)| Demand { src, dst, size })
                    .collect();
                let new_demands = DemandList::from_vec(list)?;
                let new_waypoints = WaypointSetting::none(new_demands.len());
                self.ev.set_workload(&new_demands, &new_waypoints)?;
                self.demands = new_demands;
                self.waypoints = new_waypoints;
                Ok(())
            }
            ServeEvent::LinkDown { edge } => {
                check_edge(*edge)?;
                self.ev.set_link_state(*edge, false)?;
                Ok(())
            }
            ServeEvent::LinkUp { edge } => {
                check_edge(*edge)?;
                self.ev.set_link_state(*edge, true)?;
                Ok(())
            }
            ServeEvent::Capacity { edge, capacity } => {
                check_edge(*edge)?;
                self.ev.set_capacity(*edge, *capacity)?;
                Ok(())
            }
        }
    }

    /// Tier classification and (if warranted) re-optimization, after the
    /// event itself applied cleanly.
    fn answer(&mut self, old_weights: &[f64]) -> ServeResponse {
        let m = metrics();
        let mlu = self.ev.mlu();
        let (tier, evaluations) = if mlu <= self.anchor_mlu * self.cfg.reopt_ratio + 1e-12 {
            // Within tolerance of the best state seen: the probe readout is
            // the answer. Track improvements so the anchor follows genuine
            // load decreases (a demand scale-down must not leave a stale
            // high anchor that masks the next degradation).
            self.anchor_mlu = self.anchor_mlu.min(mlu);
            self.stats.probe_only += 1;
            m.probe_only.inc();
            (ServeTier::Probe, 0)
        } else {
            let escalate = mlu > self.anchor_mlu * self.cfg.escalate_ratio;
            let cfg = if escalate {
                // Escalation: same warm-started descent, budget opened to
                // every link. The evaluator keeps its failure mask and
                // capacity overrides, so this re-solves the degraded
                // network, not the nominal one.
                let mut full = self.cfg.reopt.clone();
                full.max_weight_changes = self.net.edge_count();
                full
            } else {
                self.cfg.reopt.clone()
            };
            match reoptimize_weights_on(&mut self.ev, &cfg) {
                Ok(r) => {
                    if escalate {
                        self.stats.escalations += 1;
                        m.escalations.inc();
                        (ServeTier::Escalate, r.evaluations)
                    } else {
                        self.stats.local_reopts += 1;
                        m.local_reopts.inc();
                        (ServeTier::Local, r.evaluations)
                    }
                }
                // The search starts from a committed, feasible state and
                // only probes single-weight changes, so it cannot fail; if
                // it somehow does, serve the unoptimized readout.
                Err(_) => (ServeTier::Probe, 0),
            }
            // Reconfigured (or at least searched): re-anchor on the new
            // deployed state so the next event is judged against it.
        };
        if tier != ServeTier::Probe {
            self.anchor_mlu = self.ev.mlu();
        }

        let weight_diffs: Vec<(EdgeId, f64, f64)> = old_weights
            .iter()
            .zip(self.ev.weights())
            .enumerate()
            .filter(|(_, (a, b))| a.to_bits() != b.to_bits())
            .map(|(e, (&a, &b))| (EdgeId(e as u32), a, b))
            .collect();
        let churn = weight_diffs.len();
        self.stats.weight_churn += churn as u64;
        m.weight_churn.add(churn as u64);

        ServeResponse {
            seq: self.seq,
            tier,
            mlu: self.ev.mlu(),
            phi: self.ev.phi(),
            weight_diffs,
            churn,
            evaluations,
            latency_ms: 0.0,
            error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shifted-hotspot scenario from `reopt.rs`: a 4-node bidirectional
    /// ring (capacity 10) plus a thin 0↔2 diagonal (capacity 2).
    fn ring_net() -> Network {
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 10.0);
        b.bilink(NodeId(1), NodeId(2), 10.0);
        b.bilink(NodeId(2), NodeId(3), 10.0);
        b.bilink(NodeId(3), NodeId(0), 10.0);
        b.bilink(NodeId(0), NodeId(2), 2.0);
        b.build().expect("valid network")
    }

    fn unit_weights(net: &Network) -> WeightSetting {
        WeightSetting::new(net, vec![1.0; net.edge_count()]).expect("unit weights")
    }

    fn demands(entries: &[(u32, u32, f64)]) -> DemandList {
        DemandList::from_vec(
            entries
                .iter()
                .map(|&(s, t, size)| Demand {
                    src: NodeId(s),
                    dst: NodeId(t),
                    size,
                })
                .collect(),
        )
        .expect("valid demands")
    }

    fn session(net: &Network) -> ServeSession<'_> {
        let d = demands(&[(1, 3, 8.0), (0, 1, 1.0)]);
        let w = unit_weights(net);
        let n = d.len();
        ServeSession::new(net, &w, d, WaypointSetting::none(n), ServeConfig::default())
            .expect("session opens")
    }

    #[test]
    fn noop_is_probe_tier_with_zero_churn() {
        let net = ring_net();
        let mut s = session(&net);
        let r = s.apply(&ServeEvent::Noop);
        assert_eq!(r.seq, 1);
        assert_eq!(r.tier, ServeTier::Probe);
        assert_eq!(r.churn, 0);
        assert!(r.weight_diffs.is_empty());
        assert!(r.error.is_none());
        assert_eq!(s.stats().probe_only, 1);
        assert_eq!(s.stats().events, 1);
    }

    #[test]
    fn bad_events_reply_error_and_leave_state_untouched() {
        let net = ring_net();
        let mut s = session(&net);
        let before: Vec<u64> = s.evaluator().loads().iter().map(|x| x.to_bits()).collect();
        let mlu = s.evaluator().mlu().to_bits();
        let cases = [
            ServeEvent::DemandScale {
                index: 99,
                factor: 2.0,
            },
            ServeEvent::DemandScale {
                index: 0,
                factor: -1.0,
            },
            ServeEvent::LinkDown {
                edge: EdgeId(1_000),
            },
            ServeEvent::Capacity {
                edge: EdgeId(0),
                capacity: f64::NAN,
            },
            ServeEvent::DemandMatrix {
                demands: vec![(NodeId(0), NodeId(1), -3.0)],
            },
        ];
        for (i, ev) in cases.iter().enumerate() {
            let r = s.apply(ev);
            assert_eq!(r.tier, ServeTier::Error, "case {i}");
            assert!(r.error.is_some(), "case {i}");
            assert_eq!(r.seq, i as u64 + 1, "seq stays monotone through errors");
        }
        let after: Vec<u64> = s.evaluator().loads().iter().map(|x| x.to_bits()).collect();
        assert_eq!(before, after);
        assert_eq!(mlu, s.evaluator().mlu().to_bits());
        assert_eq!(s.stats().errors, cases.len() as u64);
    }

    #[test]
    fn demand_spike_triggers_local_reopt_within_budget() {
        let net = ring_net();
        let mut s = session(&net);
        // Unit weights split 1→3 over both ring directions (MLU 0.4); a 2×
        // spike pushes it past the 5% threshold and the budgeted search
        // must react with at most the configured number of weight changes.
        let r = s.apply(&ServeEvent::DemandScale {
            index: 0,
            factor: 2.0,
        });
        assert!(
            r.tier == ServeTier::Local || r.tier == ServeTier::Escalate,
            "a 2x spike must trigger reoptimization, got {:?}",
            r.tier
        );
        if r.tier == ServeTier::Local {
            assert!(r.churn <= s.config().reopt.max_weight_changes);
        }
        assert!(r.evaluations > 0);
        // The diff must reconstruct the deployed weights.
        for &(e, _, new) in &r.weight_diffs {
            assert_eq!(s.evaluator().weights()[e.index()].to_bits(), new.to_bits());
        }
    }

    #[test]
    fn link_flap_round_trips_to_identical_state() {
        let net = ring_net();
        // Keep the workload light so the probe tier answers both events and
        // no reconfiguration interferes with the round-trip.
        let d = demands(&[(0, 1, 1.0)]);
        let w = unit_weights(&net);
        let mut s = ServeSession::new(&net, &w, d, WaypointSetting::none(1), {
            ServeConfig::default()
        })
        .expect("session opens");
        let before: Vec<u64> = s.evaluator().loads().iter().map(|x| x.to_bits()).collect();
        let down = s.apply(&ServeEvent::LinkDown { edge: EdgeId(0) });
        assert!(down.error.is_none());
        let up = s.apply(&ServeEvent::LinkUp { edge: EdgeId(0) });
        assert!(up.error.is_none());
        let after: Vec<u64> = s.evaluator().loads().iter().map(|x| x.to_bits()).collect();
        assert_eq!(before, after, "down+up must restore the exact state");
        assert!(!s.evaluator().disabled().iter().any(|&d| d));
    }

    #[test]
    fn capacity_cut_changes_mlu_only() {
        let net = ring_net();
        let mut s = session(&net);
        let loads: Vec<u64> = s.evaluator().loads().iter().map(|x| x.to_bits()).collect();
        let mlu0 = s.evaluator().mlu();
        let r = s.apply(&ServeEvent::Capacity {
            edge: EdgeId(2),
            capacity: 5.0,
        });
        assert!(r.error.is_none());
        // Routing is weight-driven: loads unchanged unless a reopt fired.
        if r.tier == ServeTier::Probe {
            let now: Vec<u64> = s.evaluator().loads().iter().map(|x| x.to_bits()).collect();
            assert_eq!(loads, now);
        }
        assert!(s.evaluator().mlu() >= mlu0);
    }

    #[test]
    fn matrix_replacement_resets_waypoints() {
        let net = ring_net();
        let mut s = session(&net);
        let r = s.apply(&ServeEvent::DemandMatrix {
            demands: vec![(NodeId(0), NodeId(2), 3.0), (NodeId(2), NodeId(0), 1.0)],
        });
        assert!(r.error.is_none());
        assert_eq!(s.demands().len(), 2);
        assert_eq!(s.waypoints().len(), 2);
        assert_eq!(s.waypoints().max_used(), 0);
    }

    #[test]
    fn reject_consumes_a_sequence_number() {
        let net = ring_net();
        let mut s = session(&net);
        let r1 = s.apply(&ServeEvent::Noop);
        let r2 = s.reject("parse error: not json");
        let r3 = s.apply(&ServeEvent::Noop);
        assert_eq!((r1.seq, r2.seq, r3.seq), (1, 2, 3));
        assert_eq!(r2.tier, ServeTier::Error);
        assert_eq!(s.stats().errors, 1);
        assert_eq!(s.stats().events, 3);
    }

    #[test]
    fn stats_tiers_partition_events() {
        let net = ring_net();
        let mut s = session(&net);
        let events = [
            ServeEvent::Noop,
            ServeEvent::DemandScale {
                index: 0,
                factor: 2.0,
            },
            ServeEvent::DemandScale {
                index: 99,
                factor: 1.0,
            },
            ServeEvent::Capacity {
                edge: EdgeId(0),
                capacity: 20.0,
            },
            ServeEvent::Noop,
        ];
        for ev in &events {
            let _ = s.apply(ev);
        }
        let st = *s.stats();
        assert_eq!(st.events, events.len() as u64);
        assert_eq!(
            st.probe_only + st.local_reopts + st.escalations + st.errors,
            st.events,
            "every event lands in exactly one tier"
        );
    }
}
