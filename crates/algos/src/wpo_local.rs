//! Local-search waypoint optimization: iterated full sweeps that may
//! *insert, move or remove* each demand's waypoint, run to a fixed point.
//!
//! GreedyWPO (Algorithm 3) is a single greedy pass — once a waypoint is
//! placed it is never reconsidered, so early (large) demands can pin the
//! configuration into a local optimum that later assignments invalidate.
//! This refinement addresses the paper's §8 question of "how many
//! iterations … would be sufficient": it repeats the per-demand best-move
//! sweep until no move improves the MLU, which subsumes GreedyWPO (whose
//! result is exactly the state after the first sweep restricted to
//! insertions).

use crate::greedy_wpo::GreedyWpoConfig;
use segrout_core::{
    max_link_utilization, DemandList, EdgeId, Network, NodeId, Router, TeError, WaypointSetting,
    WeightSetting,
};

/// Configuration of the local-search WPO.
#[derive(Clone, Debug)]
pub struct WpoLocalConfig {
    /// Shared knobs (candidates, improvement threshold, budget `W = 1`).
    pub base: GreedyWpoConfig,
    /// Maximum number of full sweeps (each sweep visits every demand).
    pub max_sweeps: usize,
}

impl Default for WpoLocalConfig {
    fn default() -> Self {
        Self {
            base: GreedyWpoConfig::default(),
            max_sweeps: 10,
        }
    }
}

/// Runs local-search WPO (single-waypoint moves, iterated to fixpoint).
///
/// # Errors
/// Fails when the initial all-direct routing is impossible.
pub fn wpo_local_search(
    net: &Network,
    demands: &DemandList,
    weights: &WeightSetting,
    cfg: &WpoLocalConfig,
) -> Result<WaypointSetting, TeError> {
    let router = Router::new(net, weights);
    let caps = net.capacities();
    let mut setting = WaypointSetting::none(demands.len());
    let mut loads = router.evaluate(demands, &setting)?.loads;
    let mut u_cur = max_link_utilization(&loads, caps);

    let all_nodes: Vec<NodeId> = net.graph().nodes().collect();
    let candidates: &[NodeId] = cfg.base.candidates.as_deref().unwrap_or(&all_nodes);
    let mut scratch = loads.clone();

    let route =
        |chain: &[NodeId], d: &segrout_core::Demand| -> Result<Vec<(EdgeId, f64)>, TeError> {
            let mut out = Vec::new();
            let mut cur = d.src;
            for &hop in chain.iter().chain(std::iter::once(&d.dst)) {
                if hop != cur {
                    out.extend(router.segment_loads_sparse(cur, hop, d.size)?);
                    cur = hop;
                }
            }
            Ok(out)
        };

    for _sweep in 0..cfg.max_sweeps {
        let mut moved = false;
        for i in demands.indices_by_descending_size() {
            let d = demands[i];
            let current_chain = setting.get(i).to_vec();
            let current = route(&current_chain, &d)?;
            for &(e, l) in &current {
                loads[e.index()] -= l;
            }

            // Candidate set: direct + every single waypoint (move/remove
            // semantics fall out of re-choosing from scratch).
            let mut best_chain = current_chain.clone();
            let mut best_u = u_cur;
            let mut best_delta = current.clone();
            let mut options: Vec<Vec<NodeId>> = vec![Vec::new()];
            options.extend(
                candidates
                    .iter()
                    .filter(|&&w| w != d.src && w != d.dst)
                    .map(|&w| vec![w]),
            );
            for chain in options {
                if chain == current_chain {
                    continue;
                }
                let Ok(delta) = route(&chain, &d) else {
                    continue;
                };
                scratch.copy_from_slice(&loads);
                for &(e, l) in &delta {
                    scratch[e.index()] += l;
                }
                let u = max_link_utilization(&scratch, caps);
                if u < best_u * (1.0 - cfg.base.min_improvement) {
                    best_u = u;
                    best_chain = chain;
                    best_delta = delta;
                }
            }

            if best_chain != current_chain {
                setting.set(i, best_chain);
                u_cur = best_u;
                moved = true;
            }
            for (e, l) in best_delta {
                loads[e.index()] += l;
            }
        }
        if !moved {
            break;
        }
    }
    Ok(setting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_wpo::greedy_wpo;

    fn instance1_like() -> (Network, DemandList, WeightSetting) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 3.0);
        b.link(NodeId(1), NodeId(2), 3.0);
        b.link(NodeId(0), NodeId(3), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..3 {
            d.push(NodeId(0), NodeId(3), 1.0);
        }
        let w = WeightSetting::new(&net, vec![1.0, 1.0, 2.0, 10.0, 10.0]).unwrap();
        (net, d, w)
    }

    #[test]
    fn never_worse_than_greedy() {
        let (net, d, w) = instance1_like();
        let router = Router::new(&net, &w);
        let greedy = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        let local = wpo_local_search(&net, &d, &w, &WpoLocalConfig::default()).unwrap();
        let ug = router.evaluate(&d, &greedy).unwrap().mlu;
        let ul = router.evaluate(&d, &local).unwrap().mlu;
        assert!(ul <= ug + 1e-9, "local {ul} vs greedy {ug}");
    }

    #[test]
    fn can_remove_a_waypoint() {
        // A network where no waypoint helps: the fixpoint must be all-direct
        // even if intermediate states tried placements.
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 2.0);
        b.link(NodeId(1), NodeId(2), 2.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        let w = WeightSetting::unit(&net);
        let local = wpo_local_search(&net, &d, &w, &WpoLocalConfig::default()).unwrap();
        assert!(local.get(0).is_empty());
    }

    #[test]
    fn mlu_never_increases_per_config() {
        let (net, d, w) = instance1_like();
        let router = Router::new(&net, &w);
        let before = router.mlu(&d).unwrap();
        let local = wpo_local_search(&net, &d, &w, &WpoLocalConfig::default()).unwrap();
        let after = router.evaluate(&d, &local).unwrap().mlu;
        assert!(after <= before + 1e-9);
    }

    #[test]
    fn sweep_limit_is_respected() {
        let (net, d, w) = instance1_like();
        let cfg = WpoLocalConfig {
            max_sweeps: 1,
            ..Default::default()
        };
        // One sweep = greedy with move semantics; must still terminate and
        // return a valid setting.
        let s = wpo_local_search(&net, &d, &w, &cfg).unwrap();
        assert!(s.max_used() <= 1);
    }
}
