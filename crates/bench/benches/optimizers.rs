//! Benchmarks of the paper's optimizers: LWO-APX (Algorithm 1), GreedyWPO
//! (Algorithm 3), one HeurOSPF descent, and the end-to-end JOINT-Heur.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, lwo_apx, max_concurrent_flow, GreedyWpoConfig,
    HeurOspfConfig, JointHeurConfig,
};
use segrout_core::WeightSetting;
use segrout_instances::{instance1, instance3};
use segrout_topo::{abilene, by_name};
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizers");

    // LWO-APX on the adversarial constructions.
    for m in [16usize, 64] {
        let inst = instance1(m);
        group.bench_with_input(BenchmarkId::new("lwo_apx_instance1", m), &inst, |b, inst| {
            b.iter(|| lwo_apx(&inst.network, inst.source, inst.target).expect("routes").es_flow_value)
        });
        let i3 = instance3(m.min(24));
        group.bench_with_input(BenchmarkId::new("lwo_apx_instance3", m.min(24)), &i3, |b, i3| {
            b.iter(|| lwo_apx(&i3.network, i3.source, i3.target).expect("routes").es_flow_value)
        });
    }

    // GreedyWPO and HeurOSPF on Abilene-scale inputs.
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 2,
            ..Default::default()
        },
    )
    .expect("connected");
    let inv = WeightSetting::inverse_capacity(&net);
    group.bench_function("greedy_wpo_abilene", |b| {
        b.iter(|| greedy_wpo(&net, &demands, &inv, &GreedyWpoConfig::default()).expect("routes"))
    });
    let quick = HeurOspfConfig {
        restarts: 0,
        max_passes: 3,
        ..Default::default()
    };
    group.bench_function("heur_ospf_abilene_3passes", |b| {
        b.iter(|| heur_ospf(&net, &demands, &quick))
    });
    group.bench_function("joint_heur_abilene", |b| {
        b.iter(|| {
            joint_heur(
                &net,
                &demands,
                &JointHeurConfig {
                    ospf: quick.clone(),
                    ..Default::default()
                },
            )
            .expect("routes")
            .mlu
        })
    });

    // The MCF FPTAS on a mid-size topology.
    let g50 = by_name("Germany50").expect("embedded");
    let d50 = mcf_synthetic(
        &g50,
        &TrafficConfig {
            seed: 3,
            flows_per_pair: Some(1),
            ..Default::default()
        },
    )
    .expect("connected");
    group.sample_size(10);
    group.bench_function("mcf_fptas_germany50", |b| {
        b.iter(|| max_concurrent_flow(&g50, &d50, 0.1).expect("routes").lambda)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_optimizers
}
criterion_main!(benches);
