//! Benchmarks of the paper's optimizers: LWO-APX (Algorithm 1), GreedyWPO
//! (Algorithm 3), one HeurOSPF descent, and the end-to-end JOINT-Heur.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench -p segrout-bench --bench optimizers`. Accepts the shared
//! `--log-level` / `--metrics-out` observability flags.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, lwo_apx, max_concurrent_flow, GreedyWpoConfig,
    HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, time_it};
use segrout_core::WeightSetting;
use segrout_instances::{instance1, instance3};
use segrout_topo::{abilene, by_name};
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn main() {
    banner("bench: optimizers (LWO-APX, GreedyWPO, HeurOSPF, JOINT-Heur, MCF)");
    const SAMPLES: usize = 10;

    // LWO-APX on the adversarial constructions.
    for m in [16usize, 64] {
        let inst = instance1(m);
        time_it(&format!("lwo_apx_instance1/{m}"), SAMPLES, || {
            lwo_apx(&inst.network, inst.source, inst.target)
                .expect("routes")
                .es_flow_value
        });
        let i3 = instance3(m.min(24));
        time_it(&format!("lwo_apx_instance3/{}", m.min(24)), SAMPLES, || {
            lwo_apx(&i3.network, i3.source, i3.target)
                .expect("routes")
                .es_flow_value
        });
    }

    // GreedyWPO and HeurOSPF on Abilene-scale inputs.
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 2,
            ..Default::default()
        },
    )
    .expect("connected");
    let inv = WeightSetting::inverse_capacity(&net);
    time_it("greedy_wpo_abilene", SAMPLES, || {
        greedy_wpo(&net, &demands, &inv, &GreedyWpoConfig::default()).expect("routes")
    });
    let quick = HeurOspfConfig {
        restarts: 0,
        max_passes: 3,
        ..Default::default()
    };
    time_it("heur_ospf_abilene_3passes", SAMPLES, || {
        heur_ospf(&net, &demands, &quick)
    });
    time_it("joint_heur_abilene", SAMPLES, || {
        joint_heur(
            &net,
            &demands,
            &JointHeurConfig {
                ospf: quick.clone(),
                ..Default::default()
            },
        )
        .expect("routes")
        .mlu
    });

    // The MCF FPTAS on a mid-size topology.
    let g50 = by_name("Germany50").expect("embedded");
    let d50 = mcf_synthetic(
        &g50,
        &TrafficConfig {
            seed: 3,
            flows_per_pair: Some(1),
            ..Default::default()
        },
    )
    .expect("connected");
    time_it("mcf_fptas_germany50", SAMPLES, || {
        max_concurrent_flow(&g50, &d50, 0.1).expect("routes").lambda
    });
}
