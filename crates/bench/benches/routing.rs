//! Microbenchmarks of the routing substrate: Dijkstra / SP-DAG
//! construction, full ECMP demand evaluation, max-flow, and the hash-ECMP
//! simulator — the §7.1 runtime discussion.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench -p segrout-bench --bench routing`. Accepts the shared
//! `--log-level` / `--metrics-out` observability flags.

use segrout_bench::{banner, time_it};
use segrout_core::{NodeId, Router, WaypointSetting, WeightSetting};
use segrout_graph::{acyclic_max_flow, shortest_path_dag};
use segrout_sim::{HashEcmpSim, SimConfig, SimFlow};
use segrout_topo::by_name;
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn main() {
    banner("bench: routing substrate (SP-DAG, ECMP eval, max-flow, hash sim)");
    const SAMPLES: usize = 20;
    for name in ["Abilene", "Germany50", "Ta2"] {
        let net = by_name(name).expect("embedded");
        let weights = WeightSetting::inverse_capacity(&net);
        let demands = mcf_synthetic(
            &net,
            &TrafficConfig {
                seed: 1,
                flows_per_pair: Some(1),
                ..Default::default()
            },
        )
        .expect("connected");

        time_it(&format!("sp_dag/{name}"), SAMPLES, || {
            shortest_path_dag(net.graph(), weights.as_slice(), NodeId(0))
        });
        time_it(&format!("ecmp_eval/{name}"), SAMPLES, || {
            let router = Router::new(&net, &weights);
            router
                .evaluate(&demands, &WaypointSetting::none(demands.len()))
                .expect("routes")
                .mlu
        });
        let t = NodeId((net.node_count() - 1) as u32);
        time_it(&format!("max_flow/{name}"), SAMPLES, || {
            acyclic_max_flow(net.graph(), net.capacities(), NodeId(0), t).value
        });
        let sim = HashEcmpSim::new(&net, &weights);
        let flows: Vec<SimFlow> = demands
            .iter()
            .take(32)
            .map(|d| SimFlow {
                src: d.src,
                dst: d.dst,
                rate: d.size,
                streams: 8,
                waypoints: vec![],
            })
            .collect();
        time_it(&format!("hash_sim/{name}"), SAMPLES, || {
            sim.run(&flows, &SimConfig::default()).expect("routes").mlu
        });
    }
}
