//! Microbenchmarks of the routing substrate: Dijkstra / SP-DAG
//! construction, full ECMP demand evaluation, max-flow, and the hash-ECMP
//! simulator — the §7.1 runtime discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segrout_core::{NodeId, Router, WaypointSetting, WeightSetting};
use segrout_graph::{acyclic_max_flow, shortest_path_dag};
use segrout_sim::{HashEcmpSim, SimConfig, SimFlow};
use segrout_topo::by_name;
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for name in ["Abilene", "Germany50", "Ta2"] {
        let net = by_name(name).expect("embedded");
        let weights = WeightSetting::inverse_capacity(&net);
        let demands = mcf_synthetic(
            &net,
            &TrafficConfig {
                seed: 1,
                flows_per_pair: Some(1),
                ..Default::default()
            },
        )
        .expect("connected");

        group.bench_with_input(BenchmarkId::new("sp_dag", name), &net, |b, net| {
            b.iter(|| shortest_path_dag(net.graph(), weights.as_slice(), NodeId(0)))
        });
        group.bench_with_input(BenchmarkId::new("ecmp_eval", name), &net, |b, net| {
            b.iter(|| {
                let router = Router::new(net, &weights);
                router
                    .evaluate(&demands, &WaypointSetting::none(demands.len()))
                    .expect("routes")
                    .mlu
            })
        });
        group.bench_with_input(BenchmarkId::new("max_flow", name), &net, |b, net| {
            let t = NodeId((net.node_count() - 1) as u32);
            b.iter(|| acyclic_max_flow(net.graph(), net.capacities(), NodeId(0), t).value)
        });
        group.bench_with_input(BenchmarkId::new("hash_sim", name), &net, |b, net| {
            let sim = HashEcmpSim::new(net, &weights);
            let flows: Vec<SimFlow> = demands
                .iter()
                .take(32)
                .map(|d| SimFlow {
                    src: d.src,
                    dst: d.dst,
                    rate: d.size,
                    streams: 8,
                    waypoints: vec![],
                })
                .collect();
            b.iter(|| sim.run(&flows, &SimConfig::default()).expect("routes").mlu)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing
}
criterion_main!(benches);
