//! Benchmarks of the LP/MILP substrate: the OPT LP on real topologies and
//! representative MILPs (WPO selection, small Joint).

use criterion::{criterion_group, criterion_main, Criterion};
use segrout_core::WeightSetting;
use segrout_lp::{solve_milp, Cmp, MilpOptions, Problem, Sense};
use std::time::Duration;
use segrout_milp::{opt_mlu_lp, wpo_ilp, WpoIlpOptions};
use segrout_topo::abilene;
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 4,
            flows_per_pair: Some(1),
            ..Default::default()
        },
    )
    .expect("connected");

    group.sample_size(10);
    group.bench_function("opt_mlu_lp_abilene", |b| {
        b.iter(|| opt_mlu_lp(&net, &demands).expect("routes").objective)
    });

    let inv = WeightSetting::inverse_capacity(&net);
    // A tight solver budget keeps the benchmark measuring the formulation
    // build + warm-started search, not a fixed 60 s B&B timeout.
    let quick_milp = WpoIlpOptions {
        milp: MilpOptions {
            node_limit: 500,
            time_limit: Duration::from_secs(5),
            ..Default::default()
        },
        ..Default::default()
    };
    group.bench_function("wpo_ilp_abilene", |b| {
        b.iter(|| {
            wpo_ilp(&net, &demands, &inv, &quick_milp)
                .expect("routes")
                .mlu
        })
    });

    group.bench_function("knapsack_milp_30", |b| {
        b.iter(|| {
            let mut p = Problem::new(Sense::Maximize);
            let vars: Vec<_> = (0..30)
                .map(|i| p.add_bin_var(format!("v{i}"), ((i * 7) % 13 + 1) as f64))
                .collect();
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 5) % 11 + 1) as f64))
                .collect();
            p.add_constraint(terms, Cmp::Le, 40.0);
            solve_milp(&p, &MilpOptions::default()).objective
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solver
}
criterion_main!(benches);
