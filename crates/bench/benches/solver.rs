//! Benchmarks of the LP/MILP substrate: the OPT LP on real topologies and
//! representative MILPs (WPO selection, small Joint).
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench -p segrout-bench --bench solver`. Accepts the shared
//! `--log-level` / `--metrics-out` observability flags.

use segrout_bench::{banner, time_it};
use segrout_core::WeightSetting;
use segrout_lp::{solve_milp, Cmp, MilpOptions, Problem, Sense};
use segrout_milp::{opt_mlu_lp, wpo_ilp, WpoIlpOptions};
use segrout_topo::abilene;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::time::Duration;

fn main() {
    banner("bench: LP/MILP substrate (OPT LP, WPO ILP, knapsack MILP)");
    const SAMPLES: usize = 10;
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 4,
            flows_per_pair: Some(1),
            ..Default::default()
        },
    )
    .expect("connected");

    time_it("opt_mlu_lp_abilene", SAMPLES, || {
        opt_mlu_lp(&net, &demands).expect("routes").objective
    });

    let inv = WeightSetting::inverse_capacity(&net);
    // A tight solver budget keeps the benchmark measuring the formulation
    // build + warm-started search, not a fixed 60 s B&B timeout.
    let quick_milp = WpoIlpOptions {
        milp: MilpOptions {
            node_limit: 500,
            time_limit: Duration::from_secs(5),
            ..Default::default()
        },
        ..Default::default()
    };
    time_it("wpo_ilp_abilene", SAMPLES, || {
        wpo_ilp(&net, &demands, &inv, &quick_milp)
            .expect("routes")
            .mlu
    });

    time_it("knapsack_milp_30", SAMPLES, || {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..30)
            .map(|i| p.add_bin_var(format!("v{i}"), ((i * 7) % 13 + 1) as f64))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 5) % 11 + 1) as f64))
            .collect();
        p.add_constraint(terms, Cmp::Le, 40.0);
        solve_milp(&p, &MilpOptions::default()).objective
    });
}
