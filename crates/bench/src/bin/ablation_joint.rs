//! Ablations over JOINT-Heur's design choices — the §8 open questions
//! ("how well can a sequential approach approximate Joint? how many
//! iterations and how many waypoints suffice?"):
//!
//! 1. the second weight-optimization pass (Algorithm 2 lines 3–4, reported
//!    "negligible" in §7.1),
//! 2. the waypoint budget (one greedy pass vs a second stacked pass —
//!    effectively W = 2),
//! 3. the local-search effort (restarts / passes),
//! 4. the integer weight range `w_max`.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, fast_mode, stat, write_json};
use segrout_core::{DemandList, Network, Router, WaypointSetting};
use segrout_obs::json;
use segrout_topo::{abilene, by_name};
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn main() {
    banner("Ablations — JOINT-Heur design choices (§8 open questions)");
    let nets: Vec<(&str, Network)> = if fast_mode() {
        vec![("Abilene", abilene())]
    } else {
        vec![
            ("Abilene", abilene()),
            ("Geant", by_name("Geant").expect("embedded")),
            ("Cost266", by_name("Cost266").expect("embedded")),
        ]
    };
    let mut records = Vec::new();

    for (name, net) in &nets {
        let demands = mcf_synthetic(
            net,
            &TrafficConfig {
                seed: 9,
                ..Default::default()
            },
        )
        .expect("connected");
        println!(
            "\n== {name} ({} nodes, {} demands) ==",
            net.node_count(),
            demands.len()
        );

        // --- 1. Second weight pass on/off ---
        let base_cfg = HeurOspfConfig {
            seed: 5,
            restarts: 1,
            max_passes: 15,
            ..Default::default()
        };
        let without = joint_heur(
            net,
            &demands,
            &JointHeurConfig {
                ospf: base_cfg.clone(),
                second_weight_pass: false,
                ..Default::default()
            },
        )
        .expect("routes");
        let with = joint_heur(
            net,
            &demands,
            &JointHeurConfig {
                ospf: base_cfg.clone(),
                second_weight_pass: true,
                ..Default::default()
            },
        )
        .expect("routes");
        println!(
            "second weight pass: off = {:.4}, on = {:.4} (improvement {:.2}%)",
            without.mlu,
            with.mlu,
            100.0 * (without.mlu - with.mlu) / without.mlu
        );
        records.push(json!({
            "topology": name, "ablation": "second_weight_pass",
            "off": without.mlu, "on": with.mlu,
        }));

        // --- 2. Waypoint budget: W = 0 / 1 / 2 (stacked greedy) ---
        let w0 = without.mlu_weights_only;
        let w1 = without.mlu;
        let w2 = stacked_waypoints(net, &demands, &without.weights, &without.waypoints);
        println!("waypoint budget: W=0 -> {w0:.4}, W=1 -> {w1:.4}, W=2 -> {w2:.4}");
        records.push(json!({
            "topology": name, "ablation": "waypoint_budget",
            "w0": w0, "w1": w1, "w2": w2,
        }));

        // --- 3. Local-search effort ---
        print!("local-search effort (restarts/passes): ");
        let mut effort_row = Vec::new();
        for (restarts, passes) in [(0usize, 5usize), (1, 15), (3, 30)] {
            let cfg = HeurOspfConfig {
                seed: 5,
                restarts,
                max_passes: passes,
                ..Default::default()
            };
            let w = heur_ospf(net, &demands, &cfg);
            let mlu = Router::new(net, &w).mlu(&demands).expect("routes");
            print!("{restarts}r/{passes}p -> {mlu:.4}  ");
            effort_row.push(json!({"restarts": restarts, "passes": passes, "mlu": mlu}));
        }
        println!();
        records.push(json!({"topology": name, "ablation": "search_effort", "rows": effort_row}));

        // --- 4. Weight range w_max ---
        print!("weight range w_max: ");
        let mut range_row = Vec::new();
        for w_max in [4u32, 8, 20, 64] {
            let cfg = HeurOspfConfig {
                seed: 5,
                max_weight: w_max,
                restarts: 0,
                max_passes: 10,
                ..Default::default()
            };
            let w = heur_ospf(net, &demands, &cfg);
            let mlu = Router::new(net, &w).mlu(&demands).expect("routes");
            print!("{w_max} -> {mlu:.4}  ");
            range_row.push(json!({"w_max": w_max, "mlu": mlu}));
        }
        println!();
        records.push(json!({"topology": name, "ablation": "weight_range", "rows": range_row}));
    }

    // Summary over topologies for the headline questions.
    let improvements: Vec<f64> = records
        .iter()
        .filter(|r| r["ablation"] == "second_weight_pass")
        .map(|r| {
            let off = r["off"].as_f64().unwrap_or(1.0);
            let on = r["on"].as_f64().unwrap_or(1.0);
            100.0 * (off - on) / off
        })
        .collect();
    if !improvements.is_empty() {
        println!(
            "\nSecond-pass improvement across topologies: avg {:.2}% (paper: negligible)",
            stat(&improvements).expect("seeded runs").avg
        );
    }
    write_json("ablation_joint", &json!({ "records": records }));
}

/// Runs a second greedy waypoint pass on top of an existing one: each
/// demand's current first segment may gain one more waypoint, emulating a
/// W = 2 budget.
fn stacked_waypoints(
    net: &Network,
    demands: &DemandList,
    weights: &segrout_core::WeightSetting,
    first: &WaypointSetting,
) -> f64 {
    // Expand demands by the first waypoint pass, then run greedy again on
    // the expanded segments and measure the resulting MLU.
    let mut expanded = DemandList::new();
    for (i, d) in demands.iter().enumerate() {
        for (s, t, size) in first.segments_of(i, d) {
            expanded.push(s, t, size);
        }
    }
    let second = greedy_wpo(net, &expanded, weights, &GreedyWpoConfig::default()).expect("routes");
    Router::new(net, weights)
        .evaluate(&expanded, &second)
        .expect("routes")
        .mlu
}
