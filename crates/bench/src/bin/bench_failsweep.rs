//! Failure-sweep throughput benchmark (`BENCH_failsweep.json`): fleet-scale
//! what-if enumeration on Germany50.
//!
//! The sweep engine answers every `(failure pattern, demand scaling)`
//! scenario with the read-only edge-disable probe — one intact-topology
//! evaluator per scaling, masked repair of only the destinations whose
//! shortest-path DAG used a failed edge, fanned out over the `segrout-par`
//! pool. This benchmark enumerates all single **and** double link failures
//! of Germany50 (88 links → 3 916 patterns) across enough demand scalings
//! to exceed 100 000 scenario evaluations in one run, and records the
//! wall-time and throughput.
//!
//! Environment: `SEGROUT_FAST=1` shrinks to Abilene singles with one
//! scaling and writes `BENCH_failsweep_fast.json` instead.

use segrout_bench::{banner, fast_mode, write_record};
use segrout_core::{sweep_failures, FailureSet, WaypointSetting, WeightSetting};
use segrout_obs::json;
use segrout_topo::by_name;
use segrout_traffic::{gravity, TrafficConfig};

fn main() {
    banner("BENCH failsweep — single+double failure enumeration throughput");
    let fast = fast_mode();
    let (topo, doubles, scalings) = if fast {
        ("Abilene", false, vec![1.0])
    } else {
        // 26 scalings x 3 916 patterns = 101 816 scenarios.
        (
            "Germany50",
            true,
            (0..26).map(|i| 0.5 + 0.04 * f64::from(i)).collect(),
        )
    };
    let net = by_name(topo).expect("embedded");
    let demands = gravity(
        &net,
        &TrafficConfig {
            seed: 808,
            ..Default::default()
        },
    )
    .expect("connected");
    let weights = WeightSetting::inverse_capacity(&net);
    let waypoints = WaypointSetting::none(demands.len());
    let set = FailureSet::enumerate(&net, doubles);
    println!(
        "{topo}: {} nodes, {} directed edges, {} links -> {} patterns x {} scalings = {} scenarios\n",
        net.node_count(),
        net.edge_count(),
        set.link_count(),
        set.len(),
        scalings.len(),
        set.len() * scalings.len()
    );

    let t0 = std::time::Instant::now();
    let rep = sweep_failures(&net, &weights, &demands, &waypoints, &set, &scalings)
        .expect("intact workload routes");
    let secs = t0.elapsed().as_secs_f64();
    let throughput = rep.scenarios as f64 / secs;

    println!(
        "{} scenarios in {:.2} s  ->  {:.0} scenarios/s",
        rep.scenarios, secs, throughput
    );
    println!(
        "evaluated {}  disconnecting {}  ({:.2}% of scenarios cut a demand off)",
        rep.evaluated,
        rep.disconnects,
        100.0 * rep.disconnects as f64 / rep.scenarios as f64
    );
    let worst = rep.worst.as_ref().expect("some scenario routes");
    println!(
        "worst case: fail {} @ x{:.2} -> MLU {:.4}",
        set.pattern_label(&net, worst.pattern),
        worst.scale,
        worst.mlu
    );
    if !fast {
        assert!(
            rep.scenarios >= 100_000,
            "full run must cover at least 100k scenarios, got {}",
            rep.scenarios
        );
    }

    let path = if fast {
        "BENCH_failsweep_fast.json"
    } else {
        "BENCH_failsweep.json"
    };
    write_record(
        path,
        &json!({
            "topology": topo,
            "doubles": doubles,
            "links": set.link_count(),
            "patterns": set.len(),
            "scalings": scalings,
            "scenarios": rep.scenarios,
            "evaluated": rep.evaluated,
            "disconnects": rep.disconnects,
            "seconds": secs,
            "scenarios_per_second": throughput,
            "worst_mlu": worst.mlu,
            "worst_pattern": set.pattern_label(&net, worst.pattern),
            "worst_scale": worst.scale,
        }),
    );
}
