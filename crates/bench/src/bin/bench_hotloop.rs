//! Flat-memory hot-loop throughput and scaling on Germany50.
//!
//! PR 3's `bench_incremental` pinned the incremental evaluator's serial
//! probe throughput; this bench measures what the flat-memory refactor —
//! CSR SP-DAG arenas, the prefix-fold load arena and the bucket-queue
//! (Dial) Dijkstra — adds on top, and how the tuned `segrout-par` pool
//! scales it across threads. Four questions, answered on the *same*
//! topology, demand matrix, base weights and candidate stream as
//! `bench_incremental` (so the numbers are directly comparable):
//!
//! 1. serial probe candidate-evals/sec, bucket queue vs forced-heap A/B;
//! 2. speedup over the committed PR 3 baseline (`BENCH_incremental.json`,
//!    threads=1 `probe_candidates_per_sec`), with a live forced-heap rerun
//!    as fallback baseline when no committed record exists;
//! 3. scaling: probe sweep at 1/2/4/8 threads, speedup and efficiency per
//!    leg (honest about `host_cpus` — on a 1-core container every parallel
//!    leg measures scheduling overhead, not speedup);
//! 4. a serial HeurOSPF descent wall-time A/B between the two engines.
//!
//! Every sweep is verified bit-identical across engines and thread counts
//! before any number is reported. Results land in `BENCH_hotloop.json`
//! (+ `.run.json` provenance); `SEGROUT_FAST=1` shrinks the stream and
//! writes `BENCH_hotloop_fast.json` so CI smoke runs never clobber the
//! committed full record.

use segrout_algos::{heur_ospf, HeurOspfConfig};
use segrout_bench::{banner, fast_mode};
use segrout_core::rng::StdRng;
use segrout_core::{
    fortz_phi, DemandList, EdgeId, IncrementalEvaluator, Network, Router, WaypointSetting,
    WeightSetting,
};
use segrout_graph::set_heap_only;
use segrout_obs::{json, Json};
use segrout_topo::by_name;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::time::Instant;

/// The same candidate stream generator as `bench_incremental` (same seed,
/// same shape), so the two records describe the same workload.
fn candidate_stream(edges: usize, count: usize, seed: u64) -> Vec<(EdgeId, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                EdgeId(rng.gen_range(0..edges as u32)),
                f64::from(rng.gen_range(1..=20u32)),
            )
        })
        .collect()
}

/// One `(phi, mlu)` bit pair per candidate.
type SweepBits = Vec<(u64, u64)>;

fn probe_sweep(ev: &IncrementalEvaluator, stream: &[(EdgeId, f64)]) -> SweepBits {
    segrout_par::par_map_slice(stream, |_, &(e, w)| {
        let p = ev.probe(e, w).expect("routes");
        (p.phi.to_bits(), p.mlu.to_bits())
    })
}

/// Times `reps` repetitions of the probe sweep and returns the answers plus
/// the best observed candidates/sec. Best-of-N with a warmup pass is the
/// honest protocol on a shared 1-core host: the slower repetitions measure
/// neighbour load, not this code.
fn timed_probe_sweep(
    ev: &IncrementalEvaluator,
    stream: &[(EdgeId, f64)],
    reps: usize,
) -> (SweepBits, f64) {
    let answers = probe_sweep(ev, stream); // warmup (also the reference bits)
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let again = probe_sweep(ev, stream);
        let cps = stream.len() as f64 / t0.elapsed().as_secs_f64();
        assert_eq!(again, answers, "probe sweep is not deterministic");
        best = best.max(cps);
    }
    (answers, best)
}

/// Serial engine A/B with *interleaved* repetitions: heap and bucket sweeps
/// alternate within each round, so a drift in host speed between rounds hits
/// both engines equally instead of biasing whichever ran later. Returns
/// `(heap_answers, heap_cps, bucket_answers, bucket_cps)` (best-of-N each).
fn interleaved_engine_ab(
    ev: &IncrementalEvaluator,
    stream: &[(EdgeId, f64)],
    reps: usize,
) -> (SweepBits, f64, SweepBits, f64) {
    set_heap_only(true);
    let heap_answers = probe_sweep(ev, stream);
    set_heap_only(false);
    let bucket_answers = probe_sweep(ev, stream);
    let (mut heap_best, mut bucket_best) = (0.0f64, 0.0f64);
    for _ in 0..reps {
        set_heap_only(true);
        let t0 = Instant::now();
        let h = probe_sweep(ev, stream);
        heap_best = heap_best.max(stream.len() as f64 / t0.elapsed().as_secs_f64());
        set_heap_only(false);
        let t0 = Instant::now();
        let b = probe_sweep(ev, stream);
        bucket_best = bucket_best.max(stream.len() as f64 / t0.elapsed().as_secs_f64());
        assert_eq!(h, heap_answers, "heap sweep is not deterministic");
        assert_eq!(b, bucket_answers, "bucket sweep is not deterministic");
    }
    (heap_answers, heap_best, bucket_answers, bucket_best)
}

fn scratch_sweep(
    net: &Network,
    demands: &DemandList,
    base: &[f64],
    stream: &[(EdgeId, f64)],
) -> SweepBits {
    let wp = WaypointSetting::none(demands.len());
    segrout_par::par_map_slice(stream, |_, &(e, w)| {
        let mut weights = base.to_vec();
        weights[e.index()] = w;
        let ws = WeightSetting::new(net, weights).expect("weights in range");
        let report = Router::new(net, &ws)
            .evaluate(demands, &wp)
            .expect("routes");
        let phi = fortz_phi(&report.loads, net.capacities());
        (phi.to_bits(), report.mlu.to_bits())
    })
}

/// The committed PR 3 serial probe throughput, if a full-stream (non-fast)
/// `BENCH_incremental.json` sits in the working directory.
fn pr3_baseline() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_incremental.json").ok()?;
    let record = Json::parse(&text).ok()?;
    if record.get("fast_mode")?.as_str() == Some("true") {
        return None;
    }
    record
        .get("sweeps")?
        .as_arr()?
        .iter()
        .find(|row| row.get("threads").and_then(Json::as_i64) == Some(1))?
        .get("probe_candidates_per_sec")?
        .as_f64()
}

fn main() {
    banner(
        "BENCH_hotloop — CSR arenas + bucket-queue Dijkstra: throughput and scaling (Germany50)",
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!("host cores: {host_cpus}\n");

    let net = by_name("Germany50").expect("embedded");
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 2024,
            pair_fraction: 0.2,
            ..Default::default()
        },
    )
    .expect("feasible demands");
    let candidates = if fast_mode() { 64 } else { 512 };
    println!(
        "topology: Germany50 ({} nodes, {} links), {} demands, {} candidates",
        net.node_count(),
        net.edge_count(),
        demands.len(),
        candidates
    );

    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let base: Vec<f64> = (0..net.edge_count())
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect();
    let ws = WeightSetting::new(&net, base.clone()).expect("weights in range");
    let wp = WaypointSetting::none(demands.len());
    let ev = IncrementalEvaluator::new(&net, &ws, &demands, &wp).expect("routes");
    let stream = candidate_stream(net.edge_count(), candidates, 0x5eed5);

    let bucket_ops = segrout_obs::counter("dijkstra.bucket_ops");
    let arena_reuses = segrout_obs::counter("arena.reuses");
    let arena_rebuilds = segrout_obs::counter("arena.rebuilds");

    // --- serial engine A/B ----------------------------------------------
    let reps = if fast_mode() { 1 } else { 3 };
    segrout_par::set_threads(1);
    let b0 = bucket_ops.get();
    let (heap_answers, heap_cps, bucket_answers, bucket_cps) =
        interleaved_engine_ab(&ev, &stream, reps);
    let sweep_bucket_ops = (bucket_ops.get() - b0) / (reps as u64 + 1);

    set_heap_only(true);
    let t0 = Instant::now();
    let heap_scratch = scratch_sweep(&net, &demands, &base, &stream);
    let heap_scratch_cps = candidates as f64 / t0.elapsed().as_secs_f64();
    set_heap_only(false);
    let t0 = Instant::now();
    let bucket_scratch = scratch_sweep(&net, &demands, &base, &stream);
    let bucket_scratch_cps = candidates as f64 / t0.elapsed().as_secs_f64();

    assert_eq!(
        heap_answers, bucket_answers,
        "engine A/B diverged: bucket probes != heap probes"
    );
    assert_eq!(
        heap_scratch, bucket_scratch,
        "engine A/B diverged: bucket scratch != heap scratch"
    );
    assert_eq!(
        bucket_answers, bucket_scratch,
        "probe answers diverged from scratch answers"
    );
    println!("\nserial engine A/B (candidate evals/sec, bit-identical verified):");
    println!(
        "  probe   bucket {bucket_cps:>10.1}  heap {heap_cps:>10.1}  ({:.2}x)",
        bucket_cps / heap_cps
    );
    println!(
        "  scratch bucket {bucket_scratch_cps:>10.1}  heap {heap_scratch_cps:>10.1}  ({:.2}x)",
        bucket_scratch_cps / heap_scratch_cps
    );

    // --- speedup vs the PR 3 committed baseline -------------------------
    let (pr3_cps, pr3_source) = match pr3_baseline() {
        Some(cps) if !fast_mode() => (cps, "BENCH_incremental.json (committed PR 3 record)"),
        _ => (heap_cps, "live forced-heap rerun (no comparable record)"),
    };
    let speedup_vs_pr3 = bucket_cps / pr3_cps;
    println!(
        "\nserial probe speedup vs PR 3 incremental baseline: {speedup_vs_pr3:.2}x \
         ({bucket_cps:.1} vs {pr3_cps:.1} c/s; baseline = {pr3_source})"
    );

    // --- scaling legs ----------------------------------------------------
    let mut legs = Vec::new();
    let mut cps_at_1 = bucket_cps;
    println!(
        "\n{:<8} {:>14} {:>9} {:>11} {:>10}",
        "threads", "probe(c/s)", "speedup", "efficiency", "identical"
    );
    for threads in [1usize, 2, 4, 8] {
        segrout_par::set_threads(threads);
        let (answers, cps) = timed_probe_sweep(&ev, &stream, reps);
        let identical = answers == bucket_answers;
        assert!(identical, "{threads}-thread sweep diverged bitwise");
        if threads == 1 {
            cps_at_1 = cps;
        }
        let speedup = cps / cps_at_1;
        println!(
            "{:<8} {:>14.1} {:>8.2}x {:>11.2} {:>10}",
            threads,
            cps,
            speedup,
            speedup / threads as f64,
            identical
        );
        legs.push(json!({
            "threads": threads,
            "probe_candidates_per_sec": cps,
            "speedup_vs_1_thread": speedup,
            "efficiency": speedup / threads as f64,
            "identical": identical,
        }));
    }
    if host_cpus == 1 {
        println!(
            "  (host has 1 core: parallel legs measure scheduling overhead, not speedup; \
             the >1x acceptance criterion applies only when host_cpus > 1)"
        );
    }

    // --- serial HeurOSPF descent A/B ------------------------------------
    segrout_par::set_threads(1);
    let cfg = HeurOspfConfig {
        seed: 42,
        restarts: 0,
        max_passes: if fast_mode() { 2 } else { 6 },
        use_incremental: true,
        ..Default::default()
    };
    set_heap_only(true);
    let t0 = Instant::now();
    let w_heap = heur_ospf(&net, &demands, &cfg);
    let heap_descent_ms = t0.elapsed().as_secs_f64() * 1e3;
    set_heap_only(false);
    let t0 = Instant::now();
    let w_bucket = heur_ospf(&net, &demands, &cfg);
    let bucket_descent_ms = t0.elapsed().as_secs_f64() * 1e3;
    segrout_par::set_threads(0);
    assert_eq!(
        w_heap.as_slice(),
        w_bucket.as_slice(),
        "the two engines traced different descents"
    );
    println!(
        "\nHeurOSPF descent (serial, incremental scorer): bucket {bucket_descent_ms:.0} ms, \
         heap {heap_descent_ms:.0} ms ({:.2}x)",
        heap_descent_ms / bucket_descent_ms
    );
    println!(
        "hotloop counters: dijkstra.bucket_ops={} arena.reuses={} arena.rebuilds={}",
        bucket_ops.get(),
        arena_reuses.get(),
        arena_rebuilds.get()
    );

    let record = json!({
        "topology": "Germany50",
        "demands": demands.len(),
        "candidates": candidates,
        "host_cpus": host_cpus,
        "fast_mode": fast_mode(),
        "serial": json!({
            "probe_bucket_cps": bucket_cps,
            "probe_heap_cps": heap_cps,
            "scratch_bucket_cps": bucket_scratch_cps,
            "scratch_heap_cps": heap_scratch_cps,
            "engine_ab_identical": true,
        }),
        "pr3_baseline": json!({
            "probe_candidates_per_sec": pr3_cps,
            "source": pr3_source,
            "speedup_vs_pr3": speedup_vs_pr3,
        }),
        "scaling": legs,
        "heur_ospf_descent": json!({
            "bucket_ms": bucket_descent_ms,
            "heap_ms": heap_descent_ms,
            "wall_speedup": heap_descent_ms / bucket_descent_ms,
            "identical_weights": true,
        }),
        "counters": json!({
            "sweep_bucket_ops": sweep_bucket_ops,
            "dijkstra_bucket_ops": bucket_ops.get(),
            "arena_reuses": arena_reuses.get(),
            "arena_rebuilds": arena_rebuilds.get(),
        }),
    });
    // Fast (CI smoke) runs must not clobber the committed full record.
    let path = if fast_mode() {
        "BENCH_hotloop_fast.json"
    } else {
        "BENCH_hotloop.json"
    };
    segrout_bench::write_record(path, &record);
    segrout_bench::finish_obs();
}
