//! Incremental vs from-scratch candidate evaluation on Germany50.
//!
//! The local-search hot loop asks one question per candidate move: *what are
//! Φ and MLU if edge `e`'s weight becomes `w`?* This bench answers a fixed
//! random candidate stream two ways — a full from-scratch ECMP evaluation
//! per candidate ([`Router`]) and a read-only probe of the
//! [`IncrementalEvaluator`] — verifies the answers are bit-identical, and
//! reports candidate-evaluations/second for both, serial and at the
//! parallel thread count. It also times one complete HeurOSPF descent per
//! scorer and reports the `ecmp.recomputes` work counts (full
//! per-destination DAG constructions), which are host-independent.
//!
//! Results land in `BENCH_incremental.json`. `SEGROUT_FAST=1` shrinks the
//! candidate stream and pass budget for smoke runs. Wall-clock numbers are
//! whatever the host gives (CI containers are often single-core); the
//! recompute counts and the dirty-destination ratio are the portable
//! signal.

use segrout_algos::{heur_ospf, HeurOspfConfig};
use segrout_bench::{banner, fast_mode};
use segrout_core::rng::StdRng;
use segrout_core::{
    fortz_phi, DemandList, EdgeId, IncrementalEvaluator, Network, Router, WaypointSetting,
    WeightSetting,
};
use segrout_obs::json;
use segrout_topo::by_name;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::time::Instant;

/// A fixed stream of single-edge integer weight-change candidates, the
/// shape the HeurOSPF neighbourhood produces.
fn candidate_stream(edges: usize, count: usize, seed: u64) -> Vec<(EdgeId, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                EdgeId(rng.gen_range(0..edges as u32)),
                f64::from(rng.gen_range(1..=20u32)),
            )
        })
        .collect()
}

/// Evaluates every candidate from scratch; returns `(Φ, MLU)` bit pairs.
fn scratch_sweep(
    net: &Network,
    demands: &DemandList,
    base: &[f64],
    stream: &[(EdgeId, f64)],
) -> Vec<(u64, u64)> {
    let wp = WaypointSetting::none(demands.len());
    segrout_par::par_map_slice(stream, |_, &(e, w)| {
        let mut weights = base.to_vec();
        weights[e.index()] = w;
        let ws = WeightSetting::new(net, weights).expect("weights in range");
        let report = Router::new(net, &ws)
            .evaluate(demands, &wp)
            .expect("routes");
        let phi = fortz_phi(&report.loads, net.capacities());
        (phi.to_bits(), report.mlu.to_bits())
    })
}

/// Probes every candidate against the shared base state; returns the same
/// `(Φ, MLU)` bit pairs.
fn probe_sweep(ev: &IncrementalEvaluator, stream: &[(EdgeId, f64)]) -> Vec<(u64, u64)> {
    segrout_par::par_map_slice(stream, |_, &(e, w)| {
        let p = ev.probe(e, w).expect("routes");
        (p.phi.to_bits(), p.mlu.to_bits())
    })
}

fn main() {
    banner("BENCH_incremental — incremental vs from-scratch candidate evaluation (Germany50)");
    let parallel = segrout_par::threads().max(2);
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!("host cores: {host_cpus}; parallel leg runs with {parallel} threads\n");

    let net = by_name("Germany50").expect("embedded");
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 2024,
            pair_fraction: 0.2,
            ..Default::default()
        },
    )
    .expect("feasible demands");
    let candidates = if fast_mode() { 64 } else { 512 };
    println!(
        "topology: Germany50 ({} nodes, {} links), {} demands, {} candidates",
        net.node_count(),
        net.edge_count(),
        demands.len(),
        candidates
    );

    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let base: Vec<f64> = (0..net.edge_count())
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect();
    let ws = WeightSetting::new(&net, base.clone()).expect("weights in range");
    let wp = WaypointSetting::none(demands.len());
    let ev = IncrementalEvaluator::new(&net, &ws, &demands, &wp).expect("routes");
    let stream = candidate_stream(net.edge_count(), candidates, 0x5eed5);

    let probes_ctr = segrout_obs::counter("incr.probes");
    let dirty_ctr = segrout_obs::counter("incr.dirty_dests");
    let clean_ctr = segrout_obs::counter("incr.clean_dests");

    // --- candidate-evaluation throughput, serial and parallel legs -------
    let mut rows = Vec::new();
    println!(
        "\n{:<8} {:>14} {:>14} {:>9} {:>12} {:>10}",
        "threads", "scratch(c/s)", "probe(c/s)", "speedup", "dirty-ratio", "identical"
    );
    for threads in [1usize, parallel] {
        segrout_par::set_threads(threads);

        let t0 = Instant::now();
        let scratch = scratch_sweep(&net, &demands, &base, &stream);
        let scratch_s = t0.elapsed().as_secs_f64();

        let (d0, c0) = (dirty_ctr.get(), clean_ctr.get());
        let t0 = Instant::now();
        let probed = probe_sweep(&ev, &stream);
        let probe_s = t0.elapsed().as_secs_f64();
        let dirty = dirty_ctr.get() - d0;
        let clean = clean_ctr.get() - c0;

        let identical = scratch == probed;
        let scratch_cps = candidates as f64 / scratch_s;
        let probe_cps = candidates as f64 / probe_s;
        let dirty_ratio = dirty as f64 / (dirty + clean).max(1) as f64;
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>8.2}x {:>12.4} {:>10}",
            threads,
            scratch_cps,
            probe_cps,
            probe_cps / scratch_cps,
            dirty_ratio,
            identical
        );
        assert!(identical, "probe answers diverged from scratch answers");
        rows.push(json!({
            "threads": threads,
            "scratch_candidates_per_sec": scratch_cps,
            "probe_candidates_per_sec": probe_cps,
            "speedup": probe_cps / scratch_cps,
            "dirty_destination_ratio": dirty_ratio,
            "identical": identical,
        }));
    }
    segrout_par::set_threads(0);

    // --- one full HeurOSPF descent per scorer (serial, work counts) ------
    let cfg = HeurOspfConfig {
        seed: 42,
        restarts: 0,
        max_passes: if fast_mode() { 2 } else { 6 },
        ..Default::default()
    };
    let recomputes = segrout_obs::counter("ecmp.recomputes");
    segrout_par::set_threads(1);

    let before = recomputes.get();
    let t0 = Instant::now();
    let w_scratch = heur_ospf(
        &net,
        &demands,
        &HeurOspfConfig {
            use_incremental: false,
            ..cfg.clone()
        },
    );
    let scratch_ms = t0.elapsed().as_secs_f64() * 1e3;
    let scratch_recomputes = recomputes.get() - before;

    let before = recomputes.get();
    let t0 = Instant::now();
    let w_incr = heur_ospf(
        &net,
        &demands,
        &HeurOspfConfig {
            use_incremental: true,
            ..cfg
        },
    );
    let incr_ms = t0.elapsed().as_secs_f64() * 1e3;
    let incr_recomputes = recomputes.get() - before;
    segrout_par::set_threads(0);

    let same_descent = w_scratch.as_slice() == w_incr.as_slice();
    assert!(same_descent, "the two scorers traced different descents");
    println!(
        "\nHeurOSPF descent (serial): scratch {scratch_ms:.0} ms / {scratch_recomputes} recomputes, \
         incremental {incr_ms:.0} ms / {incr_recomputes} recomputes \
         ({:.1}x wall, {:.0}x recomputes)",
        scratch_ms / incr_ms,
        scratch_recomputes as f64 / incr_recomputes.max(1) as f64
    );

    let record = json!({
        "topology": "Germany50",
        "demands": demands.len(),
        "candidates": candidates,
        "host_cpus": host_cpus,
        "parallel_threads": parallel,
        "fast_mode": fast_mode(),
        "probes_total": probes_ctr.get(),
        "sweeps": rows,
        "heur_ospf_descent": json!({
            "scratch_ms": scratch_ms,
            "incremental_ms": incr_ms,
            "wall_speedup": scratch_ms / incr_ms,
            "scratch_recomputes": scratch_recomputes,
            "incremental_recomputes": incr_recomputes,
            "identical_weights": same_descent,
        }),
    });
    segrout_bench::write_record("BENCH_incremental.json", &record);
    segrout_bench::finish_obs();
}
