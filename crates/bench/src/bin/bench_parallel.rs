//! Serial vs parallel wall-time of the three optimizer hot paths on a
//! Figure-4-size topology (Germany50, MCF-synthetic demands).
//!
//! For each of HeurOSPF, GreedyWPO and JOINT-Heur the binary times the
//! run at `SEGROUT_THREADS=1` (the pure inline reference) and at the
//! parallel thread count (`--threads`/`SEGROUT_THREADS`, default 4),
//! verifies the outputs are bit-identical, and writes
//! `BENCH_parallel.json` next to the working directory with
//! `serial_ms` / `parallel_ms` / `speedup` per algorithm plus the host
//! core count — the honest record CI archives.
//!
//! `SEGROUT_FAST=1` shrinks the HeurOSPF pass budget for smoke runs.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, fast_mode};
use segrout_core::{Router, WeightSetting};
use segrout_obs::json;
use segrout_topo::by_name;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::time::Instant;

/// One timed algorithm: name, serial/parallel wall-times, speedup and
/// whether the two runs were bit-identical.
struct Timing {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

/// Times `f` once per thread count and checks bit-identity of the result.
fn time_pair<R: PartialEq>(name: &'static str, parallel: usize, f: impl Fn() -> R) -> Timing {
    segrout_par::set_threads(1);
    let t0 = Instant::now();
    let serial = f();
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    segrout_par::set_threads(parallel);
    let t0 = Instant::now();
    let par = f();
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    segrout_par::set_threads(0);

    Timing {
        name,
        serial_ms,
        parallel_ms,
        identical: serial == par,
    }
}

fn main() {
    banner("BENCH_parallel — serial vs parallel optimizer wall-time (Germany50)");
    // `banner` already applied `--threads`; whatever is in effect now is
    // the parallel leg of the comparison (floored at 2 so the comparison
    // is meaningful even on a 1-core host).
    let parallel = segrout_par::threads().max(2);
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!("host cores: {host_cpus}; parallel leg runs with {parallel} threads\n");

    let net = by_name("Germany50").expect("embedded");
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 2024,
            pair_fraction: 0.2,
            ..Default::default()
        },
    )
    .expect("feasible demands");
    println!(
        "topology: Germany50 ({} nodes, {} links), {} demands",
        net.node_count(),
        net.edge_count(),
        demands.len()
    );

    let ospf_cfg = HeurOspfConfig {
        seed: 42,
        restarts: 0,
        max_passes: if fast_mode() { 3 } else { 10 },
        ..Default::default()
    };

    let timings = vec![
        time_pair("HeurOSPF", parallel, || {
            let w = heur_ospf(&net, &demands, &ospf_cfg);
            let mlu = Router::new(&net, &w).mlu(&demands).expect("routes");
            (weight_bits(&w), mlu.to_bits())
        }),
        time_pair("GreedyWPO", parallel, || {
            let w = WeightSetting::inverse_capacity(&net);
            let wp = greedy_wpo(&net, &demands, &w, &GreedyWpoConfig::default()).expect("routes");
            let mlu = Router::new(&net, &w)
                .evaluate(&demands, &wp)
                .expect("routes")
                .mlu;
            (wp, mlu.to_bits())
        }),
        time_pair("JOINT-Heur", parallel, || {
            let r = joint_heur(
                &net,
                &demands,
                &JointHeurConfig {
                    ospf: ospf_cfg.clone(),
                    ..Default::default()
                },
            )
            .expect("routes");
            (weight_bits(&r.weights), r.waypoints, r.mlu.to_bits())
        }),
    ];

    println!(
        "\n{:<12} {:>12} {:>12} {:>9} {:>10}",
        "algorithm", "serial(ms)", "parallel(ms)", "speedup", "identical"
    );
    let mut rows = Vec::new();
    let mut all_identical = true;
    for t in &timings {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.2}x {:>10}",
            t.name,
            t.serial_ms,
            t.parallel_ms,
            t.speedup(),
            t.identical
        );
        all_identical &= t.identical;
        rows.push(json!({
            "algorithm": t.name,
            "serial_ms": t.serial_ms,
            "parallel_ms": t.parallel_ms,
            "speedup": t.speedup(),
            "identical": t.identical,
        }));
    }
    assert!(all_identical, "serial and parallel runs diverged");

    let record = json!({
        "topology": "Germany50",
        "demands": demands.len(),
        "host_cpus": host_cpus,
        "parallel_threads": parallel,
        "fast_mode": fast_mode(),
        "results": rows,
    });
    println!();
    segrout_bench::write_record("BENCH_parallel.json", &record);
    segrout_bench::finish_obs();
}

/// Bit pattern of a weight setting (exact comparison, no tolerance).
fn weight_bits(w: &WeightSetting) -> Vec<u64> {
    w.as_slice().iter().map(|x| x.to_bits()).collect()
}
