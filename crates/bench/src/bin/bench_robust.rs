//! Price-of-robustness benchmark (`BENCH_robust.json`): robust multi-matrix
//! optimization on Germany50 with a diurnal demand set.
//!
//! For every prefix of the K-matrix set we compare two strategies:
//!
//! * **robust** — one `joint_heur_robust` configuration optimized for the
//!   worst-case MLU over all matrices of the prefix;
//! * **best single** — `joint_heur` run on each matrix alone, every
//!   resulting configuration evaluated across the whole prefix, keeping the
//!   one with the lowest worst-case MLU (the "pick the best forecast"
//!   strategy an operator without robust tooling would use).
//!
//! The *price of robustness* is the ratio of the robust configuration's
//! worst-case MLU to the best single configuration's **nominal** MLU (its
//! MLU on the matrix it was optimized for): what worst-case protection
//! costs relative to a world where the forecast is always right.
//!
//! Environment: `SEGROUT_FAST=1` shrinks to Abilene with 2 matrices and
//! writes `BENCH_robust_fast.json` instead.

use segrout_algos::{joint_heur, joint_heur_robust, HeurOspfConfig, JointHeurConfig};
use segrout_bench::{banner, fast_mode, write_record};
use segrout_core::{evaluate_robust, DemandSet, RobustObjective, WaypointSetting, WeightSetting};
use segrout_obs::json;
use segrout_topo::by_name;
use segrout_traffic::{diurnal_set, TrafficConfig};

fn main() {
    banner("BENCH robust — price of robustness on a diurnal demand set");
    let fast = fast_mode();
    let (topo, matrices) = if fast {
        ("Abilene", 2)
    } else {
        ("Germany50", 4)
    };
    let net = by_name(topo).expect("embedded");
    let cfg = TrafficConfig {
        seed: 404,
        ..Default::default()
    };
    let set = diurnal_set(&net, &cfg, matrices, 0.6).expect("connected");
    println!(
        "{topo}: {} nodes, {} links; {} diurnal matrices x {} pairs\n",
        net.node_count(),
        net.edge_count(),
        set.len(),
        set.pair_count()
    );

    let jcfg = JointHeurConfig {
        ospf: HeurOspfConfig {
            seed: 9,
            restarts: if fast { 0 } else { 1 },
            ..Default::default()
        },
        ..Default::default()
    };

    // One single-matrix configuration per matrix (computed once, reused by
    // every prefix).
    let singles: Vec<(WeightSetting, WaypointSetting, f64)> = (0..set.len())
        .map(|j| {
            let r = joint_heur(&net, set.matrix(j), &jcfg).expect("routes");
            println!(
                "single-matrix config {:<4} nominal MLU {:.4}",
                set.name(j),
                r.mlu
            );
            (r.weights, r.waypoints, r.mlu)
        })
        .collect();
    println!();

    let worst_over = |weights: &WeightSetting, waypoints: &WaypointSetting, prefix: &DemandSet| {
        evaluate_robust(&net, weights, prefix, waypoints)
            .expect("routes")
            .worst_mlu()
    };

    println!(
        "{:<4} {:>14} {:>18} {:>14} {:>10}",
        "K", "robust worst", "best-single worst", "nominal best", "price"
    );
    let mut rows = Vec::new();
    for k in 1..=set.len() {
        let prefix: DemandSet = (0..k)
            .map(|j| (set.name(j).to_string(), set.matrix(j).clone()))
            .collect();

        // Robust strategy. K = 1 reduces bit-identically to the
        // single-matrix run, so reuse it; for K > 1 the search may profit
        // from the best single configuration as a warm start, so take the
        // better of the cold and warm-started runs.
        let (rw, rwp) =
            if k == 1 {
                (singles[0].0.clone(), singles[0].1.clone())
            } else {
                let cold = joint_heur_robust(&net, &prefix, RobustObjective::WorstCase, &jcfg)
                    .expect("routes");
                let best_seed =
                    (0..k)
                        .min_by(|&a, &b| {
                            worst_over(&singles[a].0, &singles[a].1, &prefix)
                                .total_cmp(&worst_over(&singles[b].0, &singles[b].1, &prefix))
                        })
                        .expect("non-empty");
                let warm = joint_heur_robust(
                    &net,
                    &prefix,
                    RobustObjective::WorstCase,
                    &JointHeurConfig {
                        stage1_weights: Some(singles[best_seed].0.clone()),
                        ..jcfg.clone()
                    },
                )
                .expect("routes");
                if cold.mlu <= warm.mlu {
                    (cold.weights, cold.waypoints)
                } else {
                    (warm.weights, warm.waypoints)
                }
            };
        let robust_worst = worst_over(&rw, &rwp, &prefix);

        // Best-single strategy over the same prefix.
        let single_worsts: Vec<f64> = (0..k)
            .map(|j| worst_over(&singles[j].0, &singles[j].1, &prefix))
            .collect();
        let best_single_worst = single_worsts.iter().cloned().fold(f64::INFINITY, f64::min);
        let nominal_best = singles[..k]
            .iter()
            .map(|&(_, _, m)| m)
            .fold(f64::INFINITY, f64::min);
        let price = robust_worst / nominal_best;
        println!(
            "{k:<4} {robust_worst:>14.4} {best_single_worst:>18.4} {nominal_best:>14.4} {price:>10.3}"
        );
        rows.push(json!({
            "k": k,
            "robust_worst_mlu": robust_worst,
            "best_single_worst_mlu": best_single_worst,
            "single_worst_mlus": single_worsts,
            "nominal_best_mlu": nominal_best,
            "price_of_robustness": price,
        }));
        assert!(
            robust_worst <= best_single_worst + 1e-9,
            "robust configuration must not lose to the best single-matrix \
             configuration: {robust_worst} vs {best_single_worst}"
        );
    }

    let path = if fast {
        "BENCH_robust_fast.json"
    } else {
        "BENCH_robust.json"
    };
    write_record(
        path,
        &json!({
            "topology": topo,
            "matrices": matrices,
            "generator": "diurnal(amplitude 0.6)",
            "traffic_seed": 404,
            "objective": "worst-case",
            "rows": rows,
        }),
    );
}
