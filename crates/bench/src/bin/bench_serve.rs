//! Online-serving benchmark (`BENCH_serve.json`): event-loop latency and
//! churn of the `segrout serve` engine on Germany50.
//!
//! Opens one [`ServeSession`] (a single live incremental evaluator — the
//! daemon never rebuilds its SP-DAGs) and replays a seeded synthetic trace
//! of ≥ 500 events: demand scalings, link flaps (down + later up),
//! capacity changes and keep-alives. Records per-event latency (p50/p99,
//! both from the raw sample and the `serve.latency_ms` histogram),
//! churn-per-event, and the tier mix (probe-only / local reopt /
//! escalation / error).
//!
//! Environment: `SEGROUT_FAST=1` shrinks to Abilene with 60 events and
//! writes `BENCH_serve_fast.json` instead.

use segrout_algos::{heur_ospf, HeurOspfConfig, ServeConfig, ServeEvent, ServeSession, ServeTier};
use segrout_bench::{banner, fast_mode, stat, write_record};
use segrout_core::rng::StdRng;
use segrout_core::{EdgeId, WaypointSetting};
use segrout_obs::json;
use segrout_topo::by_name;
use segrout_traffic::{gravity, TrafficConfig};

fn main() {
    banner("BENCH serve — online reoptimization event-loop latency and churn");
    let fast = fast_mode();
    let (topo, n_events) = if fast {
        ("Abilene", 60)
    } else {
        ("Germany50", 500)
    };
    let net = by_name(topo).expect("embedded");
    let demands = gravity(
        &net,
        &TrafficConfig {
            seed: 808,
            ..Default::default()
        },
    )
    .expect("connected");
    let n_demands = demands.len();

    // Initial configuration: a short weight search (the daemon's steady
    // state assumes a reasonable deployed setting, not a freshly tuned one).
    let ospf = HeurOspfConfig {
        seed: 0x5eed,
        restarts: 0,
        max_passes: 2,
        ..Default::default()
    };
    let weights = heur_ospf(&net, &demands, &ospf);

    // Bound the per-event search so reopt-tier latency reflects the online
    // budget, not an offline-quality descent.
    let mut cfg = ServeConfig::default();
    cfg.reopt.ospf = HeurOspfConfig {
        seed: 0x5eed,
        max_passes: 3,
        ..Default::default()
    };
    let slo_ms = cfg.slo_ms;
    let mut session = ServeSession::new(
        &net,
        &weights,
        demands,
        WaypointSetting::none(n_demands),
        cfg,
    )
    .expect("session opens");
    println!(
        "{topo}: {} nodes, {} links, {n_demands} demands; initial MLU {:.4}; {n_events} events\n",
        net.node_count(),
        net.edge_count(),
        session.evaluator().mlu()
    );

    // Seeded synthetic trace: mostly demand churn, plus link flaps (downed
    // links are brought back later), capacity degradations/restorations and
    // keep-alives. Disconnecting downs get an error reply and leave state
    // untouched — that is the serving contract, so they stay in the trace.
    let mut rng = StdRng::seed_from_u64(4242);
    let m = net.edge_count() as u32;
    let mut down: Vec<EdgeId> = Vec::new();
    let mut latencies = Vec::with_capacity(n_events);
    let mut churn_total = 0u64;
    let mut max_churn = 0usize;
    let t0 = std::time::Instant::now();
    for _ in 0..n_events {
        let roll = rng.gen_range(0u32..100);
        let event = if roll < 60 {
            ServeEvent::DemandScale {
                index: rng.gen_range(0..n_demands as u64) as usize,
                factor: 0.5 + 1.5 * rng.gen_f64(),
            }
        } else if roll < 75 {
            // Flap: prefer repairing when links are already down, so the
            // failure mask stays small and both directions get exercised.
            if !down.is_empty() && (down.len() >= 3 || rng.gen_range(0u32..2) == 0) {
                let e = down.swap_remove(rng.gen_range(0..down.len() as u64) as usize);
                ServeEvent::LinkUp { edge: e }
            } else {
                let e = EdgeId(rng.gen_range(0..m));
                if !down.contains(&e) {
                    down.push(e);
                }
                ServeEvent::LinkDown { edge: e }
            }
        } else if roll < 90 {
            let e = EdgeId(rng.gen_range(0..m));
            let nominal = net.capacity(e);
            ServeEvent::Capacity {
                edge: e,
                capacity: nominal * (0.5 + rng.gen_f64()),
            }
        } else {
            ServeEvent::Noop
        };
        let r = session.apply(&event);
        if r.tier == ServeTier::Error {
            // A disconnecting LinkDown was refused: the link is still up.
            if let ServeEvent::LinkDown { edge } = event {
                down.retain(|&e| e != edge);
            }
        }
        latencies.push(r.latency_ms);
        churn_total += r.churn as u64;
        max_churn = max_churn.max(r.churn);
    }
    let secs = t0.elapsed().as_secs_f64();

    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let q =
        |p: f64| sorted[((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
    let (p50, p99) = (q(0.50), q(0.99));
    let s = stat(&latencies).expect("non-empty");
    let st = *session.stats();
    assert_eq!(st.events, n_events as u64);
    assert_eq!(
        st.probe_only + st.local_reopts + st.escalations + st.errors,
        st.events,
        "tier tallies must partition the event count"
    );

    println!(
        "{n_events} events in {secs:.2} s  ->  {:.0} events/s",
        n_events as f64 / secs
    );
    println!(
        "latency: p50 {p50:.3} ms  p99 {p99:.3} ms  mean {:.3} ms  max {:.3} ms",
        s.avg, s.max
    );
    println!(
        "tiers: {} probe-only, {} local reopt(s), {} escalation(s), {} error(s)",
        st.probe_only, st.local_reopts, st.escalations, st.errors
    );
    println!(
        "churn: {churn_total} weight change(s) total ({:.3}/event, max {max_churn}); \
         SLO ({slo_ms} ms): {} violation(s)",
        churn_total as f64 / n_events as f64,
        st.slo_violations
    );
    println!("final MLU: {:.4}", session.evaluator().mlu());

    let path = if fast {
        "BENCH_serve_fast.json"
    } else {
        "BENCH_serve.json"
    };
    write_record(
        path,
        &json!({
            "topology": topo,
            "demands": n_demands,
            "events": n_events,
            "seconds": secs,
            "events_per_second": n_events as f64 / secs,
            "latency_p50_ms": p50,
            "latency_p99_ms": p99,
            "latency_mean_ms": s.avg,
            "latency_max_ms": s.max,
            "probe_only": st.probe_only,
            "local_reopts": st.local_reopts,
            "escalations": st.escalations,
            "errors": st.errors,
            "churn_total": churn_total,
            "churn_per_event": churn_total as f64 / n_events as f64,
            "max_churn": max_churn,
            "slo_ms": slo_ms,
            "slo_violations": st.slo_violations,
            "final_mlu": session.evaluator().mlu(),
        }),
    );
}
