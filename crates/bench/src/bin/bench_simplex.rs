//! Branch-and-bound node throughput: revised simplex vs reference tableau.
//!
//! Solves the paper's Joint/LWO MILP formulations on TE-Instance-1 shapes
//! (the `crates/milp/src/joint.rs` models) twice — once per LP engine — with
//! identical node/time limits, and reports explored nodes per second. Both
//! engines follow the same branching rule and agree on every relaxation (see
//! the differential suite), so the explored trees match and the throughput
//! ratio isolates the LP engine cost: the tableau materializes one extra row
//! per finite variable bound and pays dense O(rows × cols) per pivot, while
//! the revised engine keeps bounds implicit, works on the sparse `[A|I]`
//! columns through an eta file, and warm-starts every child from its
//! parent's basis.
//!
//! Results land in `BENCH_simplex.json`. `SEGROUT_FAST=1` shrinks the node
//! budgets for smoke runs. Node counts are host-independent; wall-clock (and
//! thus nodes/sec) is whatever the host gives, but the *ratio* between the
//! engines on the same host is the signal.

use segrout_bench::{banner, fast_mode};
use segrout_instances::instance1;
use segrout_lp::{LpEngine, MilpOptions};
use segrout_milp::{joint_milp, lwo_ilp, JointMilpOptions};
use segrout_obs::json;
use std::time::{Duration, Instant};

struct Leg {
    nodes: usize,
    secs: f64,
    nps: f64,
    mlu: f64,
    warm_started: u64,
    refactorizations: u64,
}

/// Runs one MILP formulation under one engine and returns the throughput.
fn run_leg(name: &str, engine: LpEngine, m: usize, lwo: bool, node_limit: usize) -> Leg {
    let inst = instance1(m);
    let opts = JointMilpOptions {
        max_weight: 4,
        milp: MilpOptions {
            engine,
            node_limit,
            time_limit: Duration::from_secs(if fast_mode() { 60 } else { 300 }),
            rel_gap: 0.0, // no early gap exit: explore the same tree fully
            ..Default::default()
        },
        ..Default::default()
    };
    let warm_ctr = segrout_obs::counter("milp.nodes_warm_started");
    let refac_ctr = segrout_obs::counter("simplex.refactorizations");
    let (w0, r0) = (warm_ctr.get(), refac_ctr.get());
    let t0 = Instant::now();
    let out = if lwo {
        lwo_ilp(&inst.network, &inst.demands, &opts)
    } else {
        joint_milp(&inst.network, &inst.demands, &opts)
    }
    .expect("instance-1 MILP is feasible");
    let secs = t0.elapsed().as_secs_f64();
    let leg = Leg {
        nodes: out.nodes,
        secs,
        nps: out.nodes as f64 / secs.max(1e-9),
        mlu: out.mlu,
        warm_started: warm_ctr.get() - w0,
        refactorizations: refac_ctr.get() - r0,
    };
    println!(
        "  {:<24} {:>8} nodes {:>9.2}s {:>10.1} nodes/s  mlu {:.3}  warm {:>6}  refac {:>6}",
        name, leg.nodes, leg.secs, leg.nps, leg.mlu, leg.warm_started, leg.refactorizations
    );
    leg
}

fn main() {
    banner("BENCH_simplex — B&B node throughput, revised simplex vs reference tableau");
    let fast = fast_mode();
    // (label, m, lwo?, node budget): Instance-1 Joint/LWO MILPs of growing
    // size. The Joint model on m = 4 is the Abilene-scale stress shape:
    // hundreds of bounded binaries, which is exactly where explicit
    // upper-bound rows hurt the tableau most.
    let cases: &[(&str, usize, bool, usize)] = if fast {
        &[("joint_m3", 3, false, 120), ("lwo_m4", 4, true, 120)]
    } else {
        &[
            ("joint_m3", 3, false, 1000),
            ("lwo_m6", 6, true, 1000),
            ("joint_m4", 4, false, 600),
            ("joint_m5", 5, false, 300),
        ]
    };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut joint_speedups = Vec::new();
    for &(name, m, lwo, node_limit) in cases {
        println!("\n{name} (instance-1 m={m}, node budget {node_limit}):");
        let tab = run_leg("tableau", LpEngine::Tableau, m, lwo, node_limit);
        let rev = run_leg("revised+warmstart", LpEngine::Revised, m, lwo, node_limit);
        let speedup = rev.nps / tab.nps.max(1e-9);
        let same_tree = rev.nodes == tab.nodes;
        println!("  node-throughput speedup: {speedup:.2}x (same tree: {same_tree})");
        assert!(
            (rev.mlu - tab.mlu).abs() < 1e-6,
            "{name}: engines disagree on the final MLU: revised {} vs tableau {}",
            rev.mlu,
            tab.mlu
        );
        speedups.push(speedup);
        if !lwo {
            joint_speedups.push(speedup);
        }
        rows.push(json!({
            "case": name,
            "m": m,
            "formulation": if lwo { "lwo" } else { "joint" },
            "node_limit": node_limit,
            "tableau": json!({
                "nodes": tab.nodes, "secs": tab.secs, "nodes_per_sec": tab.nps,
            }),
            "revised": json!({
                "nodes": rev.nodes, "secs": rev.secs, "nodes_per_sec": rev.nps,
                "nodes_warm_started": rev.warm_started,
                "refactorizations": rev.refactorizations,
            }),
            "speedup": speedup,
            "same_tree": same_tree,
            "mlu": rev.mlu,
        }));
    }

    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    // The acceptance metric: the smallest speedup over the Joint MILP cases
    // (the LWO rows converge in a few dozen nodes and mostly time noise).
    let min_joint = joint_speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nspeedup: min {min:.2}x, geometric mean {geomean:.2}x, min over Joint cases {min_joint:.2}x"
    );

    let record = json!({
        "fast_mode": fast,
        "cases": rows,
        "min_speedup": min,
        "geomean_speedup": geomean,
        "min_joint_speedup": min_joint,
    });
    segrout_bench::write_record("BENCH_simplex.json", &record);
    segrout_bench::finish_obs();
}
