//! Dynamic traffic / reconfiguration-cost extension (paper §8 future work):
//! when the matrix drifts, how much MLU does a *budgeted* re-optimization
//! recover, and how much does the waypoint knob (free of IGP churn) buy?
//!
//! Protocol: optimize weights for the first matrix of a drifting gravity
//! series; then for each subsequent step compare
//!
//! * **stale**         — keep the old configuration untouched,
//! * **wp-only**       — re-run GreedyWPO on the old weights (0 weight changes),
//! * **budget k**      — change at most k link weights (k = 1, 3),
//! * **joint budget**  — waypoints + k weight changes,
//! * **full re-opt**   — HeurOSPF from scratch (the quality oracle, with its
//!   full reconfiguration bill).

use segrout_algos::{
    heur_ospf, reoptimize_joint, reoptimize_unconstrained, reoptimize_weights, HeurOspfConfig,
    ReoptimizeConfig,
};
use segrout_bench::{banner, fast_mode, stat, write_json};
use segrout_core::Router;
use segrout_obs::json;
use segrout_topo::by_name;
use segrout_traffic::{drifting_series, TrafficConfig};

fn main() {
    banner("Extension — re-optimization under traffic drift with reconfiguration budgets");
    let net = by_name(if fast_mode() { "Abilene" } else { "Geant" }).expect("embedded");
    let steps = if fast_mode() { 3 } else { 6 };
    let series = drifting_series(
        &net,
        &TrafficConfig {
            seed: 77,
            ..Default::default()
        },
        steps,
        0.5,
    )
    .expect("connected");

    let ospf = HeurOspfConfig {
        seed: 3,
        restarts: 1,
        max_passes: 15,
        ..Default::default()
    };
    let deployed = heur_ospf(&net, &series[0], &ospf);
    println!(
        "topology: {} nodes; drift steps: {}\n",
        net.node_count(),
        steps - 1
    );
    println!(
        "{:>4} {:>8} {:>9} {:>11} {:>11} {:>13} {:>19}",
        "step", "stale", "wp-only", "budget 1", "budget 3", "joint b=3", "full (changes)"
    );

    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for (step, demands) in series.iter().enumerate().skip(1) {
        let stale = Router::new(&net, &deployed).mlu(demands).expect("routes");

        let mk = |budget: usize| ReoptimizeConfig {
            max_weight_changes: budget,
            ospf: ospf.clone(),
            ..Default::default()
        };
        let wp_only = reoptimize_joint(&net, demands, &deployed, &mk(0)).expect("routes");
        let b1 = reoptimize_weights(&net, demands, &deployed, &mk(1)).expect("routes");
        let b3 = reoptimize_weights(&net, demands, &deployed, &mk(3)).expect("routes");
        let jb3 = reoptimize_joint(&net, demands, &deployed, &mk(3)).expect("routes");
        let full =
            reoptimize_unconstrained(&net, demands, &deployed, &mk(usize::MAX)).expect("routes");

        println!(
            "{:>4} {:>8.3} {:>9.3} {:>11.3} {:>11.3} {:>13.3} {:>12.3} ({:>3})",
            step, stale, wp_only.mlu, b1.mlu, b3.mlu, jb3.mlu, full.mlu, full.weight_changes
        );
        cols[0].push(stale);
        cols[1].push(wp_only.mlu);
        cols[2].push(b3.mlu);
        cols[3].push(jb3.mlu);
        cols[4].push(full.mlu);
        rows.push(json!({
            "step": step,
            "stale": stale,
            "wp_only": wp_only.mlu,
            "budget1": b1.mlu,
            "budget3": b3.mlu,
            "joint_budget3": jb3.mlu,
            "full": full.mlu,
            "full_changes": full.weight_changes,
        }));
    }

    println!(
        "\naverages: stale {:.3} | wp-only {:.3} | budget-3 {:.3} | joint b=3 {:.3} | full {:.3}",
        stat(&cols[0]).expect("seeded runs").avg,
        stat(&cols[1]).expect("seeded runs").avg,
        stat(&cols[2]).expect("seeded runs").avg,
        stat(&cols[3]).expect("seeded runs").avg,
        stat(&cols[4]).expect("seeded runs").avg
    );
    println!("Waypoint re-assignment (zero IGP churn) recovers most of the drift penalty;");
    println!("a handful of weight changes closes the rest — the joint knobs are also the");
    println!("operationally cheap ones.");
    write_json("dynamic_reopt", &json!({ "rows": rows }));
}
