//! Extension experiment: robustness of TE configurations under single-link
//! failures.
//!
//! Related work on segment routing studies robustly disjoint paths (paper
//! ref. \[23\]); here we measure the operational question an ISP actually
//! asks: after the IGP reconverges around a failed link, how congested does
//! the network get under (a) the weights-only configuration and (b) the
//! joint weight + waypoint configuration? Segment routing follows the
//! post-failure shortest paths between waypoints, so waypoints survive
//! failures gracefully — but were chosen for the intact topology.
//!
//! Outcomes are reported **per configuration**: a failure that actually
//! partitions a demand from its destination disconnects *both*
//! configurations (nothing a weight or waypoint can do about a cut), while
//! a failure that only severs a chosen waypoint segment is a property of
//! the joint configuration — the weights-only MLU is still measured and
//! reported. An earlier revision collapsed the two (and even a
//! weights-only-failed / joint-survived pair) into a single "disconnected"
//! row, under-counting the joint configuration's exposure.

use segrout_algos::{joint_heur, HeurOspfConfig, JointHeurConfig};
use segrout_bench::{banner, fast_mode, stat, write_json};
use segrout_core::{EdgeId, IncrementalEvaluator, TeError, WaypointSetting};
use segrout_obs::{json, Json};
use segrout_sim::{HashEcmpSim, SimConfig, SimFlow};
use segrout_topo::by_name;
use segrout_traffic::{gravity, TrafficConfig};

/// Per-failure outcome of the two configurations.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Outcome {
    /// Both configurations route all demands.
    Both {
        /// MLU under the weights-only configuration.
        weights_only: f64,
        /// MLU under the joint configuration.
        joint: f64,
    },
    /// The failure cuts some demand off its destination: no configuration
    /// can route — a property of the topology, not of either configuration.
    Disconnected,
    /// Topology intact, but a waypoint segment of the joint configuration
    /// is severed; the weights-only configuration still routes.
    JointSevered {
        /// MLU under the weights-only configuration.
        weights_only: f64,
    },
}

/// Classifies one failure scenario from the true topology cut (`cut`,
/// determined by demand reachability on the masked graph, independent of
/// any configuration) and the two simulation results.
///
/// # Panics
/// Panics when the weights-only simulation fails on an uncut topology —
/// plain shortest-path routing is unroutable only under a cut, so that
/// combination indicates a routing-engine bug, not a scenario outcome.
fn classify(cut: bool, weights_only: Result<f64, TeError>, joint: Result<f64, TeError>) -> Outcome {
    if cut {
        return Outcome::Disconnected;
    }
    let weights_only =
        weights_only.expect("weights-only routing fails only when the topology is cut");
    match joint {
        Ok(joint) => Outcome::Both {
            weights_only,
            joint,
        },
        Err(_) => Outcome::JointSevered { weights_only },
    }
}

fn main() {
    banner("Extension — MLU after single-link failure (weights-only vs joint)");
    // Géant-scale with skewed gravity demands: the regime where waypoints
    // carry part of the configuration (Figure 6), so failures exercise both
    // knobs.
    let net = by_name("Geant").expect("embedded");
    let demands = gravity(
        &net,
        &TrafficConfig {
            seed: 302,
            ..Default::default()
        },
    )
    .expect("connected");

    let joint = joint_heur(
        &net,
        &demands,
        &JointHeurConfig {
            ospf: HeurOspfConfig {
                seed: 5,
                restarts: if fast_mode() { 0 } else { 1 },
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("routes");
    println!(
        "intact network: weights-only MLU = {:.3}, joint MLU = {:.3}\n",
        joint.mlu_weights_only, joint.mlu
    );

    // Streams: one flow per demand, 8 streams each (hash-level realism).
    let mk_flows = |with_waypoints: bool| -> Vec<SimFlow> {
        demands
            .iter()
            .enumerate()
            .map(|(i, d)| SimFlow {
                src: d.src,
                dst: d.dst,
                rate: d.size,
                streams: 8,
                waypoints: if with_waypoints {
                    joint.waypoints.get(i).to_vec()
                } else {
                    Vec::new()
                },
            })
            .collect()
    };
    let sim = HashEcmpSim::new(&net, &joint.weights);
    let cfg = SimConfig {
        seed: 11,
        noise: 0.0,
    };
    let no_wp = WaypointSetting::none(demands.len());

    let mut rows = Vec::new();
    let mut wo_mlus = Vec::new();
    let mut j_mlus = Vec::new();
    let mut disconnects = 0usize;
    let mut joint_severed = 0usize;
    println!(
        "{:<24} {:>14} {:>11}",
        "failed link", "weights-only", "joint"
    );
    for e in 0..net.edge_count() {
        let failed = [EdgeId(e as u32)];
        // The ground truth for "disconnected": does masking this link cut
        // any demand off its destination? (Waypoint-free evaluation fails
        // exactly when the masked graph loses src→dst reachability.)
        let cut = matches!(
            IncrementalEvaluator::new_with_failures(
                &net,
                &joint.weights,
                &demands,
                &no_wp,
                &failed
            ),
            Err(TeError::Unroutable { .. })
        );
        let wo = sim.run_with_failures(&mk_flows(false), &cfg, &failed);
        let jt = sim.run_with_failures(&mk_flows(true), &cfg, &failed);
        let (u, v) = net.graph().endpoints(EdgeId(e as u32));
        let label = format!("{} -> {}", net.node_name(u), net.node_name(v));
        match classify(cut, wo.map(|r| r.mlu), jt.map(|r| r.mlu)) {
            Outcome::Both {
                weights_only,
                joint,
            } => {
                println!("{label:<24} {weights_only:>14.3} {joint:>11.3}");
                wo_mlus.push(weights_only);
                j_mlus.push(joint);
                rows.push(json!({
                    "edge": e, "outcome": "ok",
                    "weights_only": weights_only, "joint": joint,
                }));
            }
            Outcome::Disconnected => {
                disconnects += 1;
                println!("{label:<24} {:>14} {:>11}", "disconnected", "disconnected");
                rows.push(json!({ "edge": e, "outcome": "disconnected" }));
            }
            Outcome::JointSevered { weights_only } => {
                joint_severed += 1;
                println!("{label:<24} {weights_only:>14.3} {:>11}", "severed");
                wo_mlus.push(weights_only);
                rows.push(json!({
                    "edge": e, "outcome": "joint_segment_severed",
                    "weights_only": weights_only,
                }));
            }
        }
    }
    let fmt = |s: Option<segrout_bench::Stat>| match s {
        Some(s) => format!("avg {:.3} / max {:.3}", s.avg, s.max),
        None => "no surviving scenario".to_string(),
    };
    let wo = stat(&wo_mlus);
    let jt = stat(&j_mlus);
    println!(
        "\nweights-only over {} survivable failures: {}",
        wo_mlus.len(),
        fmt(wo)
    );
    println!(
        "joint over {} survivable failures: {} ({} waypoint segments severed, {} true disconnects)",
        j_mlus.len(),
        fmt(jt),
        joint_severed,
        disconnects
    );
    let stat_json = |s: Option<segrout_bench::Stat>| s.map_or(Json::Null, Json::from);
    write_json(
        "failure_robustness",
        &json!({
            "rows": rows,
            "weights_only": stat_json(wo),
            "joint": stat_json(jt),
            "disconnects": disconnects,
            "joint_segment_severed": joint_severed,
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::NodeId;

    fn unroutable() -> TeError {
        TeError::Unroutable {
            src: NodeId(0),
            dst: NodeId(1),
        }
    }

    /// The regression the rewrite fixes: a surviving weights-only run paired
    /// with a severed joint run used to collapse into "disconnected",
    /// discarding the measured weights-only MLU and miscounting the cut.
    #[test]
    fn severed_joint_segment_is_not_a_disconnect() {
        assert_eq!(
            classify(false, Ok(0.7), Err(unroutable())),
            Outcome::JointSevered { weights_only: 0.7 }
        );
    }

    #[test]
    fn true_cut_disconnects_both() {
        assert_eq!(
            classify(true, Err(unroutable()), Err(unroutable())),
            Outcome::Disconnected
        );
    }

    #[test]
    fn surviving_pair_reports_both() {
        assert_eq!(
            classify(false, Ok(0.7), Ok(0.5)),
            Outcome::Both {
                weights_only: 0.7,
                joint: 0.5
            }
        );
    }

    #[test]
    #[should_panic(expected = "only when the topology is cut")]
    fn weights_only_failure_without_cut_is_a_bug() {
        classify(false, Err(unroutable()), Ok(0.5));
    }
}
