//! Extension experiment: robustness of TE configurations under single-link
//! failures.
//!
//! Related work on segment routing studies robustly disjoint paths (paper
//! ref. \[23\]); here we measure the operational question an ISP actually
//! asks: after the IGP reconverges around a failed link, how congested does
//! the network get under (a) the weights-only configuration and (b) the
//! joint weight + waypoint configuration? Segment routing follows the
//! post-failure shortest paths between waypoints, so waypoints survive
//! failures gracefully — but were chosen for the intact topology.

use segrout_algos::{joint_heur, HeurOspfConfig, JointHeurConfig};
use segrout_bench::{banner, fast_mode, stat, write_json};
use segrout_core::EdgeId;
use segrout_obs::json;
use segrout_sim::{HashEcmpSim, SimConfig, SimFlow};
use segrout_topo::by_name;
use segrout_traffic::{gravity, TrafficConfig};

fn main() {
    banner("Extension — MLU after single-link failure (weights-only vs joint)");
    // Géant-scale with skewed gravity demands: the regime where waypoints
    // carry part of the configuration (Figure 6), so failures exercise both
    // knobs.
    let net = by_name("Geant").expect("embedded");
    let demands = gravity(
        &net,
        &TrafficConfig {
            seed: 302,
            ..Default::default()
        },
    )
    .expect("connected");

    let joint = joint_heur(
        &net,
        &demands,
        &JointHeurConfig {
            ospf: HeurOspfConfig {
                seed: 5,
                restarts: if fast_mode() { 0 } else { 1 },
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("routes");
    println!(
        "intact network: weights-only MLU = {:.3}, joint MLU = {:.3}\n",
        joint.mlu_weights_only, joint.mlu
    );

    // Streams: one flow per demand, 8 streams each (hash-level realism).
    let mk_flows = |with_waypoints: bool| -> Vec<SimFlow> {
        demands
            .iter()
            .enumerate()
            .map(|(i, d)| SimFlow {
                src: d.src,
                dst: d.dst,
                rate: d.size,
                streams: 8,
                waypoints: if with_waypoints {
                    joint.waypoints.get(i).to_vec()
                } else {
                    Vec::new()
                },
            })
            .collect()
    };
    let sim = HashEcmpSim::new(&net, &joint.weights);
    let cfg = SimConfig {
        seed: 11,
        noise: 0.0,
    };

    let mut rows = Vec::new();
    let mut wo_mlus = Vec::new();
    let mut j_mlus = Vec::new();
    let mut disconnects = 0usize;
    println!(
        "{:<24} {:>14} {:>11}",
        "failed link", "weights-only", "joint"
    );
    for e in 0..net.edge_count() {
        let failed = [EdgeId(e as u32)];
        let wo = sim.run_with_failures(&mk_flows(false), &cfg, &failed);
        let jt = sim.run_with_failures(&mk_flows(true), &cfg, &failed);
        let (u, v) = net.graph().endpoints(EdgeId(e as u32));
        match (wo, jt) {
            (Ok(a), Ok(b)) => {
                println!(
                    "{:<24} {:>14.3} {:>11.3}",
                    format!("{} -> {}", net.node_name(u), net.node_name(v)),
                    a.mlu,
                    b.mlu
                );
                wo_mlus.push(a.mlu);
                j_mlus.push(b.mlu);
                rows.push(json!({
                    "edge": e, "weights_only": a.mlu, "joint": b.mlu,
                }));
            }
            _ => {
                disconnects += 1;
                println!(
                    "{:<24} {:>14} {:>11}",
                    format!("{} -> {}", net.node_name(u), net.node_name(v)),
                    "disconnected",
                    "-"
                );
            }
        }
    }
    let wo = stat(&wo_mlus);
    let jt = stat(&j_mlus);
    println!(
        "\nacross {} survivable failures: weights-only avg {:.3} / max {:.3}, joint avg {:.3} / max {:.3} ({} disconnecting failures)",
        wo_mlus.len(),
        wo.avg,
        wo.max,
        jt.avg,
        jt.max,
        disconnects
    );
    write_json(
        "failure_robustness",
        &json!({ "rows": rows, "weights_only": wo, "joint": jt, "disconnects": disconnects }),
    );
}
