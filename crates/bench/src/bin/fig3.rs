//! Figure 3: the effective-capacity worked examples.
//!
//! Prints every `ec` value of the figure, the maximum-flow sizes, and what
//! LWO-APX recovers on example 3b (where naive everywhere-splitting loses a
//! factor 2.25).

use segrout_algos::lwo_apx;
use segrout_bench::{banner, write_json};
use segrout_core::esflow::effective_capacities;
use segrout_graph::acyclic_max_flow;
use segrout_instances::{figure3a, figure3b};
use segrout_obs::json;

fn main() {
    banner("Figure 3 — effective capacities (Definition 5.1)");

    let mut out = Vec::new();
    for (label, (net, s, t)) in [("3a", figure3a()), ("3b", figure3b())] {
        let flow = acyclic_max_flow(net.graph(), net.capacities(), s, t);
        let mask = vec![true; net.edge_count()];
        let (ec_node, ec_edge) =
            effective_capacities(net.graph(), net.capacities(), &mask, t).expect("acyclic");
        println!("\nExample {label}:  |f*| = {:.4}", flow.value);
        for v in net.graph().nodes() {
            let ec = ec_node[v.index()];
            if v == t {
                println!("  ec({}) = ∞ (target)", net.node_name(v));
            } else {
                println!("  ec({}) = {:.4}", net.node_name(v), ec);
            }
        }
        for (e, u, v) in net.graph().edges() {
            println!(
                "  ec(({}, {})) = {:.4}   [c = {:.4}]",
                net.node_name(u),
                net.node_name(v),
                ec_edge[e.index()],
                net.capacity(e)
            );
        }
        let ratio = flow.value / ec_node[s.index()];
        println!(
            "  => ec(s) = {:.4}, |f*| / ec(s) = {:.4}",
            ec_node[s.index()],
            ratio
        );
        let apx = lwo_apx(&net, s, t).expect("routes");
        println!(
            "  => LWO-APX pruned ES-flow = {:.4} (achieved ratio {:.4})",
            apx.es_flow_value,
            apx.achieved_ratio()
        );
        out.push(json!({
            "example": label,
            "max_flow": flow.value,
            "ec_source_all_split": ec_node[s.index()],
            "lwo_apx_es_flow": apx.es_flow_value,
            "lwo_apx_ratio": apx.achieved_ratio(),
        }));
    }
    println!("\nPaper: 3a has ec(s) = |f*| = 3/2; 3b has ec(s) = 2/3 = |f*|/2.25.");
    write_json("fig3", &json!({ "examples": out }));
}
