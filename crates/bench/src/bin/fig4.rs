//! Figure 4: MLU of the four algorithms on the ten largest capacitated
//! non-tree topologies, under MCF-synthetic demands.
//!
//! Columns (as in the paper's plot):
//! * **InverseCapacity** — ECMP under the Cisco-style `1/c` weights,
//! * **HeurOSPF**        — Fortz–Thorup local search,
//! * **GreedyWaypoints** — GreedyWPO on top of the InverseCapacity weights
//!   (waypoints-only optimization over a standard setting),
//! * **JointHeur**       — Algorithm 2 (HeurOSPF weights + GreedyWPO).
//!
//! All demand sets are normalized so the fluid optimum (MCF) has MLU 1, so
//! every number reads as "× above optimal". Paper averages: 2.74 / 1.65 /
//! (n.r.) / 1.58.
//!
//! Two traffic regimes are reported: the paper's 20% pair fraction, and a
//! concentrated 5% regime. On our size-matched stand-in topologies the 20%
//! matrices are diffuse enough that near-optimal weights exist (see
//! DESIGN.md on the topology substitution); the concentrated regime
//! restores the hardness of the real instances and with it the separation
//! between the columns.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, fast_mode, seeds, stat, write_json};
use segrout_core::{Network, Router, WeightSetting};
use segrout_obs::json;
use segrout_topo::fig4_topologies;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::time::Instant;

fn main() {
    banner("Figure 4 — heuristics on the 10 largest topologies (MCF synthetic demands)");
    let n_seeds = if fast_mode() { 1 } else { seeds() };
    println!("demand sets per topology: {n_seeds} (paper: 10; SEGROUT_SEEDS to change)");

    let mut blocks = Vec::new();
    for (regime, pair_fraction) in [
        ("20% pairs (paper setting)", 0.2),
        ("5% pairs (concentrated)", 0.05),
    ] {
        println!("\n--- regime: {regime} ---");
        println!(
            "{:<14} {:>5} {:>5} | {:>17} {:>17} {:>17} {:>17} | {:>7}",
            "topology",
            "n",
            "|E|",
            "InverseCapacity",
            "HeurOSPF",
            "GreedyWaypoints",
            "JointHeur",
            "time(s)"
        );

        let mut per_topo = Vec::new();
        let mut all = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let topologies = fig4_topologies();
        let topologies: Vec<_> = if fast_mode() {
            topologies.into_iter().take(2).collect()
        } else {
            topologies
        };

        for (name, net) in &topologies {
            let started = Instant::now();
            let mut cols = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            // Fan the demand-set seeds out over the pool; results come back
            // in seed order, so stats and JSON records are independent of
            // the thread count.
            let per_seed = segrout_par::par_map(n_seeds as usize, |s| {
                let seed = s as u64;
                let cfg = TrafficConfig {
                    seed: 1000 + seed,
                    pair_fraction,
                    ..Default::default()
                };
                mcf_synthetic(net, &cfg).map(|demands| run_algorithms(net, &demands, seed))
            });
            for (seed, outcome) in per_seed.into_iter().enumerate() {
                match outcome {
                    Ok((inv, heur, greedy, joint)) => {
                        cols[0].push(inv);
                        cols[1].push(heur);
                        cols[2].push(greedy);
                        cols[3].push(joint);
                    }
                    Err(e) => eprintln!("skipping {name} seed {seed}: {e}"),
                }
            }
            let stats: Vec<_> = cols.iter().map(|c| stat(c).expect("seeded runs")).collect();
            println!(
                "{:<14} {:>5} {:>5} | {:>4.2}/{:>5.2}/{:>5.2} {:>5.2}/{:>5.2}/{:>5.2} {:>5.2}/{:>5.2}/{:>5.2} {:>5.2}/{:>5.2}/{:>5.2} | {:>7.1}",
                name,
                net.node_count(),
                net.edge_count(),
                stats[0].min, stats[0].avg, stats[0].max,
                stats[1].min, stats[1].avg, stats[1].max,
                stats[2].min, stats[2].avg, stats[2].max,
                stats[3].min, stats[3].avg, stats[3].max,
                started.elapsed().as_secs_f64(),
            );
            for (i, c) in cols.iter().enumerate() {
                all[i].extend_from_slice(c);
            }
            per_topo.push(json!({
                "topology": name,
                "nodes": net.node_count(),
                "links": net.edge_count(),
                "inverse_capacity": stats[0],
                "heur_ospf": stats[1],
                "greedy_waypoints": stats[2],
                "joint_heur": stats[3],
            }));
        }

        println!("\noverall averages ({regime}):");
        let labels = [
            "InverseCapacity",
            "HeurOSPF",
            "GreedyWaypoints",
            "JointHeur",
        ];
        let mut avgs = Vec::new();
        for (label, xs) in labels.iter().zip(&all) {
            let s = stat(xs).expect("seeded runs");
            println!("  {label:<16} avg MLU = {:.3}", s.avg);
            avgs.push(json!({"algorithm": label, "avg": s.avg}));
        }
        blocks.push(json!({
            "regime": regime,
            "pair_fraction": pair_fraction,
            "per_topology": per_topo,
            "overall": avgs,
        }));
    }
    println!("\nPaper overall averages (real topologies/data): InverseCapacity 2.74, HeurOSPF 1.65, JointHeur 1.58.");
    write_json("fig4", &json!({ "blocks": blocks, "seeds": n_seeds }));
}

/// Runs the four Figure-4 algorithms on one instance; returns their MLUs.
fn run_algorithms(
    net: &Network,
    demands: &segrout_core::DemandList,
    seed: u64,
) -> (f64, f64, f64, f64) {
    // InverseCapacity.
    let inv_w = WeightSetting::inverse_capacity(net);
    let inv = Router::new(net, &inv_w).mlu(demands).expect("routes");

    // HeurOSPF.
    let ospf_cfg = HeurOspfConfig {
        seed: 77 + seed,
        restarts: if fast_mode() { 0 } else { 1 },
        max_passes: if fast_mode() { 5 } else { 20 },
        ..Default::default()
    };
    let heur_w = heur_ospf(net, demands, &ospf_cfg);
    let heur = Router::new(net, &heur_w).mlu(demands).expect("routes");

    // GreedyWaypoints on the standard (inverse capacity) weights.
    let wp = greedy_wpo(net, demands, &inv_w, &GreedyWpoConfig::default()).expect("routes");
    let greedy = Router::new(net, &inv_w)
        .evaluate(demands, &wp)
        .expect("routes")
        .mlu;

    // JointHeur, reusing the stage-1 weights computed above.
    let joint_cfg = JointHeurConfig {
        ospf: ospf_cfg,
        stage1_weights: Some(heur_w.clone()),
        ..Default::default()
    };
    let joint = joint_heur(net, demands, &joint_cfg).expect("routes").mlu;

    (inv, heur, greedy, joint)
}
