//! Figure 5: MILP results vs heuristics on Abilene.
//!
//! Eight columns as in the paper: UnitWeights, InverseCapacity, HeurOSPF,
//! ILP Weights, GreedyWaypoints, ILP Waypoints, JointHeur, ILP Joint.
//! Paper averages for the ILPs: WPO 1.17, LWO 1.04, Joint 1.03.
//!
//! Notes on the solver substitution (DESIGN.md §3): the LWO/Joint MILPs run
//! on our branch-and-bound with a time limit and a heuristic warm start, so
//! their columns are incumbents (upper bounds) exactly like a time-limited
//! Gurobi run; the WPO MILP (fixed weights) is solved to proven optimality.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, fast_mode, seeds, stat, write_json};
use segrout_core::{Router, WaypointSetting, WeightSetting};
use segrout_lp::MilpOptions;
use segrout_milp::{joint_milp, lwo_ilp, wpo_ilp, JointMilpOptions, WpoIlpOptions};
use segrout_obs::json;
use segrout_topo::abilene;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::time::Duration;

fn main() {
    banner("Figure 5 — MILP vs heuristics on Abilene (MCF synthetic demands)");
    let net = abilene();
    let n_seeds = if fast_mode() { 1 } else { seeds() };
    let milp_secs: u64 = std::env::var("SEGROUT_MILP_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if fast_mode() { 5 } else { 60 });
    println!("demand sets: {n_seeds}; MILP time limit: {milp_secs}s (SEGROUT_MILP_SECS)\n");

    const LABELS: [&str; 8] = [
        "UnitWeights",
        "InverseCapacity",
        "HeurOSPF",
        "ILP Weights",
        "GreedyWaypoints",
        "ILP Waypoints",
        "JointHeur",
        "ILP Joint",
    ];
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 8];

    for seed in 0..n_seeds {
        // Fewer sub-flows than |E|/4 keep the MILP demand dimension small,
        // mirroring the paper's need to shrink inputs for the exact solver.
        let cfg = TrafficConfig {
            seed: 500 + seed,
            flows_per_pair: Some(1),
            ..Default::default()
        };
        let demands = mcf_synthetic(&net, &cfg).expect("abilene is connected");

        let unit_w = WeightSetting::unit(&net);
        let inv_w = WeightSetting::inverse_capacity(&net);
        columns[0].push(Router::new(&net, &unit_w).mlu(&demands).expect("routes"));
        columns[1].push(Router::new(&net, &inv_w).mlu(&demands).expect("routes"));

        let ospf_cfg = HeurOspfConfig {
            seed: 11 + seed,
            ..Default::default()
        };
        let heur_w = heur_ospf(&net, &demands, &ospf_cfg);
        let heur_mlu = Router::new(&net, &heur_w).mlu(&demands).expect("routes");
        columns[2].push(heur_mlu);

        // ILP Weights (LWO MILP, warm-started with HeurOSPF, time-limited).
        let milp_opts = MilpOptions {
            node_limit: 200_000,
            time_limit: Duration::from_secs(milp_secs),
            ..Default::default()
        };
        let lwo = lwo_ilp(
            &net,
            &demands,
            &JointMilpOptions {
                max_weight: 8,
                milp: milp_opts.clone(),
                warm_start: Some((heur_w.clone(), WaypointSetting::none(demands.len()))),
                ..Default::default()
            },
        )
        .expect("routes");
        columns[3].push(lwo.mlu.min(heur_mlu));

        // GreedyWaypoints on inverse-capacity weights.
        let wp = greedy_wpo(&net, &demands, &inv_w, &GreedyWpoConfig::default()).expect("routes");
        let greedy_mlu = Router::new(&net, &inv_w)
            .evaluate(&demands, &wp)
            .expect("routes")
            .mlu;
        columns[4].push(greedy_mlu);

        // ILP Waypoints: exact WPO under the same fixed weights.
        let wpo = wpo_ilp(
            &net,
            &demands,
            &inv_w,
            &WpoIlpOptions {
                milp: milp_opts.clone(),
                ..Default::default()
            },
        )
        .expect("routes");
        columns[5].push(wpo.mlu);

        // JointHeur.
        let joint = joint_heur(
            &net,
            &demands,
            &JointHeurConfig {
                ospf: ospf_cfg,
                ..Default::default()
            },
        )
        .expect("routes");
        columns[6].push(joint.mlu);

        // ILP Joint (warm-started with JointHeur, time-limited).
        let jm = joint_milp(
            &net,
            &demands,
            &JointMilpOptions {
                max_weight: 8,
                milp: milp_opts,
                warm_start: Some((joint.weights.clone(), joint.waypoints.clone())),
                ..Default::default()
            },
        )
        .expect("routes");
        columns[7].push(jm.mlu.min(joint.mlu));

        println!(
            "seed {seed}: {}",
            LABELS
                .iter()
                .zip(&columns)
                .map(|(l, c)| format!("{l}={:.3}", c.last().unwrap()))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }

    println!(
        "\n{:<16} {:>8} {:>8} {:>8}",
        "algorithm", "min", "avg", "max"
    );
    let mut rows = Vec::new();
    for (label, col) in LABELS.iter().zip(&columns) {
        let s = stat(col).expect("seeded runs");
        println!("{label:<16} {:>8.3} {:>8.3} {:>8.3}", s.min, s.avg, s.max);
        rows.push(json!({"algorithm": label, "stat": s}));
    }
    println!("\nPaper averages: WPO-ILP 1.17, LWO-ILP 1.04, Joint-ILP 1.03.");
    write_json("fig5", &json!({ "rows": rows, "seeds": n_seeds }));
}
