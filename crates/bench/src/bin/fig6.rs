//! Figure 6: MLU under "real" (skewed full-mesh) demands on the three
//! SNDLib topologies with published traffic matrices.
//!
//! Offline substitution (DESIGN.md §3): SNDLib's real matrices are stood in
//! for by MCF-normalized gravity matrices with heavy log-normal skew — the
//! two properties the paper highlights ("all connection pairs are active,
//! though a huge skew can be observed"). Paper averages: HeurOSPF 1.11 →
//! JointHeur 1.05.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, fast_mode, seeds, stat, write_json};
use segrout_core::{Router, WeightSetting};
use segrout_obs::json;
use segrout_topo::fig6_topologies;
use segrout_traffic::{gravity, TrafficConfig};

fn main() {
    banner("Figure 6 — real-like (gravity) demands on Abilene / Germany50 / Géant");
    let n_seeds = if fast_mode() { 1 } else { seeds() };
    println!("matrices per topology: {n_seeds}\n");
    println!(
        "{:<12} | {:>18} {:>18} {:>18} {:>18}",
        "topology", "InverseCapacity", "HeurOSPF", "GreedyWaypoints", "JointHeur"
    );

    let mut rows = Vec::new();
    let mut heur_all = Vec::new();
    let mut joint_all = Vec::new();
    for (name, net) in fig6_topologies() {
        let mut cols = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for seed in 0..n_seeds {
            let demands = match gravity(
                &net,
                &TrafficConfig {
                    seed: 300 + seed,
                    ..Default::default()
                },
            ) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("skipping {name} seed {seed}: {e}");
                    continue;
                }
            };
            let inv_w = WeightSetting::inverse_capacity(&net);
            cols[0].push(Router::new(&net, &inv_w).mlu(&demands).expect("routes"));

            let ospf_cfg = HeurOspfConfig {
                seed: 13 + seed,
                restarts: if fast_mode() { 0 } else { 1 },
                max_passes: if fast_mode() { 5 } else { 20 },
                ..Default::default()
            };
            let heur_w = heur_ospf(&net, &demands, &ospf_cfg);
            cols[1].push(Router::new(&net, &heur_w).mlu(&demands).expect("routes"));

            let wp =
                greedy_wpo(&net, &demands, &inv_w, &GreedyWpoConfig::default()).expect("routes");
            cols[2].push(
                Router::new(&net, &inv_w)
                    .evaluate(&demands, &wp)
                    .expect("routes")
                    .mlu,
            );

            let joint = joint_heur(
                &net,
                &demands,
                &JointHeurConfig {
                    ospf: ospf_cfg,
                    ..Default::default()
                },
            )
            .expect("routes");
            cols[3].push(joint.mlu);
        }
        let stats: Vec<_> = cols.iter().map(|c| stat(c)).collect();
        println!(
            "{:<12} | {:>5.2}/{:>5.2}/{:>5.2} {:>6.2}/{:>5.2}/{:>5.2} {:>6.2}/{:>5.2}/{:>5.2} {:>6.2}/{:>5.2}/{:>5.2}",
            name,
            stats[0].min, stats[0].avg, stats[0].max,
            stats[1].min, stats[1].avg, stats[1].max,
            stats[2].min, stats[2].avg, stats[2].max,
            stats[3].min, stats[3].avg, stats[3].max,
        );
        heur_all.extend_from_slice(&cols[1]);
        joint_all.extend_from_slice(&cols[3]);
        rows.push(json!({
            "topology": name,
            "inverse_capacity": stats[0],
            "heur_ospf": stats[1],
            "greedy_waypoints": stats[2],
            "joint_heur": stats[3],
        }));
    }
    println!(
        "\nAverages: HeurOSPF {:.3} -> JointHeur {:.3}  (paper: 1.11 -> 1.05)",
        stat(&heur_all).avg,
        stat(&joint_all).avg
    );
    write_json("fig6", &json!({ "rows": rows, "seeds": n_seeds }));
}
