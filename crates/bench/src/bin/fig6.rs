//! Figure 6: MLU under "real" (skewed full-mesh) demands on the three
//! SNDLib topologies with published traffic matrices.
//!
//! Offline substitution (DESIGN.md §3): SNDLib's real matrices are stood in
//! for by MCF-normalized gravity matrices with heavy log-normal skew — the
//! two properties the paper highlights ("all connection pairs are active,
//! though a huge skew can be observed"). Paper averages: HeurOSPF 1.11 →
//! JointHeur 1.05.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_bench::{banner, fast_mode, seeds, stat, write_json};
use segrout_core::{Router, WeightSetting};
use segrout_obs::json;
use segrout_topo::fig6_topologies;
use segrout_traffic::{gravity, TrafficConfig};

fn main() {
    banner("Figure 6 — real-like (gravity) demands on Abilene / Germany50 / Géant");
    let n_seeds = if fast_mode() { 1 } else { seeds() };
    println!("matrices per topology: {n_seeds}\n");
    println!(
        "{:<12} | {:>18} {:>18} {:>18} {:>18}",
        "topology", "InverseCapacity", "HeurOSPF", "GreedyWaypoints", "JointHeur"
    );

    let mut rows = Vec::new();
    let mut heur_all = Vec::new();
    let mut joint_all = Vec::new();
    for (name, net) in fig6_topologies() {
        let mut cols = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        // Fan the traffic-matrix seeds out over the pool; results come back
        // in seed order, so stats and JSON records are independent of the
        // thread count.
        let per_seed = segrout_par::par_map(n_seeds as usize, |s| {
            let seed = s as u64;
            let demands = gravity(
                &net,
                &TrafficConfig {
                    seed: 300 + seed,
                    ..Default::default()
                },
            )?;
            let inv_w = WeightSetting::inverse_capacity(&net);
            let inv = Router::new(&net, &inv_w).mlu(&demands).expect("routes");

            let ospf_cfg = HeurOspfConfig {
                seed: 13 + seed,
                restarts: if fast_mode() { 0 } else { 1 },
                max_passes: if fast_mode() { 5 } else { 20 },
                ..Default::default()
            };
            let heur_w = heur_ospf(&net, &demands, &ospf_cfg);
            let heur = Router::new(&net, &heur_w).mlu(&demands).expect("routes");

            let wp =
                greedy_wpo(&net, &demands, &inv_w, &GreedyWpoConfig::default()).expect("routes");
            let greedy = Router::new(&net, &inv_w)
                .evaluate(&demands, &wp)
                .expect("routes")
                .mlu;

            let joint = joint_heur(
                &net,
                &demands,
                &JointHeurConfig {
                    ospf: ospf_cfg,
                    ..Default::default()
                },
            )
            .expect("routes");
            Ok::<_, segrout_core::TeError>((inv, heur, greedy, joint.mlu))
        });
        for (seed, outcome) in per_seed.into_iter().enumerate() {
            match outcome {
                Ok((inv, heur, greedy, joint)) => {
                    cols[0].push(inv);
                    cols[1].push(heur);
                    cols[2].push(greedy);
                    cols[3].push(joint);
                }
                Err(e) => eprintln!("skipping {name} seed {seed}: {e}"),
            }
        }
        let stats: Vec<_> = cols.iter().map(|c| stat(c).expect("seeded runs")).collect();
        println!(
            "{:<12} | {:>5.2}/{:>5.2}/{:>5.2} {:>6.2}/{:>5.2}/{:>5.2} {:>6.2}/{:>5.2}/{:>5.2} {:>6.2}/{:>5.2}/{:>5.2}",
            name,
            stats[0].min, stats[0].avg, stats[0].max,
            stats[1].min, stats[1].avg, stats[1].max,
            stats[2].min, stats[2].avg, stats[2].max,
            stats[3].min, stats[3].avg, stats[3].max,
        );
        heur_all.extend_from_slice(&cols[1]);
        joint_all.extend_from_slice(&cols[3]);
        rows.push(json!({
            "topology": name,
            "inverse_capacity": stats[0],
            "heur_ospf": stats[1],
            "greedy_waypoints": stats[2],
            "joint_heur": stats[3],
        }));
    }
    println!(
        "\nAverages: HeurOSPF {:.3} -> JointHeur {:.3}  (paper: 1.11 -> 1.05)",
        stat(&heur_all).expect("seeded runs").avg,
        stat(&joint_all).expect("seeded runs").avg
    );
    write_json("fig6", &json!({ "rows": rows, "seeds": n_seeds }));
}
