//! Figure 7: the Nanonet proof-of-concept, reproduced on the hash-ECMP
//! simulator.
//!
//! Setup mirrors §7.2: TE-Instance 1 with m = 4, four pseudo-source flows
//! of 10 Mbit/s each (total 40 Mbit/s against the 10 Mbit/s thin links —
//! capacities rescaled so the fluid numbers match the paper's normalized
//! plot), 32 parallel streams per flow, 10 runs.
//!
//! * **Joint**: the Lemma 3.5 weights + one waypoint per flow. Every stream
//!   is pinned to a single route: MLU ≈ 1 with only noise-level deviation
//!   (paper: ≈ 1.0138 across all runs).
//! * **Weights**: the optimal LWO weights. The fluid MLU is 2, but the L4
//!   hash splits 128 streams imperfectly over the two equal-cost routes:
//!   the paper measured 2.14–2.52, median 2.27.

use segrout_bench::{banner, stat, write_json};
use segrout_instances::{instance1, instance1::lwo_optimal_weights};
use segrout_obs::json;
use segrout_sim::{HashEcmpSim, SimConfig, SimFlow};

fn main() {
    banner("Figure 7 — Nanonet experiment on the hash-ECMP simulator");
    let runs: u64 = std::env::var("SEGROUT_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let inst = instance1(4);

    // Joint configuration: lemma weights + per-flow waypoints.
    let joint_sim = HashEcmpSim::new(&inst.network, &inst.joint_weights);
    let joint_flows: Vec<SimFlow> = (0..4)
        .map(|i| SimFlow {
            src: inst.source,
            dst: inst.target,
            rate: 1.0, // one demand unit = 10 Mbit/s in the paper's units
            streams: 32,
            waypoints: inst.joint_waypoints.get(i).to_vec(),
        })
        .collect();

    // Weights-only configuration: optimal LWO weights, no waypoints.
    let lwo_w = lwo_optimal_weights(&inst);
    let weights_sim = HashEcmpSim::new(&inst.network, &lwo_w);
    let weights_flows: Vec<SimFlow> = (0..4)
        .map(|_| SimFlow {
            src: inst.source,
            dst: inst.target,
            rate: 1.0,
            streams: 32,
            waypoints: vec![],
        })
        .collect();

    let mut joint_mlus = Vec::new();
    let mut weight_mlus = Vec::new();
    println!("\n{:>4} {:>12} {:>12}", "run", "Joint", "Weights");
    for run in 0..runs {
        let cfg = SimConfig {
            seed: 4242 + run,
            noise: 0.015,
        };
        let j = joint_sim.run(&joint_flows, &cfg).expect("routes");
        let w = weights_sim.run(&weights_flows, &cfg).expect("routes");
        println!("{:>4} {:>12.4} {:>12.4}", run, j.mlu, w.mlu);
        joint_mlus.push(j.mlu);
        weight_mlus.push(w.mlu);
    }

    let js = stat(&joint_mlus).expect("seeded runs");
    let ws = stat(&weight_mlus).expect("seeded runs");
    println!(
        "\nJoint:   min {:.4}  median {:.4}  max {:.4}   (paper ≈ 1.0138, constant)",
        js.min, js.median, js.max
    );
    println!(
        "Weights: min {:.4}  median {:.4}  max {:.4}   (paper 2.1439–2.5219, median 2.2704)",
        ws.min, ws.median, ws.max
    );
    write_json("fig7", &json!({ "runs": runs, "joint": js, "weights": ws }));
}
