//! Table 1: TE-gap lower bounds, measured empirically on the paper's
//! worst-case instances.
//!
//! For each instance size we evaluate:
//!
//! * `Joint` — the lemma's constructive joint setting (always MLU 1),
//! * `LWO`  — the instance's optimal/analytic even-split weight setting,
//! * `WPO`  — greedy waypoints (a valid *lower* bound on the WPO gap would
//!   need the optimum; greedy upper-bounds WPO's MLU, and on these
//!   constructions the paper proves no waypoint setting helps, so greedy is
//!   tight up to small factors) under the standard weight settings of
//!   Definition 3.2,
//!
//! and print the gap ratios `R_LWO = LWO/Joint` and `R_WPO = WPO/Joint`,
//! whose growth demonstrates the Ω(n) (W = 1, Instance 1) and Ω(n log n)
//! (W = 2, Instances 3/5) rows of Table 1, plus the Theorem 4.2 upper bound
//! (gap 1 under uniform capacities) and the Theorem 5.4 approximation bound.

use segrout_algos::{greedy_wpo, lwo_apx, GreedyWpoConfig};
use segrout_bench::{banner, write_json};
use segrout_core::{Router, WeightSetting};
use segrout_instances::{
    harmonic, instance1, instance1::lwo_optimal_weights, instance2, instance3,
    instance34::instance3_lwo_optimal_weights, instance5,
};
use segrout_obs::json;

fn main() {
    banner("Table 1 — TE gaps for single source-target demands (measured)");
    let mut records = Vec::new();

    // ---------------- Instance 1: R* in Omega(n), W = 1 ----------------
    println!("\nTE-Instance 1 (Fig. 1) — gap Ω(n) with W = 1:");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "m", "n", "Joint", "LWO", "R_LWO", "WPO(unit)", "WPO(opt-w)"
    );
    // Instance sizes evaluate independently: fan each size loop out over
    // the pool, then print/record the rows back in size order.
    let sizes1 = [4usize, 8, 16, 32, 64];
    let rows1 = segrout_par::par_map_slice(&sizes1, |_, &m| {
        let inst = instance1(m);
        let joint = Router::new(&inst.network, &inst.joint_weights)
            .evaluate(&inst.demands, &inst.joint_waypoints)
            .expect("joint routes")
            .mlu;
        // LWO under the Lemma 3.6 optimal even-split weights.
        let lwo_w = lwo_optimal_weights(&inst);
        let lwo = Router::new(&inst.network, &lwo_w)
            .mlu(&inst.demands)
            .expect("routes");
        // WPO (greedy, W = 1) under unit weights and under the LWO-optimal
        // weights.
        let wpo_unit = wpo_mlu(
            &inst.network,
            &inst.demands,
            &WeightSetting::unit(&inst.network),
        );
        let wpo_opt = wpo_mlu(&inst.network, &inst.demands, &lwo_w);
        (joint, lwo, wpo_unit, wpo_opt)
    });
    for (&m, (joint, lwo, wpo_unit, wpo_opt)) in sizes1.iter().zip(rows1) {
        println!(
            "{:>6} {:>6} {:>10.3} {:>10.3} {:>12.3} {:>12.3} {:>12.3}",
            m,
            m + 1,
            joint,
            lwo,
            lwo / joint,
            wpo_unit,
            wpo_opt
        );
        records.push(json!({
            "instance": 1, "m": m, "joint": joint, "lwo": lwo,
            "r_lwo": lwo / joint, "wpo_unit": wpo_unit, "wpo_opt_w": wpo_opt,
        }));
    }
    println!("  -> R_LWO grows as (n-1)/2 and WPO stays Ω(n)/3: the linear gap of Thm 3.4.");

    // ---------------- Instance 2: the log factor ----------------
    println!("\nTE-Instance 2 (Fig. 2a) — log-factor gadget:");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "m", "H_m", "LWO>=H_m", "LWO-APX ach."
    );
    let sizes2 = [8usize, 16, 32, 64];
    let rows2 = segrout_par::par_map_slice(&sizes2, |_, &m| {
        let inst = instance2(m);
        let router = Router::new(&inst.network, &inst.joint_weights);
        let lwo = router.mlu(&inst.demands).expect("routes");
        let apx = lwo_apx(&inst.network, inst.source, inst.target).expect("routes");
        (lwo, apx.achieved_ratio())
    });
    for (&m, (lwo, apx_ratio)) in sizes2.iter().zip(rows2) {
        println!(
            "{:>6} {:>10.3} {:>12.3} {:>12.3}",
            m,
            harmonic(m),
            lwo,
            apx_ratio
        );
        records.push(json!({
            "instance": 2, "m": m, "h_m": harmonic(m), "lwo": lwo,
            "lwo_apx_ratio": apx_ratio,
        }));
    }

    // ---------------- Instance 3: R_LWO in Omega(n log n), W = 2 --------
    println!("\nTE-Instance 3 (Fig. 2b) — R_LWO ∈ Ω(n log n) with W = 2:");
    println!(
        "{:>6} {:>6} {:>10} {:>12} {:>14} {:>14}",
        "m", "n", "Joint", "LWO(D/2)", "R_LWO", "n·log n"
    );
    let sizes3 = [3usize, 5, 8, 12, 16];
    let rows3 = segrout_par::par_map_slice(&sizes3, |_, &m| {
        let inst = instance3(m);
        let joint = Router::new(&inst.network, &inst.joint_weights)
            .evaluate(&inst.demands, &inst.joint_waypoints)
            .expect("routes")
            .mlu;
        let lwo_w = instance3_lwo_optimal_weights(&inst);
        let lwo = Router::new(&inst.network, &lwo_w)
            .mlu(&inst.demands)
            .expect("routes");
        (joint, lwo)
    });
    for (&m, (joint, lwo)) in sizes3.iter().zip(rows3) {
        let n = 2 * m;
        println!(
            "{:>6} {:>6} {:>10.3} {:>12.3} {:>14.3} {:>14.3}",
            m,
            n,
            joint,
            lwo,
            lwo / joint,
            (n as f64) * (n as f64).ln()
        );
        records.push(json!({
            "instance": 3, "m": m, "joint": joint, "lwo": lwo, "r_lwo": lwo / joint,
        }));
    }

    // ---------------- Instance 5: the combined gap ----------------
    println!("\nTE-Instance 5 (§3.5) — combined construction:");
    println!("{:>6} {:>6} {:>10} {:>14}", "m", "n", "Joint", "D = m·H_m");
    let sizes5 = [3usize, 5, 8];
    let rows5 = segrout_par::par_map_slice(&sizes5, |_, &m| {
        let inst = instance5(m);
        let joint = Router::new(&inst.network, &inst.joint_weights)
            .evaluate(&inst.demands, &inst.joint_waypoints)
            .expect("routes")
            .mlu;
        (joint, inst.demands.total_size())
    });
    for (&m, (joint, total)) in sizes5.iter().zip(rows5) {
        println!("{:>6} {:>6} {:>10.3} {:>14.3}", m, 4 * m + 1, joint, total);
        records.push(json!({"instance": 5, "m": m, "joint": joint}));
    }

    // ---------------- Upper bounds ----------------
    println!("\nUpper bounds:");
    // Theorem 4.2: uniform capacities -> LWO = OPT (gap 1). Demonstrate on a
    // uniform-capacity grid with one (s,t) pair via LWO-APX + Lemma 4.1.
    let grid = segrout_topo::grid(4, 3, 10.0);
    let s = segrout_core::NodeId(0);
    let t = segrout_core::NodeId(11);
    let apx = lwo_apx(&grid, s, t).expect("routes");
    println!(
        "  Thm 4.2 (uniform capacities): LWO-APX achieved ratio on 4x3 grid = {:.3} (= 1 means LWO = OPT)",
        apx.achieved_ratio()
    );
    records.push(json!({"bound": "thm4.2_grid", "ratio": apx.achieved_ratio()}));

    // Theorem 5.4: achieved ratio <= n ceil(ln Δ*) on the adversarial
    // harmonic instance.
    let inst = instance2(64);
    let apx = lwo_apx(&inst.network, inst.source, inst.target).expect("routes");
    let n = inst.network.node_count() as f64;
    let delta = inst.network.graph().max_out_degree() as f64;
    println!(
        "  Thm 5.4: achieved {:.3} <= n·ceil(ln Δ*) = {:.0}",
        apx.achieved_ratio(),
        n * delta.ln().ceil()
    );
    records.push(json!({
        "bound": "thm5.4_instance2", "achieved": apx.achieved_ratio(),
        "guarantee": n * delta.ln().ceil(),
    }));

    write_json("table1", &json!({ "rows": records }));
}

/// Greedy-WPO MLU under a given weight setting (upper bound on WPO's MLU;
/// on the worst-case instances the paper proves waypoints cannot help, so
/// this matches the analytic Ω(n) behaviour).
fn wpo_mlu(
    net: &segrout_core::Network,
    demands: &segrout_core::DemandList,
    weights: &WeightSetting,
) -> f64 {
    let setting = greedy_wpo(net, demands, weights, &GreedyWpoConfig::default()).expect("routes");
    Router::new(net, weights)
        .evaluate(demands, &setting)
        .expect("routes")
        .mlu
}
