//! # segrout-bench
//!
//! The experiment harness regenerating every table and figure of the paper.
//! Each binary prints the corresponding rows and writes a JSON record under
//! `results/` (used to assemble EXPERIMENTS.md):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — TE gap growth on Instances 1/2/3/5 |
//! | `fig3` | Figure 3 — effective-capacity worked examples |
//! | `fig4` | Figure 4 — heuristics on the ten largest topologies |
//! | `fig5` | Figure 5 — MILP vs heuristics on Abilene |
//! | `fig6` | Figure 6 — real-like (gravity) demands |
//! | `fig7` | Figure 7 — hash-ECMP (Nanonet) experiment |
//! | `ablation_joint` | §8 open questions — JOINT-Heur design knobs |
//! | `bench_parallel` | serial vs parallel optimizer wall-time (`BENCH_parallel.json`) |
//! | `bench_incremental` | incremental vs from-scratch candidate evaluation (`BENCH_incremental.json`) |
//! | `bench_failsweep` | failure-sweep scenario throughput on Germany50 (`BENCH_failsweep.json`) |
//!
//! Run e.g. `cargo run -p segrout-bench --release --bin fig4`. Binaries
//! accept `SEGROUT_SEEDS=<k>` to change the number of demand sets
//! (default 3; the paper uses 10) and `SEGROUT_FAST=1` for smoke-test runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use segrout_obs::Json;
use std::fs;
use std::path::Path;
use std::sync::OnceLock;

/// Flight-recorder output paths requested via CLI flags (written by
/// [`finish_obs`]).
static TRACE_OUT: OnceLock<String> = OnceLock::new();
static PROFILE_OUT: OnceLock<String> = OnceLock::new();

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug)]
pub struct Stat {
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub avg: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
}

impl From<Stat> for Json {
    fn from(s: Stat) -> Json {
        Json::obj([
            ("min", Json::from(s.min)),
            ("avg", Json::from(s.avg)),
            ("max", Json::from(s.max)),
            ("median", Json::from(s.median)),
        ])
    }
}

/// Computes summary statistics; `None` for an empty sample (an experiment
/// where every run was filtered out — e.g. all failure scenarios
/// disconnecting — must degrade to "no data", not crash at the summary
/// line).
///
/// # Panics
/// Panics when the sample contains a non-finite value: a NaN would
/// previously sort arbitrarily (`partial_cmp` falling back to `Equal`) and
/// silently poison min/median/max, so it is surfaced here instead.
pub fn stat(xs: &[f64]) -> Option<Stat> {
    if xs.is_empty() {
        return None;
    }
    for &x in xs {
        assert!(x.is_finite(), "sample contains a non-finite value: {x}");
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    Some(Stat {
        min: sorted[0],
        avg: xs.iter().sum::<f64>() / xs.len() as f64,
        max: *sorted.last().expect("non-empty"),
        median,
    })
}

/// Number of demand-set seeds per experiment (`SEGROUT_SEEDS`, default 3).
pub fn seeds() -> u64 {
    std::env::var("SEGROUT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Fast mode for smoke tests (`SEGROUT_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("SEGROUT_FAST").is_ok_and(|v| v == "1")
}

/// Writes a JSON record for an experiment under `results/`, stamping host
/// provenance (core count, thread setting, git rev) into the record and
/// writing a sibling `<name>.run.json` run artifact — so a
/// `BENCH_parallel.json` measured on one core is self-describing and two
/// bench runs can be diffed with `segrout report`.
pub fn write_json(name: &str, value: &Json) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create results/; skipping JSON export");
        return;
    }
    // Fast (smoke-test) runs must not clobber full-run records.
    let suffix = if fast_mode() { "_fast" } else { "" };
    let path = dir.join(format!("{name}{suffix}.json"));
    let record = segrout_obs::attach_provenance(value.clone());
    if let Err(e) = fs::write(&path, record.render()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("[results written to {}]", path.display());
    }
    let artifact = dir.join(format!("{name}{suffix}.run.json"));
    if let Err(e) = segrout_obs::write_run_artifact(&artifact, name, Some(seeds()), &[]) {
        eprintln!("warning: cannot write {}: {e}", artifact.display());
    }
    // Each binary's final act: also emit the run's metric registry to any
    // `--metrics-out` JSONL sink so benchmark telemetry matches
    // `segrout optimize`.
    finish_obs();
}

/// Writes a standalone benchmark record (e.g. `BENCH_parallel.json` in the
/// working directory), stamping host provenance (core count, thread
/// setting, git rev) into the record and writing a sibling `<stem>.run.json`
/// run artifact so two runs can be diffed with `segrout report`.
pub fn write_record(path: &str, value: &Json) {
    let record = segrout_obs::attach_provenance(value.clone());
    if let Err(e) = fs::write(path, record.render()) {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("[results written to {path}]");
    }
    let stem = path.strip_suffix(".json").unwrap_or(path);
    let artifact = format!("{stem}.run.json");
    if let Err(e) = segrout_obs::write_run_artifact(Path::new(&artifact), stem, Some(seeds()), &[])
    {
        eprintln!("warning: cannot write {artifact}: {e}");
    }
}

/// Applies the shared observability CLI flags (`--log-level <level>`,
/// `--metrics-out <file.jsonl>`, `--threads <N>`) from this process's
/// arguments, so every figure binary emits telemetry artifacts comparable
/// to `segrout optimize`. Unknown arguments are ignored (the binaries are
/// otherwise configured by environment variables).
pub fn init_obs_from_args() {
    // Pin the telemetry epoch now so run-artifact wall times cover the
    // whole run (`elapsed_us` starts its clock at the first call).
    let _ = segrout_obs::elapsed_us();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--log-level" => match args[i + 1].parse() {
                Ok(level) => segrout_obs::set_level(level),
                Err(e) => eprintln!("warning: {e}"),
            },
            "--metrics-out" => {
                if let Err(e) = segrout_obs::init_jsonl(Path::new(&args[i + 1])) {
                    eprintln!("warning: cannot open {}: {e}", args[i + 1]);
                }
            }
            "--threads" => match args[i + 1].parse::<usize>() {
                Ok(n) if n > 0 => segrout_par::set_threads(n),
                _ => eprintln!("warning: --threads expects a positive integer"),
            },
            "--trace-out" => {
                segrout_obs::set_trace_enabled(true);
                let _ = TRACE_OUT.set(args[i + 1].clone());
            }
            "--profile-out" => {
                segrout_obs::set_profiling(true);
                let _ = PROFILE_OUT.set(args[i + 1].clone());
            }
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    // Record the effective thread count (flag, SEGROUT_THREADS, or the
    // hardware default) in the summary table and JSONL telemetry.
    segrout_obs::gauge("par.threads").set(segrout_par::threads() as f64);
}

/// Dumps the metric registry to any JSONL sink, writes any requested
/// flight-recorder outputs, and flushes all sinks. Figure binaries call
/// this once before exiting.
pub fn finish_obs() {
    if let Some(path) = TRACE_OUT.get() {
        match segrout_obs::write_trace_jsonl(Path::new(path)) {
            Ok(n) => eprintln!("trace: {n} points written to {path}"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }
    if let Some(path) = PROFILE_OUT.get() {
        if let Err(e) = segrout_obs::write_collapsed_stacks(Path::new(path)) {
            eprintln!("warning: cannot write {path}: {e}");
        } else {
            eprintln!("profile: collapsed stacks written to {path}");
        }
    }
    segrout_obs::dump_metrics();
}

/// Times `f` over `samples` runs (after one warm-up) and prints min /
/// median / mean wall-time in milliseconds — the plain offline replacement
/// for the former criterion harness.
pub fn time_it<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) {
    let _ = std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t0 = std::time::Instant::now();
        let _ = std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let s = stat(&times).expect("at least one timing sample");
    println!(
        "{name:<44} min {:>10.3} ms   median {:>10.3} ms   avg {:>10.3} ms",
        s.min, s.median, s.avg
    );
}

/// Prints a header line for an experiment binary and applies the shared
/// observability flags (every figure binary calls this first).
pub fn banner(title: &str) {
    init_obs_from_args();
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_basics() {
        let s = stat(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn median_of_even_sample() {
        let s = stat(&[4.0, 1.0, 2.0, 3.0]).unwrap();
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(stat(&[]).is_none());
    }

    #[test]
    fn negative_zero_sorts_cleanly() {
        let s = stat(&[0.0, -0.0, -1.0]).unwrap();
        assert_eq!(s.min, -1.0);
        assert_eq!(s.median, -0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_sample_panics() {
        stat(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infinite_sample_panics() {
        stat(&[1.0, f64::INFINITY]);
    }
}
