//! Self-contained fuzz scenarios with a replayable text format.
//!
//! A [`Case`] bundles everything one differential check needs — topology,
//! demands, configuration, and execution knobs — in a line-oriented format
//! that extends the `segrout-config v1` grammar with topology directives:
//!
//! ```text
//! # segrout-case v1
//! seed 42
//! threads 4
//! incremental 1
//! engine revised
//! pipeline 1
//! nodes 4
//! link 0 1 100
//! demand 0 3 2.5
//! matrix 1.25          # extra traffic matrix: one size per demand
//! event scale 0 1.5    # serve-event stream: demand scaling, ...
//! event down 2         # ... link flaps, ...
//! event cap 1 50       # ... capacity changes, ...
//! event noop           # ... keep-alives, and
//! event matrix 0 3 2.5 # full matrix swaps (src dst size triples)
//! # segrout-config v1
//! weight 0 2
//! waypoint 0 2
//! ```
//!
//! The `weight`/`waypoint` section is parsed by the canonical
//! `segrout_core::read_config` so corpus files stay hand-editable with the
//! same rules as deployed configurations.

use crate::validator::{validate_robust, validate_sweep, Validator, ValidatorConfig, Violation};
use segrout_algos::{ServeConfig, ServeEvent, ServeSession, ServeTier};
use segrout_core::rng::StdRng;
use segrout_core::{
    evaluate_robust, read_config, DemandList, DemandSet, IncrementalEvaluator, Network,
    RobustObjective, Router, TeError, WaypointSetting, WeightSetting,
};
use segrout_graph::{EdgeId, NodeId};
use segrout_lp::{LpEngine, MilpOptions, MilpStatus};
use segrout_milp::{joint_milp, joint_milp_robust, JointMilpOptions};
use std::fmt;
use std::time::Duration;

/// LP engine selector for the differential dimension of a case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// Bounded-variable revised simplex (production path).
    Revised,
    /// Dense two-phase tableau (reference oracle).
    Tableau,
}

impl EngineChoice {
    /// The corresponding `segrout_lp` engine.
    pub fn lp_engine(self) -> LpEngine {
        match self {
            Self::Revised => LpEngine::Revised,
            Self::Tableau => LpEngine::Tableau,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Self::Revised => "revised",
            Self::Tableau => "tableau",
        }
    }
}

/// Result of running one case.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// Every enabled check passed.
    Pass {
        /// Number of individual checks performed.
        checks: usize,
    },
    /// The state is not evaluable (unroutable, invalid weights, solver
    /// limit, ...) — a property of the input, **not** a failure.
    Error(String),
    /// At least one invariant or differential check failed.
    Violations(Vec<Violation>),
    /// The pipeline panicked (recorded by the fuzzer's catch-unwind shim).
    Panic(String),
}

impl CaseOutcome {
    /// `true` for the outcomes that indicate a genuine bug.
    pub fn is_failure(&self) -> bool {
        matches!(self, Self::Violations(_) | Self::Panic(_))
    }
}

impl fmt::Display for CaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pass { checks } => write!(f, "pass ({checks} checks)"),
            Self::Error(e) => write!(f, "benign error: {e}"),
            Self::Violations(vs) => {
                writeln!(f, "{} violation(s):", vs.len())?;
                for v in vs {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
            Self::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// One self-contained differential scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Case {
    /// Node count of the topology.
    pub nodes: usize,
    /// Directed links `(src, dst, capacity)` in edge-index order.
    pub links: Vec<(u32, u32, f64)>,
    /// Demands `(src, dst, size)` — the base traffic matrix.
    pub demands: Vec<(u32, u32, f64)>,
    /// Additional traffic matrices for the robust multi-matrix stage, each a
    /// size row over the **same pairs** as `demands` (aligned by
    /// construction). Empty for classic single-matrix cases.
    pub extra_matrices: Vec<Vec<f64>>,
    /// Serve-event stream for the online-reoptimization stage: each event is
    /// fed to a [`ServeSession`] and the post-event state is checked against
    /// a from-scratch rebuild. Out-of-range indices and disconnecting
    /// failures are **legal** inputs here — the daemon must answer them with
    /// an error reply and untouched state, not die.
    pub events: Vec<ServeEvent>,
    /// Link weights, one per link.
    pub weights: Vec<f64>,
    /// Waypoint rows, one per demand (possibly empty).
    pub waypoints: Vec<Vec<u32>>,
    /// Worker-thread count the case runs under.
    pub threads: usize,
    /// Whether the incremental evaluation engine is exercised.
    pub incremental: bool,
    /// LP engine used for the MILP-oracle stage.
    pub engine: EngineChoice,
    /// Whether the full heuristic pipeline (HeurOSPF + GreedyWPO, plus the
    /// MILP oracle on tiny instances) runs on top of the state validation.
    pub pipeline: bool,
    /// Seed driving the probe/commit differential and the pipeline search.
    pub seed: u64,
}

/// Restores the ambient worker-thread override on scope exit, including
/// panic unwinds out of the pipeline stage.
struct ThreadGuard(usize);

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        segrout_par::set_threads(self.0);
    }
}

const TOL: f64 = 1e-6;

impl Case {
    /// Builds the network described by the topology section.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints and invalid capacities.
    pub fn network(&self) -> Result<Network, TeError> {
        let mut b = Network::builder(self.nodes);
        for &(u, v, cap) in &self.links {
            if u as usize >= self.nodes || v as usize >= self.nodes {
                return Err(TeError::InvalidWaypoints(format!(
                    "link {u} -> {v} out of range for {} nodes",
                    self.nodes
                )));
            }
            b.link(NodeId(u), NodeId(v), cap);
        }
        b.build()
    }

    /// Builds the demand list described by the demand section.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints.
    pub fn demand_list(&self) -> Result<DemandList, TeError> {
        let mut d = DemandList::new();
        for &(s, t, size) in &self.demands {
            if s as usize >= self.nodes || t as usize >= self.nodes {
                return Err(TeError::InvalidWaypoints(format!(
                    "demand {s} -> {t} out of range for {} nodes",
                    self.nodes
                )));
            }
            d.push(NodeId(s), NodeId(t), size);
        }
        Ok(d)
    }

    /// Builds the full multi-matrix [`DemandSet`]: the base matrix (`m0`)
    /// plus one matrix per `matrix` row (`m1`, `m2`, ...), all sharing the
    /// base's pair list.
    ///
    /// # Errors
    /// Rejects size-count mismatches and non-positive or non-finite sizes.
    pub fn demand_set(&self) -> Result<DemandSet, TeError> {
        let base = self.demand_list()?;
        let mut set = DemandSet::new();
        set.push("m0", base);
        for (j, row) in self.extra_matrices.iter().enumerate() {
            if row.len() != self.demands.len() {
                return Err(TeError::InvalidWaypoints(format!(
                    "matrix {j} has {} sizes for {} demands",
                    row.len(),
                    self.demands.len()
                )));
            }
            let mut d = DemandList::new();
            for (i, (&(s, t, _), &size)) in self.demands.iter().zip(row).enumerate() {
                if !(size.is_finite() && size > 0.0) {
                    return Err(TeError::InvalidDemand {
                        index: i,
                        value: size,
                    });
                }
                d.push(NodeId(s), NodeId(t), size);
            }
            set.push(format!("m{}", j + 1), d);
        }
        Ok(set)
    }

    fn weight_setting(&self, net: &Network) -> Result<WeightSetting, TeError> {
        WeightSetting::new(net, self.weights.clone())
    }

    fn waypoint_setting(&self) -> Result<WaypointSetting, TeError> {
        if self.waypoints.len() != self.demands.len() {
            return Err(TeError::InvalidWaypoints(format!(
                "{} waypoint rows for {} demands",
                self.waypoints.len(),
                self.demands.len()
            )));
        }
        let mut wp = WaypointSetting::none(self.demands.len());
        for (i, row) in self.waypoints.iter().enumerate() {
            if !row.is_empty() {
                wp.set(i, row.iter().map(|&v| NodeId(v)).collect());
            }
        }
        Ok(wp)
    }

    /// Serializes the case to its text format. The output round-trips
    /// bit-exactly through [`Case::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::from("# segrout-case v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("threads {}\n", self.threads));
        out.push_str(&format!("incremental {}\n", u8::from(self.incremental)));
        out.push_str(&format!("engine {}\n", self.engine.as_str()));
        out.push_str(&format!("pipeline {}\n", u8::from(self.pipeline)));
        out.push_str(&format!("nodes {}\n", self.nodes));
        for &(u, v, cap) in &self.links {
            out.push_str(&format!("link {u} {v} {cap}\n"));
        }
        for &(s, t, size) in &self.demands {
            out.push_str(&format!("demand {s} {t} {size}\n"));
        }
        for row in &self.extra_matrices {
            out.push_str("matrix");
            for s in row {
                out.push_str(&format!(" {s}"));
            }
            out.push('\n');
        }
        for event in &self.events {
            match event {
                ServeEvent::Noop => out.push_str("event noop\n"),
                ServeEvent::DemandScale { index, factor } => {
                    out.push_str(&format!("event scale {index} {factor}\n"));
                }
                ServeEvent::LinkDown { edge } => {
                    out.push_str(&format!("event down {}\n", edge.0));
                }
                ServeEvent::LinkUp { edge } => {
                    out.push_str(&format!("event up {}\n", edge.0));
                }
                ServeEvent::Capacity { edge, capacity } => {
                    out.push_str(&format!("event cap {} {capacity}\n", edge.0));
                }
                ServeEvent::DemandMatrix { demands } => {
                    out.push_str("event matrix");
                    for (s, t, size) in demands {
                        out.push_str(&format!(" {} {} {size}", s.0, t.0));
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str("# segrout-config v1\n");
        for (e, w) in self.weights.iter().enumerate() {
            out.push_str(&format!("weight {e} {w}\n"));
        }
        for (i, row) in self.waypoints.iter().enumerate() {
            if !row.is_empty() {
                out.push_str(&format!(
                    "waypoint {i}{}\n",
                    row.iter().map(|v| format!(" {v}")).collect::<String>()
                ));
            }
        }
        out
    }

    /// Parses a case from its text format. `weight` and `waypoint` lines are
    /// handed to the canonical `segrout_core::read_config` parser.
    ///
    /// # Errors
    /// Reports malformed lines with their line numbers.
    pub fn from_text(text: &str) -> Result<Self, TeError> {
        let mut case = Case {
            nodes: 0,
            links: Vec::new(),
            demands: Vec::new(),
            extra_matrices: Vec::new(),
            events: Vec::new(),
            weights: Vec::new(),
            waypoints: Vec::new(),
            threads: 1,
            incremental: true,
            engine: EngineChoice::Revised,
            pipeline: true,
            seed: 0,
        };
        let mut config_lines = String::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad = |msg: &str| TeError::InvalidWaypoints(format!("line {}: {msg}", lineno + 1));
            fn num(
                parts: &mut std::str::SplitWhitespace<'_>,
                lineno: usize,
                what: &str,
            ) -> Result<f64, TeError> {
                parts
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| {
                        TeError::InvalidWaypoints(format!("line {}: needs {what}", lineno + 1))
                    })
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().expect("non-empty line has a first token");
            let p = &mut parts;
            match directive {
                "seed" => {
                    case.seed = p
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("seed needs an integer"))?
                }
                "threads" => case.threads = num(p, lineno, "a thread count")? as usize,
                "incremental" => case.incremental = num(p, lineno, "0 or 1")? != 0.0,
                "pipeline" => case.pipeline = num(p, lineno, "0 or 1")? != 0.0,
                "engine" => {
                    case.engine = match p.next() {
                        Some("revised") => EngineChoice::Revised,
                        Some("tableau") => EngineChoice::Tableau,
                        _ => return Err(bad("engine needs 'revised' or 'tableau'")),
                    }
                }
                "nodes" => case.nodes = num(p, lineno, "a node count")? as usize,
                "link" => {
                    let u = num(p, lineno, "a source")? as u32;
                    let v = num(p, lineno, "a destination")? as u32;
                    let cap = num(p, lineno, "a capacity")?;
                    case.links.push((u, v, cap));
                }
                "demand" => {
                    let s = num(p, lineno, "a source")? as u32;
                    let t = num(p, lineno, "a destination")? as u32;
                    let size = num(p, lineno, "a size")?;
                    case.demands.push((s, t, size));
                }
                "matrix" => {
                    let mut row = Vec::new();
                    for tok in p.by_ref() {
                        row.push(tok.parse::<f64>().map_err(|_| bad("matrix needs sizes"))?);
                    }
                    if row.is_empty() {
                        return Err(bad("matrix needs at least one size"));
                    }
                    case.extra_matrices.push(row);
                }
                "event" => {
                    let kind = p.next().ok_or_else(|| bad("event needs a kind"))?;
                    let event = match kind {
                        "noop" => ServeEvent::Noop,
                        "scale" => ServeEvent::DemandScale {
                            index: num(p, lineno, "a demand index")? as usize,
                            factor: num(p, lineno, "a factor")?,
                        },
                        "down" => ServeEvent::LinkDown {
                            edge: EdgeId(num(p, lineno, "an edge id")? as u32),
                        },
                        "up" => ServeEvent::LinkUp {
                            edge: EdgeId(num(p, lineno, "an edge id")? as u32),
                        },
                        "cap" => ServeEvent::Capacity {
                            edge: EdgeId(num(p, lineno, "an edge id")? as u32),
                            capacity: num(p, lineno, "a capacity")?,
                        },
                        "matrix" => {
                            let nums: Vec<f64> = p
                                .by_ref()
                                .map(str::parse::<f64>)
                                .collect::<Result<_, _>>()
                                .map_err(|_| bad("event matrix needs numbers"))?;
                            if nums.is_empty() || !nums.len().is_multiple_of(3) {
                                return Err(bad("event matrix needs src dst size triples"));
                            }
                            ServeEvent::DemandMatrix {
                                demands: nums
                                    .chunks_exact(3)
                                    .map(|c| (NodeId(c[0] as u32), NodeId(c[1] as u32), c[2]))
                                    .collect(),
                            }
                        }
                        other => return Err(bad(&format!("unknown event kind '{other}'"))),
                    };
                    case.events.push(event);
                }
                "weight" | "waypoint" => {
                    config_lines.push_str(line);
                    config_lines.push('\n');
                }
                other => return Err(bad(&format!("unknown directive '{other}'"))),
            }
        }

        for (j, row) in case.extra_matrices.iter().enumerate() {
            if row.len() != case.demands.len() {
                return Err(TeError::InvalidWaypoints(format!(
                    "matrix {j} has {} sizes for {} demands",
                    row.len(),
                    case.demands.len()
                )));
            }
        }
        let net = case.network()?;
        let demands = case.demand_list()?;
        let (weights, waypoints) = read_config(&net, &demands, &config_lines)?;
        case.weights = weights.as_slice().to_vec();
        case.waypoints = (0..waypoints.len())
            .map(|i| waypoints.get(i).iter().map(|n| n.0).collect())
            .collect();
        Ok(case)
    }

    /// Runs every differential stage of the case and reports the outcome.
    ///
    /// Stages: (1) the full invariant [`Validator`] on the given state, (2)
    /// a seeded probe/commit differential between the incremental engine and
    /// from-scratch routing, (3) the heuristic pipeline (HeurOSPF +
    /// GreedyWPO) with validation of its output, (4) on tiny instances,
    /// the MILP oracle — optimality sandwich plus a Revised-vs-Tableau LP
    /// engine differential, (5) the robust multi-matrix differential on
    /// cases with extra matrices, (6) the failure-sweep differential
    /// pinning the edge-disable probe against deleted-topology re-routing,
    /// and (7) the online-serving differential on cases with an event
    /// stream — every post-event session state must match a from-scratch
    /// rebuild bitwise, with churn and SLO accounting checked per event.
    pub fn run(&self, vcfg: &ValidatorConfig) -> CaseOutcome {
        let _threads = ThreadGuard(segrout_par::threads());
        segrout_par::set_threads(self.threads);

        let built = (|| {
            let net = self.network()?;
            let demands = self.demand_list()?;
            let weights = self.weight_setting(&net)?;
            let waypoints = self.waypoint_setting()?;
            Ok::<_, TeError>((net, demands, weights, waypoints))
        })();
        let (net, demands, weights, waypoints) = match built {
            Ok(x) => x,
            Err(e) => return CaseOutcome::Error(e.to_string()),
        };

        let mut cfg = vcfg.clone();
        cfg.compare_incremental = self.incremental;
        let mut violations = Vec::new();
        let mut checks = 0usize;

        // Stage 1: full invariant suite on the given state.
        match Validator::new(&net, &demands, &weights, &waypoints)
            .with_config(cfg.clone())
            .validate()
        {
            Ok(rep) => {
                checks += rep.checks;
                violations.extend(rep.violations);
            }
            Err(e) => return CaseOutcome::Error(e.to_string()),
        }

        // Stage 2: incremental probe/commit differential.
        if self.incremental && !self.demands.is_empty() {
            match self.run_incremental_differential(&net, &demands, &weights, &waypoints) {
                Ok((c, vs)) => {
                    checks += c;
                    violations.extend(vs);
                }
                Err(e) => return CaseOutcome::Error(e.to_string()),
            }
        }

        // Stages 3 + 4: heuristic pipeline, then the MILP oracle on tiny
        // instances.
        if self.pipeline && !self.demands.is_empty() {
            match self.run_pipeline(&net, &demands, &cfg) {
                Ok((c, vs)) => {
                    checks += c;
                    violations.extend(vs);
                }
                Err(e) => return CaseOutcome::Error(e.to_string()),
            }
        }

        // Stage 5: robust multi-matrix differential (invariants on the given
        // state, single-matrix reduction, robust pipeline + MILP oracle).
        if !self.extra_matrices.is_empty() && !self.demands.is_empty() {
            match self.run_robust(&net, &demands, &weights, &waypoints) {
                Ok((c, vs)) => {
                    checks += c;
                    violations.extend(vs);
                }
                Err(e) => return CaseOutcome::Error(e.to_string()),
            }
        }

        // Stage 6: failure-sweep differential — every (pattern, scaling)
        // scenario answered by the edge-disable probe is reproduced from
        // scratch on the edge-deleted topology. Doubles only on small
        // topologies; patterns grow quadratically in the link count.
        if !self.demands.is_empty() {
            let doubles = self.links.len() <= 10;
            match validate_sweep(&net, &demands, &weights, &waypoints, doubles, &[1.0, 1.25]) {
                Ok(rep) => {
                    checks += rep.checks;
                    violations.extend(rep.violations.into_iter().map(|mut v| {
                        v.detail = format!("sweep: {}", v.detail);
                        v
                    }));
                }
                Err(e) => return CaseOutcome::Error(e.to_string()),
            }
        }

        // Stage 7: online-serving differential over the event stream.
        if !self.events.is_empty() && !self.demands.is_empty() {
            match self.run_serve_events(&net, &demands, &weights, &waypoints) {
                Ok((c, vs)) => {
                    checks += c;
                    violations.extend(vs);
                }
                Err(e) => return CaseOutcome::Error(e.to_string()),
            }
        }

        if violations.is_empty() {
            CaseOutcome::Pass { checks }
        } else {
            CaseOutcome::Violations(violations)
        }
    }

    /// Online-serving differential: feeds the event stream to a
    /// [`ServeSession`] and checks, per event, that (a) the response's
    /// churn equals its weight-diff count and the diff replays the pre-event
    /// weights onto the post-event weights bit-exactly, (b) error replies
    /// leave every observable bit untouched, and (c) the session's in-place
    /// state equals a from-scratch evaluator rebuilt from the session's
    /// effective capacities, weights, workload, and failure mask. Afterwards
    /// the session tallies (tier partition, churn total, SLO violations)
    /// must agree with what the responses reported.
    fn run_serve_events(
        &self,
        net: &Network,
        demands: &DemandList,
        weights: &WeightSetting,
        waypoints: &WaypointSetting,
    ) -> Result<(usize, Vec<Violation>), TeError> {
        let cfg = ServeConfig {
            reopt: segrout_algos::ReoptimizeConfig {
                ospf: segrout_algos::HeurOspfConfig {
                    max_weight: 8,
                    max_passes: 2,
                    seed: self.seed,
                    use_incremental: self.incremental,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..ServeConfig::default()
        };
        let slo_ms = cfg.slo_ms;
        let mut session = ServeSession::new(net, weights, demands.clone(), waypoints.clone(), cfg)?;
        let mut checks = 0usize;
        let mut violations = Vec::new();
        let fail = |step: usize, detail: String| Violation {
            invariant: "serve-differential",
            detail: format!("event {step}: {detail}"),
        };
        let mut observed_errors = 0u64;
        let mut observed_slow = 0u64;
        let mut churn_total = 0u64;
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();

        for (step, event) in self.events.iter().enumerate() {
            let pre_weights = bits(session.evaluator().weights());
            let pre_loads = bits(session.evaluator().loads());
            let pre_mlu = session.evaluator().mlu().to_bits();
            let r = session.apply(event);
            let post_weights = bits(session.evaluator().weights());

            checks += 1;
            if r.seq != step as u64 + 1 {
                violations.push(fail(step, format!("seq {} != {}", r.seq, step + 1)));
            }
            checks += 1;
            if r.churn != r.weight_diffs.len() {
                violations.push(fail(
                    step,
                    format!("churn {} != {} diffs", r.churn, r.weight_diffs.len()),
                ));
            }
            churn_total += r.churn as u64;

            // The diff must replay pre -> post exactly, and every entry must
            // be a genuine change (minimal churn, no padding).
            checks += 1;
            let mut replayed = pre_weights.clone();
            let mut diff_ok = true;
            for &(e, old, new) in &r.weight_diffs {
                if e.index() >= replayed.len()
                    || old.to_bits() != pre_weights[e.index()]
                    || old.to_bits() == new.to_bits()
                {
                    diff_ok = false;
                    break;
                }
                replayed[e.index()] = new.to_bits();
            }
            if !diff_ok || replayed != post_weights {
                violations.push(fail(
                    step,
                    format!(
                        "weight diff does not replay the deployed change: {:?}",
                        r.weight_diffs
                    ),
                ));
            }

            if r.tier == ServeTier::Error {
                observed_errors += 1;
                checks += 1;
                if post_weights != pre_weights
                    || bits(session.evaluator().loads()) != pre_loads
                    || session.evaluator().mlu().to_bits() != pre_mlu
                {
                    violations.push(fail(
                        step,
                        format!("error reply ({:?}) must leave state untouched", r.error),
                    ));
                }
            }
            checks += 1;
            if r.mlu.to_bits() != session.evaluator().mlu().to_bits() {
                violations.push(fail(step, "response mlu != session mlu".to_string()));
            }

            // From-scratch oracle: a fresh evaluator on the session's
            // effective capacities/weights/workload/failure mask.
            let ev = session.evaluator();
            let mut b = Network::builder(net.node_count());
            for (e, u, v) in net.graph().edges() {
                b.link(u, v, ev.capacities()[e.index()]);
            }
            let scratch_net = b.build()?;
            let cur = WeightSetting::new(&scratch_net, ev.weights().to_vec())?;
            let failed: Vec<EdgeId> = ev
                .disabled()
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| EdgeId(i as u32))
                .collect();
            let fresh = IncrementalEvaluator::new_with_failures(
                &scratch_net,
                &cur,
                session.demands(),
                session.waypoints(),
                &failed,
            )?;
            checks += 1;
            if bits(ev.loads()) != bits(fresh.loads())
                || ev.phi().to_bits() != fresh.phi().to_bits()
                || ev.mlu().to_bits() != fresh.mlu().to_bits()
            {
                violations.push(fail(
                    step,
                    format!(
                        "in-place state diverged from scratch rebuild after {event:?}: \
                         mlu {} vs {}",
                        ev.mlu(),
                        fresh.mlu()
                    ),
                ));
            }

            if slo_ms > 0.0 && r.latency_ms > slo_ms {
                observed_slow += 1;
            }
        }

        // Session bookkeeping must agree with the responses.
        let st = *session.stats();
        checks += 1;
        if st.events != self.events.len() as u64 {
            violations.push(fail(
                self.events.len(),
                format!("stats.events {} != {}", st.events, self.events.len()),
            ));
        }
        checks += 1;
        if st.probe_only + st.local_reopts + st.escalations + st.errors != st.events {
            violations.push(fail(
                self.events.len(),
                format!("tier tallies do not partition the event count: {st:?}"),
            ));
        }
        checks += 1;
        if st.errors != observed_errors {
            violations.push(fail(
                self.events.len(),
                format!(
                    "stats.errors {} != {observed_errors} error replies",
                    st.errors
                ),
            ));
        }
        checks += 1;
        if st.weight_churn != churn_total {
            violations.push(fail(
                self.events.len(),
                format!("stats.weight_churn {} != {churn_total}", st.weight_churn),
            ));
        }
        checks += 1;
        if st.slo_violations != observed_slow {
            violations.push(fail(
                self.events.len(),
                format!(
                    "stats.slo_violations {} != {observed_slow} responses over {slo_ms} ms",
                    st.slo_violations
                ),
            ));
        }
        Ok((checks, violations))
    }

    /// Random walk of weight probes; every committed step must leave the
    /// incremental engine bit-identical (integral weights) or within
    /// tolerance (fractional) of a from-scratch evaluation.
    fn run_incremental_differential(
        &self,
        net: &Network,
        demands: &DemandList,
        weights: &WeightSetting,
        waypoints: &WaypointSetting,
    ) -> Result<(usize, Vec<Violation>), TeError> {
        let mut ev = IncrementalEvaluator::new(net, weights, demands, waypoints)?;
        let mut cur = weights.clone();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        let mut checks = 0usize;
        let mut violations = Vec::new();
        let m = net.edge_count() as u32;

        for step in 0..12usize {
            let e = EdgeId(rng.gen_range(0..m));
            let w = f64::from(rng.gen_range(1..=8u32));
            let probe = ev.probe(e, w)?;
            if !rng.gen::<bool>() {
                continue; // discarded probes must not perturb state
            }
            ev.commit(probe);
            cur.set(e, w);
            let fresh = Router::new(net, &cur).evaluate(demands, waypoints)?;
            let integral = cur.as_slice().iter().all(|x| x.fract() == 0.0);
            let scale = 1.0 + fresh.loads.iter().cloned().fold(0.0f64, f64::max);
            for (idx, (&got, &want)) in ev.loads().iter().zip(&fresh.loads).enumerate() {
                checks += 1;
                let ok = if integral {
                    got.to_bits() == want.to_bits()
                } else {
                    (got - want).abs() <= TOL * scale
                };
                if !ok {
                    violations.push(Violation {
                        invariant: "incremental-differential",
                        detail: format!(
                            "step {step}: edge {idx} load {got} != fresh {want} \
                             after committing w[{}] = {w}",
                            e.index()
                        ),
                    });
                }
            }
            checks += 1;
            if (ev.mlu() - fresh.mlu).abs() > TOL * (1.0 + fresh.mlu) {
                violations.push(Violation {
                    invariant: "incremental-differential",
                    detail: format!("step {step}: MLU {} != fresh {}", ev.mlu(), fresh.mlu),
                });
            }
        }
        Ok((checks, violations))
    }

    /// Robust multi-matrix differential: (a) the full [`validate_robust`]
    /// invariant suite on the given state, (b) the single-matrix reduction —
    /// `heur_ospf_robust` on a one-element set must be **bit-identical** to
    /// the classic `heur_ospf` — and (c) when the pipeline stage is on, the
    /// robust heuristic pipeline with its output state re-validated, plus on
    /// tiny instances the robust MILP oracle (optimality sandwich against
    /// the robust heuristic's worst-case MLU).
    fn run_robust(
        &self,
        net: &Network,
        demands: &DemandList,
        weights: &WeightSetting,
        waypoints: &WaypointSetting,
    ) -> Result<(usize, Vec<Violation>), TeError> {
        const MAX_WEIGHT: u32 = 4;
        let set = self.demand_set()?;
        let mut checks = 0usize;
        let mut violations = Vec::new();

        // (a) Invariants on the given state.
        let rep = validate_robust(net, &set, weights, waypoints)?;
        checks += rep.checks;
        violations.extend(rep.violations.into_iter().map(|mut v| {
            v.detail = format!("robust input: {}", v.detail);
            v
        }));

        let ospf = segrout_algos::HeurOspfConfig {
            max_weight: MAX_WEIGHT,
            restarts: 1,
            max_passes: 2,
            seed: self.seed,
            use_incremental: self.incremental,
            ..Default::default()
        };

        // (b) Single-matrix reduction is bit-identical.
        let classic = segrout_algos::heur_ospf(net, demands, &ospf);
        let single = segrout_algos::heur_ospf_robust(
            net,
            &DemandSet::single(demands.clone()),
            RobustObjective::Quantile(1.0),
            &ospf,
        );
        checks += 1;
        if classic.as_slice() != single.as_slice() {
            violations.push(Violation {
                invariant: "robust-reduction",
                detail: format!(
                    "heur_ospf_robust on a single-matrix set diverges from \
                     heur_ospf: {:?} vs {:?}",
                    single.as_slice(),
                    classic.as_slice()
                ),
            });
        }

        if !self.pipeline {
            return Ok((checks, violations));
        }

        // (c) Robust pipeline; its output state must satisfy the same
        // invariants.
        let hw = segrout_algos::heur_ospf_robust(net, &set, RobustObjective::WorstCase, &ospf);
        let wp = segrout_algos::greedy_wpo_robust(
            net,
            &set,
            &hw,
            RobustObjective::WorstCase,
            &segrout_algos::GreedyWpoConfig::default(),
        )?;
        let out = evaluate_robust(net, &hw, &set, &wp)?;
        let rep = validate_robust(net, &set, &hw, &wp)?;
        checks += rep.checks;
        violations.extend(rep.violations.into_iter().map(|mut v| {
            v.detail = format!("robust pipeline output: {}", v.detail);
            v
        }));

        let tiny =
            net.node_count() <= 5 && net.edge_count() <= 12 && (1..=3).contains(&demands.len());
        if !tiny || set.len() > 4 {
            return Ok((checks, violations));
        }
        let opts = JointMilpOptions {
            max_weight: MAX_WEIGHT,
            waypoints: 1,
            milp: MilpOptions {
                node_limit: 2000,
                time_limit: Duration::from_secs(10),
                engine: self.engine.lp_engine(),
                ..Default::default()
            },
            warm_start: Some((hw.clone(), wp.clone())),
            ..Default::default()
        };
        let milp = match joint_milp_robust(net, &set, RobustObjective::WorstCase, &opts) {
            Ok(o) => o,
            Err(TeError::SolverLimit { .. }) => return Ok((checks, violations)),
            Err(e) => return Err(e),
        };
        // Optimality sandwich on the worst-case MLU: a proven-optimal robust
        // MILP can never lose to the heuristic, and the heuristic can never
        // beat the dual bound.
        if milp.status == MilpStatus::Optimal {
            checks += 1;
            if milp.mlu > out.worst_mlu() + TOL * (1.0 + out.worst_mlu()) {
                violations.push(Violation {
                    invariant: "robust-milp-oracle",
                    detail: format!(
                        "optimal robust MILP worst-case MLU {} exceeds robust \
                         heuristic worst-case MLU {}",
                        milp.mlu,
                        out.worst_mlu()
                    ),
                });
            }
        }
        checks += 1;
        if out.worst_mlu() < milp.bound - TOL * (1.0 + milp.bound) {
            violations.push(Violation {
                invariant: "robust-milp-oracle",
                detail: format!(
                    "robust heuristic worst-case MLU {} beats the robust MILP \
                     dual bound {}",
                    out.worst_mlu(),
                    milp.bound
                ),
            });
        }
        Ok((checks, violations))
    }

    /// Runs HeurOSPF + GreedyWPO, validates the result state, and on tiny
    /// instances sandwiches the heuristic MLU between the MILP incumbent and
    /// its dual bound, cross-checking both LP engines.
    fn run_pipeline(
        &self,
        net: &Network,
        demands: &DemandList,
        vcfg: &ValidatorConfig,
    ) -> Result<(usize, Vec<Violation>), TeError> {
        const MAX_WEIGHT: u32 = 4;
        let mut checks = 0usize;
        let mut violations = Vec::new();

        let ospf = segrout_algos::HeurOspfConfig {
            max_weight: MAX_WEIGHT,
            restarts: 1,
            max_passes: 3,
            seed: self.seed,
            use_incremental: self.incremental,
            ..Default::default()
        };
        let hw = segrout_algos::heur_ospf(net, demands, &ospf);
        let wp = segrout_algos::greedy_wpo(
            net,
            demands,
            &hw,
            &segrout_algos::GreedyWpoConfig::default(),
        )?;
        let report = Router::new(net, &hw).evaluate(demands, &wp)?;

        let mut cfg = vcfg.clone();
        cfg.mcf_lower_bound = false; // already checked on the input state
        let rep = Validator::new(net, demands, &hw, &wp)
            .with_config(cfg)
            .validate()?;
        checks += rep.checks;
        violations.extend(rep.violations.into_iter().map(|mut v| {
            v.detail = format!("pipeline output: {}", v.detail);
            v
        }));

        let tiny =
            net.node_count() <= 5 && net.edge_count() <= 12 && (1..=3).contains(&demands.len());
        if !tiny {
            return Ok((checks, violations));
        }

        let milp_opts = |engine: LpEngine| JointMilpOptions {
            max_weight: MAX_WEIGHT,
            waypoints: 1,
            milp: MilpOptions {
                node_limit: 2000,
                time_limit: Duration::from_secs(10),
                engine,
                ..Default::default()
            },
            warm_start: Some((hw.clone(), wp.clone())),
            ..Default::default()
        };
        let primary = match joint_milp(net, demands, &milp_opts(self.engine.lp_engine())) {
            Ok(o) => o,
            Err(TeError::SolverLimit { .. }) => return Ok((checks, violations)),
            Err(e) => return Err(e),
        };

        // The heuristic searches a subset of the MILP's space (integer
        // weights ≤ MAX_WEIGHT, ≤ 1 waypoint), so a proven-optimal MILP can
        // never lose to it, and the dual bound holds unconditionally.
        if primary.status == MilpStatus::Optimal {
            checks += 1;
            if primary.mlu > report.mlu + TOL * (1.0 + report.mlu) {
                violations.push(Violation {
                    invariant: "milp-oracle",
                    detail: format!(
                        "optimal MILP MLU {} exceeds heuristic MLU {}",
                        primary.mlu, report.mlu
                    ),
                });
            }
        }
        checks += 1;
        if report.mlu < primary.bound - TOL * (1.0 + primary.bound) {
            violations.push(Violation {
                invariant: "milp-oracle",
                detail: format!(
                    "heuristic MLU {} beats the MILP dual bound {}",
                    report.mlu, primary.bound
                ),
            });
        }

        let other_engine = match self.engine {
            EngineChoice::Revised => LpEngine::Tableau,
            EngineChoice::Tableau => LpEngine::Revised,
        };
        let secondary = match joint_milp(net, demands, &milp_opts(other_engine)) {
            Ok(o) => o,
            Err(TeError::SolverLimit { .. }) => return Ok((checks, violations)),
            Err(e) => return Err(e),
        };
        if primary.status == MilpStatus::Optimal && secondary.status == MilpStatus::Optimal {
            checks += 1;
            if (primary.mlu - secondary.mlu).abs() > TOL * (1.0 + primary.mlu) {
                violations.push(Violation {
                    invariant: "engine-differential",
                    detail: format!(
                        "optimal MLU differs across LP engines: {} ({:?}) vs {} ({other_engine:?})",
                        primary.mlu,
                        self.engine.lp_engine(),
                        secondary.mlu
                    ),
                });
            }
        }
        Ok((checks, violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_case() -> Case {
        Case {
            nodes: 4,
            links: vec![
                (0, 1, 10.0),
                (1, 0, 10.0),
                (1, 3, 10.0),
                (3, 1, 10.0),
                (0, 2, 10.0),
                (2, 0, 10.0),
                (2, 3, 10.0),
                (3, 2, 10.0),
            ],
            demands: vec![(0, 3, 4.0), (1, 2, 1.5)],
            extra_matrices: vec![vec![2.0, 3.0], vec![5.5, 0.75]],
            events: vec![
                ServeEvent::Noop,
                ServeEvent::DemandScale {
                    index: 0,
                    factor: 2.5,
                },
                ServeEvent::LinkDown { edge: EdgeId(0) },
                // Legal garbage: out-of-range index answered with an error.
                ServeEvent::DemandScale {
                    index: 99,
                    factor: 2.0,
                },
                ServeEvent::LinkUp { edge: EdgeId(0) },
                ServeEvent::Capacity {
                    edge: EdgeId(2),
                    capacity: 4.0,
                },
                ServeEvent::DemandMatrix {
                    demands: vec![(NodeId(0), NodeId(3), 3.0), (NodeId(2), NodeId(1), 1.0)],
                },
            ],
            weights: vec![1.0; 8],
            waypoints: vec![vec![2], vec![]],
            threads: 2,
            incremental: true,
            engine: EngineChoice::Revised,
            pipeline: true,
            seed: 7,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let case = diamond_case();
        let text = case.to_text();
        let back = Case::from_text(&text).unwrap();
        assert_eq!(case, back);
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn malformed_text_is_rejected_with_line_numbers() {
        for (text, needle) in [
            ("frobnicate 1", "unknown directive"),
            ("nodes", "node count"),
            ("engine simplex", "revised"),
            ("link 0 9 1\nnodes 2", "out of range"),
            ("nodes 2\nlink 0 1 5\nweight 3 1", "out of range"),
            ("matrix", "at least one size"),
            ("matrix 1 bad", "matrix needs sizes"),
            (
                "nodes 2\nlink 0 1 5\nlink 1 0 5\ndemand 0 1 1\nmatrix 1 2\nweight 0 1\nweight 1 1",
                "2 sizes for 1 demands",
            ),
        ] {
            let err = Case::from_text(text).unwrap_err().to_string();
            assert!(
                err.contains(needle),
                "'{text}' -> '{err}' missing '{needle}'"
            );
        }
    }

    #[test]
    fn diamond_case_passes_end_to_end() {
        let outcome = diamond_case().run(&ValidatorConfig::default());
        match outcome {
            CaseOutcome::Pass { checks } => assert!(checks > 50, "only {checks} checks"),
            other => panic!("expected pass, got {other}"),
        }
    }

    #[test]
    fn bad_extra_matrix_size_is_benign() {
        let mut case = diamond_case();
        case.extra_matrices[0][1] = -3.0;
        let outcome = case.run(&ValidatorConfig::default());
        assert!(matches!(outcome, CaseOutcome::Error(_)), "got {outcome}");
        assert!(!outcome.is_failure());
    }

    #[test]
    fn unroutable_case_is_benign() {
        let case = Case {
            nodes: 3,
            links: vec![(0, 1, 1.0), (1, 2, 1.0)],
            demands: vec![(2, 0, 1.0)],
            extra_matrices: Vec::new(),
            events: Vec::new(),
            weights: vec![1.0, 1.0],
            waypoints: vec![vec![]],
            threads: 1,
            incremental: true,
            engine: EngineChoice::Revised,
            pipeline: false,
            seed: 1,
        };
        assert!(matches!(
            case.run(&ValidatorConfig::default()),
            CaseOutcome::Error(_)
        ));
        assert!(!case.run(&ValidatorConfig::default()).is_failure());
    }
}
