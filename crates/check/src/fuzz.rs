//! Seeded differential fuzzer with case shrinking.
//!
//! [`fuzz_campaign`] derives one [`Case`] per index from the campaign seed,
//! runs it under a panic shield, and — when a case fails — **shrinks** it to
//! a minimal reproducer by greedily dropping serve events, demands, and
//! links, rounding weights, clearing waypoints and simplifying execution knobs,
//! re-running after every mutation and keeping only mutations that preserve
//! the failure. Shrunk reproducers are written to the corpus directory in
//! the [`Case`] text format so `tests/corpus_replay.rs` pins them forever.

use crate::case::{Case, CaseOutcome, EngineChoice};
use crate::validator::ValidatorConfig;
use segrout_algos::ServeEvent;
use segrout_core::rng::StdRng;
use segrout_graph::{EdgeId, NodeId};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Campaign seed; case `i` is derived deterministically from it.
    pub seed: u64,
    /// Number of cases to generate and run.
    pub cases: usize,
    /// Shrink failing cases to minimal reproducers.
    pub shrink: bool,
    /// Where to write shrunk reproducers (`None` keeps them in memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Validator configuration applied to every case.
    pub validator: ValidatorConfig,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            cases: 100,
            shrink: true,
            corpus_dir: None,
            validator: ValidatorConfig::default(),
        }
    }
}

/// One failing case, after shrinking.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Index of the generated case within the campaign.
    pub index: usize,
    /// The (shrunk) failing case.
    pub case: Case,
    /// The failure the shrunk case still reproduces.
    pub outcome: CaseOutcome,
    /// Number of accepted shrinking mutations.
    pub shrink_steps: usize,
    /// Where the reproducer was written, when a corpus directory was given.
    pub corpus_path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Total individual checks across all passing cases.
    pub checks: usize,
    /// Cases that were benignly unroutable/unsolvable (not failures).
    pub benign_errors: usize,
    /// Every failure found, shrunk when shrinking is enabled.
    pub failures: Vec<FuzzFailure>,
}

/// Runs a case under a panic shield, mapping unwinds to
/// [`CaseOutcome::Panic`].
fn run_guarded(case: &Case, vcfg: &ValidatorConfig) -> CaseOutcome {
    match panic::catch_unwind(AssertUnwindSafe(|| case.run(vcfg))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            CaseOutcome::Panic(msg)
        }
    }
}

/// Derives case `index` of the campaign from the campaign seed. Public so a
/// reported failure index can be regenerated without re-running the whole
/// campaign.
pub fn generate_case(campaign_seed: u64, index: usize) -> Case {
    let mut rng = StdRng::seed_from_u64(
        campaign_seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1),
    );
    let net = random_topology(&mut rng);
    let g = net.graph();
    let nodes = g.node_count();
    let links: Vec<(u32, u32, f64)> = g
        .edges()
        .map(|(e, u, v)| (u.0, v.0, net.capacities()[e.index()]))
        .collect();

    let mean_cap = links.iter().map(|&(_, _, c)| c).sum::<f64>() / links.len() as f64;
    let n_demands = rng.gen_range(1..=6usize);
    let mut demands = Vec::with_capacity(n_demands);
    for _ in 0..n_demands {
        let s = rng.gen_range(0..nodes as u32);
        let mut t = rng.gen_range(0..nodes as u32);
        while t == s {
            t = rng.gen_range(0..nodes as u32);
        }
        let size = mean_cap * (0.05 + 0.6 * rng.gen::<f64>());
        demands.push((s, t, size));
    }

    // Weight modes: unit (maximal ECMP ties), random small integers, and
    // fractionally perturbed integers (tie-breaking stress).
    let weights: Vec<f64> = match rng.gen_range(0..4u32) {
        0 => vec![1.0; links.len()],
        1 | 2 => (0..links.len())
            .map(|_| f64::from(rng.gen_range(1..=8u32)))
            .collect(),
        _ => (0..links.len())
            .map(|_| f64::from(rng.gen_range(1..=6u32)) + 0.25 * rng.gen::<f64>())
            .collect(),
    };

    // Robust multi-matrix dimension: some cases carry 1–5 extra traffic
    // matrices over the same pairs, mirroring the two set generators of
    // `segrout-traffic` — diurnal (per-node sinusoidal activity with random
    // phases, so matrices differ in *shape*) and gravity perturbation
    // (independent multiplicative jitter per demand).
    let n_extra = match rng.gen_range(0..100u32) {
        0..=54 => 0,
        55..=84 => rng.gen_range(1..=2usize),
        _ => rng.gen_range(3..=5usize),
    };
    let mut extra_matrices: Vec<Vec<f64>> = Vec::with_capacity(n_extra);
    if n_extra > 0 {
        let diurnal = rng.gen::<bool>();
        let phases: Vec<f64> = (0..nodes).map(|_| rng.gen::<f64>()).collect();
        for j in 0..n_extra {
            let mut row = Vec::with_capacity(demands.len());
            for &(s, t, size) in &demands {
                let factor = if diurnal {
                    let act = |v: u32| {
                        let x = (j + 1) as f64 / (n_extra + 1) as f64 + phases[v as usize];
                        1.0 + 0.6 * (2.0 * std::f64::consts::PI * x).sin()
                    };
                    act(s) * act(t)
                } else {
                    0.4 + 1.2 * rng.gen::<f64>()
                };
                row.push(size * factor);
            }
            extra_matrices.push(row);
        }
    }

    let waypoints: Vec<Vec<u32>> = demands
        .iter()
        .map(|&(s, t, _)| {
            let k = match rng.gen_range(0..100u32) {
                0..=7 => 2,
                8..=34 => 1,
                _ => 0,
            };
            let mut row = Vec::with_capacity(k);
            for _ in 0..k {
                let w = rng.gen_range(0..nodes as u32);
                if w != s && w != t && !row.contains(&w) {
                    row.push(w);
                }
            }
            row
        })
        .collect();

    // Serve-event dimension: some cases carry a random event stream for the
    // online-reoptimization differential — demand churn, link flaps (downed
    // links preferentially brought back, but *disconnecting* downs and
    // out-of-range indices stay in: the daemon must answer them with error
    // replies, not die), capacity changes, matrix swaps and keep-alives.
    let n_events = match rng.gen_range(0..100u32) {
        0..=44 => 0,
        45..=79 => rng.gen_range(1..=4usize),
        _ => rng.gen_range(5..=10usize),
    };
    let mut down: Vec<u32> = Vec::new();
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(match rng.gen_range(0..10u32) {
            0..=3 => ServeEvent::DemandScale {
                index: if rng.gen_range(0..8u32) == 0 {
                    demands.len() + rng.gen_range(0..3u64) as usize
                } else {
                    rng.gen_range(0..demands.len() as u64) as usize
                },
                factor: 0.25 + 1.5 * rng.gen::<f64>(),
            },
            4 | 5 => {
                let e = rng.gen_range(0..links.len() as u64) as u32;
                if !down.contains(&e) {
                    down.push(e);
                }
                ServeEvent::LinkDown { edge: EdgeId(e) }
            }
            6 => match down.pop() {
                Some(e) => ServeEvent::LinkUp { edge: EdgeId(e) },
                None => ServeEvent::Noop,
            },
            7 => ServeEvent::Capacity {
                edge: EdgeId(rng.gen_range(0..links.len() as u64) as u32),
                capacity: mean_cap * (0.25 + 1.5 * rng.gen::<f64>()),
            },
            8 => ServeEvent::DemandMatrix {
                demands: demands
                    .iter()
                    .map(|&(s, t, size)| (NodeId(s), NodeId(t), size * (0.5 + rng.gen::<f64>())))
                    .collect(),
            },
            _ => ServeEvent::Noop,
        });
    }

    Case {
        nodes,
        links,
        demands,
        extra_matrices,
        events,
        weights,
        waypoints,
        threads: if rng.gen::<bool>() { 4 } else { 1 },
        incremental: rng.gen::<bool>(),
        engine: if rng.gen::<bool>() {
            EngineChoice::Revised
        } else {
            EngineChoice::Tableau
        },
        pipeline: nodes <= 10,
        seed: rng.next_u64(),
    }
}

/// Draws one of the synthetic topology families (occasionally the embedded
/// Abilene backbone, validation-only scale).
fn random_topology(rng: &mut StdRng) -> segrout_core::Network {
    match rng.gen_range(0..12u32) {
        0 | 1 => segrout_topo::ring(rng.gen_range(3..=7usize), 100.0),
        2 | 3 => segrout_topo::grid(rng.gen_range(2..=3usize), rng.gen_range(2..=3usize), 100.0),
        4..=6 => {
            let n = rng.gen_range(4..=9usize);
            let links = (n + rng.gen_range(0..=n)).min(n * (n - 1) / 2);
            segrout_topo::random_connected(n, links, rng.next_u64())
        }
        7 | 8 => segrout_topo::waxman(rng.gen_range(5..=10usize), 0.6, 0.4, rng.next_u64()),
        9 | 10 => {
            let n = rng.gen_range(5..=10usize);
            let links = (n + rng.gen_range(1..=n)).min(n * (n - 1) / 2);
            segrout_topo::geo_backbone(n, links, rng.next_u64())
        }
        _ => segrout_topo::abilene(),
    }
}

/// One greedy shrinking pass list: every candidate mutation of `case`, in
/// preference order (structural deletions first, simplifications last).
fn mutations(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    // Event drops first: a failing event walk usually shrinks to the one
    // event that trips the invariant. No index re-syncing is needed —
    // out-of-range indices are legal inputs that draw error replies.
    for j in 0..case.events.len() {
        let mut c = case.clone();
        c.events.remove(j);
        out.push(c);
    }
    for j in 0..case.extra_matrices.len() {
        let mut c = case.clone();
        c.extra_matrices.remove(j);
        out.push(c);
    }
    for i in 0..case.demands.len() {
        let mut c = case.clone();
        c.demands.remove(i);
        c.waypoints.remove(i);
        for row in &mut c.extra_matrices {
            row.remove(i);
        }
        out.push(c);
    }
    for e in 0..case.links.len() {
        let mut c = case.clone();
        c.links.remove(e);
        c.weights.remove(e);
        out.push(c);
    }
    for i in 0..case.waypoints.len() {
        if !case.waypoints[i].is_empty() {
            let mut c = case.clone();
            c.waypoints[i].clear();
            out.push(c);
        }
    }
    for e in 0..case.weights.len() {
        let w = case.weights[e];
        if w.fract() != 0.0 {
            let mut c = case.clone();
            c.weights[e] = w.round().max(1.0);
            out.push(c);
        } else if w > 1.0 {
            let mut c = case.clone();
            c.weights[e] = 1.0;
            out.push(c);
        }
    }
    if case.threads != 1 {
        let mut c = case.clone();
        c.threads = 1;
        out.push(c);
    }
    if case.pipeline {
        let mut c = case.clone();
        c.pipeline = false;
        out.push(c);
    }
    out
}

/// Greedily shrinks a failing case, re-running after every mutation and
/// keeping only mutations that still fail. Returns the shrunk case, its
/// outcome, and the number of accepted mutations.
fn shrink_case(
    case: &Case,
    outcome: CaseOutcome,
    vcfg: &ValidatorConfig,
    step_counter: &segrout_obs::Counter,
) -> (Case, CaseOutcome, usize) {
    const MAX_RUNS: usize = 400;
    let mut best = case.clone();
    let mut best_outcome = outcome;
    let mut accepted = 0usize;
    let mut runs = 0usize;
    loop {
        let mut improved = false;
        for cand in mutations(&best) {
            if runs >= MAX_RUNS {
                return (best, best_outcome, accepted);
            }
            runs += 1;
            let o = run_guarded(&cand, vcfg);
            if o.is_failure() {
                best = cand;
                best_outcome = o;
                accepted += 1;
                step_counter.inc();
                improved = true;
                break; // restart the pass on the smaller case
            }
        }
        if !improved {
            return (best, best_outcome, accepted);
        }
    }
}

/// Runs a full campaign: generate, execute, shrink, persist.
///
/// Panics raised by cases are contained by a panic shield; the process-wide
/// panic hook is silenced for the duration of the campaign so expected
/// unwinds don't spam stderr, and restored afterwards.
pub fn fuzz_campaign(cfg: &FuzzConfig) -> FuzzReport {
    let _span = segrout_obs::span("check.fuzz");
    let cases_counter = segrout_obs::counter("check.cases");
    let violations_counter = segrout_obs::counter("check.violations");
    let shrink_counter = segrout_obs::counter("check.shrink_steps");

    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut report = FuzzReport::default();
    for index in 0..cfg.cases {
        let case = generate_case(cfg.seed, index);
        let outcome = run_guarded(&case, &cfg.validator);
        report.cases += 1;
        cases_counter.inc();
        match outcome {
            CaseOutcome::Pass { checks } => report.checks += checks,
            CaseOutcome::Error(_) => report.benign_errors += 1,
            failing => {
                violations_counter.inc();
                let (case, outcome, shrink_steps) = if cfg.shrink {
                    shrink_case(&case, failing, &cfg.validator, &shrink_counter)
                } else {
                    (case, failing, 0)
                };
                let corpus_path = cfg.corpus_dir.as_ref().and_then(|dir| {
                    let path = dir.join(format!("fuzz-{}-{index}.case", cfg.seed));
                    std::fs::create_dir_all(dir).ok()?;
                    std::fs::write(&path, case.to_text()).ok()?;
                    Some(path)
                });
                report.failures.push(FuzzFailure {
                    index,
                    case,
                    outcome,
                    shrink_steps,
                    corpus_path,
                });
            }
        }
    }

    panic::set_hook(prev_hook);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed_and_index() {
        let a = generate_case(42, 3);
        let b = generate_case(42, 3);
        let c = generate_case(43, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_cases_are_well_formed() {
        // Wide sweep: generation itself must never panic (topology
        // preconditions!) and every case must round-trip exactly.
        for seed in [7u64, 42, 1234] {
            for index in 0..300 {
                let case = generate_case(seed, index);
                assert!(
                    case.network().is_ok(),
                    "seed {seed} case {index} has a bad topology"
                );
                assert_eq!(case.weights.len(), case.links.len());
                assert_eq!(case.waypoints.len(), case.demands.len());
                for row in &case.extra_matrices {
                    assert_eq!(row.len(), case.demands.len());
                    assert!(row.iter().all(|&s| s.is_finite() && s > 0.0));
                }
                let text = case.to_text();
                assert_eq!(
                    Case::from_text(&text).unwrap(),
                    case,
                    "seed {seed} case {index}"
                );
            }
        }
    }

    #[test]
    fn campaign_covers_multi_matrix_cases() {
        // The robust dimension must actually be exercised: a decent fraction
        // of generated cases carry 2–6 matrices.
        let multi = (0..200)
            .filter(|&i| !generate_case(42, i).extra_matrices.is_empty())
            .count();
        assert!((40..180).contains(&multi), "{multi}/200 multi-matrix cases");
        let sizes: Vec<usize> = (0..200)
            .map(|i| generate_case(42, i).extra_matrices.len() + 1)
            .collect();
        assert!(sizes.iter().any(|&k| k >= 4), "no large sets generated");
        assert!(sizes.iter().all(|&k| k <= 6), "set larger than 6 matrices");
    }

    #[test]
    fn campaign_covers_event_streams() {
        // The serving dimension must actually be exercised: a decent
        // fraction of generated cases carry events, including flaps and
        // out-of-range (error-reply) scalings.
        let cases: Vec<Case> = (0..200).map(|i| generate_case(42, i)).collect();
        let with_events = cases.iter().filter(|c| !c.events.is_empty()).count();
        assert!(
            (50..180).contains(&with_events),
            "{with_events}/200 cases with events"
        );
        assert!(cases
            .iter()
            .flat_map(|c| &c.events)
            .any(|e| matches!(e, ServeEvent::LinkDown { .. })));
        assert!(cases.iter().any(|c| c
            .events
            .iter()
            .any(|e| matches!(e, ServeEvent::DemandScale { index, .. }
                if *index >= c.demands.len()))));
    }

    #[test]
    fn small_campaign_runs_clean() {
        let report = fuzz_campaign(&FuzzConfig {
            seed: 1,
            cases: 6,
            shrink: true,
            corpus_dir: None,
            validator: ValidatorConfig {
                // Keep the unit-test campaign cheap; the CI smoke leg and
                // the release campaign run the full suite.
                mcf_lower_bound: false,
                compare_thread_counts: false,
                ..ValidatorConfig::default()
            },
        });
        assert_eq!(report.cases, 6);
        assert!(
            report.failures.is_empty(),
            "unexpected failures: {:?}",
            report.failures
        );
        assert!(report.checks > 0);
    }

    #[test]
    fn mutations_stay_well_formed_and_strictly_simpler() {
        let case = generate_case(11, 0);
        for m in mutations(&case) {
            assert_eq!(m.weights.len(), m.links.len());
            assert_eq!(m.waypoints.len(), m.demands.len());
            assert_ne!(m, case, "a mutation must change the case");
        }
        // Deletion mutations exist for every demand and every link.
        assert!(mutations(&case).len() >= case.demands.len() + case.links.len());
    }
}
