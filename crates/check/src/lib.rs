//! # segrout-check
//!
//! The correctness backstop of the `segrout` workspace: a pipeline-wide
//! **invariant validator** and a seeded **differential fuzzer** with case
//! shrinking and a replayable regression corpus.
//!
//! The optimizer stack has three fast paths — the parallel ECMP evaluator,
//! the incremental evaluation engine, and the warm-started revised simplex —
//! whose correctness rests on subtle tie-breaking and floating-point
//! contracts. This crate hunts interaction bugs between them automatically:
//!
//! * [`Validator`] checks any `(Network, demands, weights, waypoints)` state
//!   against the full routing-invariant suite: per-destination SP-DAG
//!   acyclicity and shortest-path optimality, ECMP even-split conservation
//!   at every node, waypoint-segment flow stitching, link-load
//!   non-negativity, MLU/Φ consistency between `Router`,
//!   `IncrementalEvaluator` and the parallel path, and heuristic-MLU ≥ MCF
//!   lower bound.
//! * [`Case`] is a self-contained fuzz scenario in a line-oriented text
//!   format (the topology/demand section plus an embedded
//!   `segrout-config v1` block), replayable from `tests/corpus/*.case`.
//! * [`fuzz_campaign`] generates seeded random scenarios (synthetic and
//!   embedded topologies × demand matrices × weight/waypoint perturbations
//!   × thread counts × incremental on/off × LP engines × multi-matrix
//!   demand sets), runs the full pipeline, validates every invariant,
//!   cross-checks small instances against the MILP oracle, and **shrinks**
//!   failures (drop demands, contract edges, round weights, drop matrices)
//!   to minimal reproducers.
//! * [`validate_robust`] checks a multi-matrix `(Network, DemandSet,
//!   weights, waypoints)` state: per-matrix MLU/Φ recomputation,
//!   incremental-engine agreement per matrix, worst-case/quantile
//!   aggregation identities, and monotonicity of the worst-case envelope.
//! * [`validate_sweep`] checks the failure-sweep engine: every swept
//!   `(failure pattern, demand scaling)` scenario is reproduced by a
//!   from-scratch evaluation of the edge-*deleted* topology (the ground
//!   truth the edge-disable probe claims to match bit-exactly), disconnect
//!   classification agrees with true reachability, and the worst-case
//!   certificate names a bottleneck link that actually attains the MLU.
//!
//! The cheap in-tree complement — `debug_assertions`-gated hooks at the
//! optimizer commit points — lives in `segrout_core::hooks` so the algorithm
//! crates can call it without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod fuzz;
pub mod validator;

pub use case::{Case, CaseOutcome, EngineChoice};
pub use fuzz::{fuzz_campaign, FuzzConfig, FuzzFailure, FuzzReport};
pub use validator::{
    validate_robust, validate_sweep, ValidationReport, Validator, ValidatorConfig, Violation,
};
