//! The pipeline-wide invariant validator (see crate docs).

use segrout_core::{
    evaluate_robust, fortz_phi, max_link_utilization, sweep_failures, Demand, DemandList,
    DemandSet, FailureSet, IncrementalEvaluator, Network, NodeId, RobustObjective, Router,
    ScenarioOutcome, TeError, WaypointSetting, WeightSetting,
};
use segrout_graph::{approx_eq, SpDag, INFINITY};
use std::collections::BTreeMap;
use std::fmt;

/// One failed invariant.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable invariant key (`"dag-acyclic"`, `"even-split"`, ...).
    pub invariant: &'static str,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Result of one [`Validator::validate`] run.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Number of individual invariant checks performed.
    pub checks: usize,
    /// Every failed invariant, in check order.
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// `true` when no invariant failed.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn check(&mut self, ok: bool, invariant: &'static str, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(Violation {
                invariant,
                detail: detail(),
            });
        }
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} checks, {} violations",
            self.checks,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Knobs of the validator — everything defaults to the full suite.
#[derive(Clone, Debug)]
pub struct ValidatorConfig {
    /// Cross-check the state against the incremental evaluation engine.
    pub compare_incremental: bool,
    /// Re-evaluate at thread counts 1 and 4 and require bit-identical loads.
    pub compare_thread_counts: bool,
    /// Check heuristic MLU against the MCF fluid lower bound (runs the
    /// FPTAS — the most expensive check).
    pub mcf_lower_bound: bool,
    /// FPTAS accuracy for the lower-bound check.
    pub mcf_epsilon: f64,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        Self {
            compare_incremental: true,
            compare_thread_counts: true,
            mcf_lower_bound: true,
            mcf_epsilon: 0.1,
        }
    }
}

/// Validates one `(Network, demands, weights, waypoints)` state against the
/// full routing-invariant suite.
pub struct Validator<'a> {
    net: &'a Network,
    demands: &'a DemandList,
    weights: &'a WeightSetting,
    waypoints: &'a WaypointSetting,
    cfg: ValidatorConfig,
}

/// Relative tolerance for comparing independently recomputed load vectors.
/// ECMP propagation accumulates sums in an implementation-defined order, so
/// a scaled tolerance is required; genuine logic errors produce divergences
/// many orders of magnitude above it.
const LOAD_TOL: f64 = 1e-7;

impl<'a> Validator<'a> {
    /// Binds a validator to one configuration state (full default suite).
    pub fn new(
        net: &'a Network,
        demands: &'a DemandList,
        weights: &'a WeightSetting,
        waypoints: &'a WaypointSetting,
    ) -> Self {
        Self {
            net,
            demands,
            weights,
            waypoints,
            cfg: ValidatorConfig::default(),
        }
    }

    /// Replaces the validator configuration.
    #[must_use]
    pub fn with_config(mut self, cfg: ValidatorConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Runs every enabled invariant check.
    ///
    /// # Errors
    /// Returns the underlying [`TeError`] when the state cannot be evaluated
    /// at all (e.g. a disconnected segment) — that is a *property of the
    /// input*, not an invariant violation.
    pub fn validate(&self) -> Result<ValidationReport, TeError> {
        let mut rep = ValidationReport::default();
        let router = Router::new(self.net, self.weights);
        let report = router.evaluate(self.demands, self.waypoints)?;

        let segments = self.check_stitching(&mut rep);
        self.check_dags(&router, &segments, &mut rep);
        self.check_even_split(&router, &segments, &report.loads, &mut rep);
        self.check_conservation(&segments, &report.loads, &mut rep);
        self.check_loads(&report.loads, report.mlu, &mut rep);
        if self.cfg.compare_incremental {
            self.check_incremental(&report.loads, report.mlu, &mut rep)?;
        }
        if self.cfg.compare_thread_counts {
            self.check_thread_counts(&report.loads, &mut rep)?;
        }
        if self.cfg.mcf_lower_bound && !self.demands.is_empty() {
            self.check_mcf_bound(report.mlu, &mut rep)?;
        }
        Ok(rep)
    }

    /// Runs [`Validator::validate`] and panics with the full report on any
    /// violation.
    ///
    /// # Panics
    /// Panics when the state violates an invariant or cannot be evaluated.
    pub fn assert_valid(&self) {
        let rep = self.validate().expect("state must be evaluable");
        assert!(rep.is_ok(), "invariant violations:\n{rep}");
    }

    /// Waypoint-segment stitching: every demand's segment chain must start
    /// at its source, end at its destination, be consecutive, and carry the
    /// full demand size on every hop. Returns the flattened segment list.
    fn check_stitching(&self, rep: &mut ValidationReport) -> Vec<(NodeId, NodeId, f64)> {
        let mut segments = Vec::new();
        for i in 0..self.demands.len() {
            let d = self.demands[i];
            let segs = self.waypoints.segments_of(i, &d);
            rep.check(!segs.is_empty() || d.src == d.dst, "stitching", || {
                format!(
                    "demand {i}: empty segment chain for {:?}->{:?}",
                    d.src, d.dst
                )
            });
            if segs.is_empty() {
                continue;
            }
            rep.check(segs[0].0 == d.src, "stitching", || {
                format!(
                    "demand {i}: chain starts at {:?}, not {:?}",
                    segs[0].0, d.src
                )
            });
            rep.check(segs[segs.len() - 1].1 == d.dst, "stitching", || {
                format!(
                    "demand {i}: chain ends at {:?}, not {:?}",
                    segs[segs.len() - 1].1,
                    d.dst
                )
            });
            for w in segs.windows(2) {
                rep.check(w[0].1 == w[1].0, "stitching", || {
                    format!(
                        "demand {i}: segment chain breaks at {:?} -> {:?}",
                        w[0].1, w[1].0
                    )
                });
            }
            for &(s, t, amount) in &segs {
                rep.check(s != t, "stitching", || {
                    format!("demand {i}: degenerate segment at {s:?}")
                });
                rep.check(approx_eq(amount, d.size), "stitching", || {
                    format!(
                        "demand {i}: segment {s:?}->{t:?} carries {amount}, demand size {}",
                        d.size
                    )
                });
            }
            segments.extend(segs);
        }
        segments
    }

    /// SP-DAG structure for every destination the routing uses: distances
    /// are Bellman-optimal, the DAG edge set is exactly the tight edges, the
    /// adjacency mirrors it, and the subgraph is acyclic.
    fn check_dags(
        &self,
        router: &Router<'_>,
        segments: &[(NodeId, NodeId, f64)],
        rep: &mut ValidationReport,
    ) {
        let g = self.net.graph();
        let w = self.weights.as_slice();
        let mut dests: Vec<NodeId> = segments.iter().map(|&(_, t, _)| t).collect();
        dests.sort_unstable();
        dests.dedup();

        for &t in &dests {
            let dag = router.dag(t);
            rep.check(dag.dist[t.index()] == 0.0, "dag-optimal", || {
                format!("dest {t:?}: dist[t] = {}", dag.dist[t.index()])
            });
            for (e, u, v) in g.edges() {
                let du = dag.dist[u.index()];
                let dv = dag.dist[v.index()];
                let via = w[e.index()] + dv;
                // Bellman optimality: no edge offers a shorter route to t.
                if dv < INFINITY {
                    rep.check(du <= via || approx_eq(du, via), "dag-optimal", || {
                        format!(
                            "dest {t:?}: edge {e:?} ({u:?}->{v:?}) relaxes dist \
                             {du} > {} + {dv}",
                            w[e.index()]
                        )
                    });
                }
                // The DAG edge set is exactly the tight edges.
                let tight = du < INFINITY && dv < INFINITY && approx_eq(du, via);
                rep.check(dag.edge_on_dag[e.index()] == tight, "dag-tight", || {
                    format!(
                        "dest {t:?}: edge {e:?} on_dag={} but tightness={tight} \
                         (dist {du} vs {} + {dv})",
                        dag.edge_on_dag[e.index()],
                        w[e.index()]
                    )
                });
                // Adjacency mirrors the membership flags.
                rep.check(
                    dag.dag_out(u).contains(&e) == dag.edge_on_dag[e.index()],
                    "dag-adjacency",
                    || format!("dest {t:?}: edge {e:?} adjacency/membership mismatch"),
                );
            }
            rep.check(dag_is_acyclic(self.net, &dag), "dag-acyclic", || {
                format!("dest {t:?}: shortest-path DAG contains a cycle")
            });
        }
    }

    /// ECMP even-split conservation: re-derives the load vector with an
    /// independent per-destination propagation (even splits over the DAG
    /// out-edges, own topological order) and compares to the engine's loads.
    fn check_even_split(
        &self,
        router: &Router<'_>,
        segments: &[(NodeId, NodeId, f64)],
        loads: &[f64],
        rep: &mut ValidationReport,
    ) {
        let g = self.net.graph();
        let n = g.node_count();
        let mut by_dest: BTreeMap<NodeId, Vec<(NodeId, f64)>> = BTreeMap::new();
        for &(s, t, amount) in segments {
            if s != t && amount > 0.0 {
                by_dest.entry(t).or_default().push((s, amount));
            }
        }

        let mut ref_loads = vec![0.0f64; g.edge_count()];
        for (&t, injections) in &by_dest {
            let dag = router.dag(t);
            let order = match kahn_order(self.net, &dag) {
                Some(o) => o,
                None => return, // cycle already reported by check_dags
            };
            let mut node_flow = vec![0.0f64; n];
            for &(s, amount) in injections {
                node_flow[s.index()] += amount;
            }
            for &v in &order {
                if v == t {
                    continue;
                }
                let outs = dag.dag_out(v);
                let flow = node_flow[v.index()];
                if flow == 0.0 || outs.is_empty() {
                    continue;
                }
                let share = flow / outs.len() as f64;
                for &e in outs {
                    ref_loads[e.index()] += share;
                    node_flow[g.dst(e).index()] += share;
                }
            }
        }

        let scale = 1.0 + loads.iter().cloned().fold(0.0f64, f64::max);
        for (e, (&got, &want)) in loads.iter().zip(&ref_loads).enumerate() {
            rep.check((got - want).abs() <= LOAD_TOL * scale, "even-split", || {
                format!("edge {e}: engine load {got} vs even-split reference {want}")
            });
        }
    }

    /// Aggregate flow conservation on the reported loads: at every node,
    /// link inflow plus injected traffic equals link outflow plus delivered
    /// traffic (summed over all segments).
    fn check_conservation(
        &self,
        segments: &[(NodeId, NodeId, f64)],
        loads: &[f64],
        rep: &mut ValidationReport,
    ) {
        let g = self.net.graph();
        let n = g.node_count();
        let mut injected = vec![0.0f64; n];
        let mut delivered = vec![0.0f64; n];
        for &(s, t, amount) in segments {
            if s != t {
                injected[s.index()] += amount;
                delivered[t.index()] += amount;
            }
        }
        let scale = 1.0 + loads.iter().cloned().fold(0.0f64, f64::max);
        for v in g.nodes() {
            let inflow: f64 = g.in_edges(v).iter().map(|e| loads[e.index()]).sum();
            let outflow: f64 = g.out_edges(v).iter().map(|e| loads[e.index()]).sum();
            let balance = inflow + injected[v.index()] - outflow - delivered[v.index()];
            rep.check(balance.abs() <= LOAD_TOL * scale, "conservation", || {
                format!(
                    "node {v:?}: inflow {inflow} + injected {} != outflow {outflow} \
                     + delivered {} (imbalance {balance})",
                    injected[v.index()],
                    delivered[v.index()]
                )
            });
        }
    }

    /// Link-load sanity: finite, non-negative, and the reported MLU is the
    /// exact maximum utilization of the reported loads.
    fn check_loads(&self, loads: &[f64], mlu: f64, rep: &mut ValidationReport) {
        for (e, &l) in loads.iter().enumerate() {
            rep.check(l.is_finite() && l >= 0.0, "load-nonnegative", || {
                format!("edge {e}: load {l}")
            });
        }
        let recomputed = max_link_utilization(loads, self.net.capacities());
        rep.check(
            mlu.to_bits() == recomputed.to_bits(),
            "mlu-consistent",
            || format!("reported MLU {mlu} != max utilization of reported loads {recomputed}"),
        );
    }

    /// Cross-engine consistency: the incremental evaluation engine must
    /// reproduce the router's loads (bit-identical under tie-exact integral
    /// weights), Φ, and MLU.
    fn check_incremental(
        &self,
        loads: &[f64],
        mlu: f64,
        rep: &mut ValidationReport,
    ) -> Result<(), TeError> {
        let ev = IncrementalEvaluator::new(self.net, self.weights, self.demands, self.waypoints)?;
        let integral = self.weights.as_slice().iter().all(|w| w.fract() == 0.0);
        let scale = 1.0 + loads.iter().cloned().fold(0.0f64, f64::max);
        for (e, (&got, &want)) in ev.loads().iter().zip(loads).enumerate() {
            let ok = if integral {
                got.to_bits() == want.to_bits()
            } else {
                (got - want).abs() <= LOAD_TOL * scale
            };
            rep.check(ok, "incremental-loads", || {
                format!("edge {e}: incremental load {got} vs router load {want} (integral = {integral})")
            });
        }
        let ok_mlu = if integral {
            ev.mlu().to_bits() == mlu.to_bits()
        } else {
            (ev.mlu() - mlu).abs() <= LOAD_TOL * (1.0 + mlu)
        };
        rep.check(ok_mlu, "incremental-mlu", || {
            format!("incremental MLU {} vs router MLU {mlu}", ev.mlu())
        });
        let phi = fortz_phi(loads, self.net.capacities());
        rep.check(
            (ev.phi() - phi).abs() <= LOAD_TOL * (1.0 + phi),
            "incremental-phi",
            || {
                format!(
                    "incremental Φ {} vs fortz_phi of router loads {phi}",
                    ev.phi()
                )
            },
        );
        Ok(())
    }

    /// Parallel-path consistency: evaluating at 1 and 4 worker threads must
    /// produce bit-identical loads (the `segrout-par` determinism contract).
    fn check_thread_counts(
        &self,
        loads: &[f64],
        rep: &mut ValidationReport,
    ) -> Result<(), TeError> {
        let prev = segrout_par::threads();
        let mut result = Ok(());
        let mut per_thread: Vec<Vec<f64>> = Vec::new();
        for t in [1usize, 4] {
            segrout_par::set_threads(t);
            match Router::new(self.net, self.weights).evaluate(self.demands, self.waypoints) {
                Ok(r) => per_thread.push(r.loads),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        segrout_par::set_threads(prev);
        result?;
        for (t, other) in [1usize, 4].iter().zip(&per_thread) {
            for (e, (&got, &want)) in other.iter().zip(loads).enumerate() {
                rep.check(
                    got.to_bits() == want.to_bits(),
                    "parallel-determinism",
                    || {
                        format!(
                            "edge {e}: load at {t} threads {got} != load at ambient threads {want}"
                        )
                    },
                );
            }
        }
        Ok(())
    }

    /// Fluid lower bound: any ECMP routing's MLU is at least the optimal
    /// multi-commodity-flow MLU; the FPTAS result certifies `(1-ε)² ·
    /// opt_mlu` as a true lower bound on the fluid optimum.
    fn check_mcf_bound(&self, mlu: f64, rep: &mut ValidationReport) -> Result<(), TeError> {
        let eps = self.cfg.mcf_epsilon;
        let mcf = segrout_algos::max_concurrent_flow(self.net, self.demands, eps)?;
        let lower = (1.0 - eps) * (1.0 - eps) * mcf.opt_mlu;
        rep.check(
            mlu >= lower - LOAD_TOL * (1.0 + lower),
            "mcf-lower-bound",
            || {
                format!(
                    "heuristic MLU {mlu} beats the fluid lower bound {lower} \
                 (FPTAS opt_mlu {}, ε {eps})",
                    mcf.opt_mlu
                )
            },
        );
        Ok(())
    }
}

/// Robust multi-matrix invariants for one `(Network, DemandSet, weights,
/// waypoints)` state:
///
/// * **per-matrix recomputation** — every entry of
///   [`evaluate_robust`]'s per-matrix MLU/Φ vectors must be bit-identical
///   to an independent from-scratch [`Router`] evaluation of that matrix,
/// * **incremental agreement** — a fresh [`IncrementalEvaluator`] per
///   matrix must reproduce the scratch loads (bit-identical under integral
///   weights, within tolerance otherwise),
/// * **aggregation identities** — the worst-case aggregate equals a manual
///   `max` fold, `Quantile(1.0)` equals `WorstCase` bit-exactly, and any
///   lower quantile never exceeds the worst case,
/// * **monotonicity** — the worst case over the first `k` matrices never
///   decreases as `k` grows.
///
/// # Errors
/// Returns the underlying [`TeError`] when the state cannot be evaluated
/// (disconnected segment, misaligned set) — a property of the input, not an
/// invariant violation.
pub fn validate_robust(
    net: &Network,
    set: &DemandSet,
    weights: &WeightSetting,
    waypoints: &WaypointSetting,
) -> Result<ValidationReport, TeError> {
    let mut rep = ValidationReport::default();
    set.require_aligned()?;
    let robust_rep = evaluate_robust(net, weights, set, waypoints)?;
    let integral = weights.as_slice().iter().all(|w| w.fract() == 0.0);

    let mut worst_prefix = f64::NEG_INFINITY;
    for (k, (name, demands)) in set.iter().enumerate() {
        let fresh = Router::new(net, weights).evaluate(demands, waypoints)?;
        rep.check(
            fresh.mlu.to_bits() == robust_rep.mlus[k].to_bits(),
            "robust-matrix-mlu",
            || {
                format!(
                    "matrix {k} ({name}): scratch MLU {} != robust report {}",
                    fresh.mlu, robust_rep.mlus[k]
                )
            },
        );
        let phi = fortz_phi(&fresh.loads, net.capacities());
        rep.check(
            phi.to_bits() == robust_rep.phis[k].to_bits(),
            "robust-matrix-phi",
            || {
                format!(
                    "matrix {k} ({name}): scratch Φ {phi} != robust report {}",
                    robust_rep.phis[k]
                )
            },
        );

        let ev = IncrementalEvaluator::new(net, weights, demands, waypoints)?;
        let scale = 1.0 + fresh.loads.iter().cloned().fold(0.0f64, f64::max);
        for (e, (&got, &want)) in ev.loads().iter().zip(&fresh.loads).enumerate() {
            let ok = if integral {
                got.to_bits() == want.to_bits()
            } else {
                (got - want).abs() <= LOAD_TOL * scale
            };
            rep.check(ok, "robust-incremental", || {
                format!(
                    "matrix {k} ({name}), edge {e}: incremental load {got} vs \
                     scratch {want} (integral = {integral})"
                )
            });
        }

        // Worst case over the first k+1 matrices is a running max.
        worst_prefix = worst_prefix.max(robust_rep.mlus[k]);
        let prefix = RobustObjective::WorstCase.aggregate(&robust_rep.mlus[..=k]);
        rep.check(
            prefix.to_bits() == worst_prefix.to_bits(),
            "robust-monotone",
            || {
                format!(
                    "prefix of {} matrices: worst-case aggregate {prefix} != \
                     running max {worst_prefix}",
                    k + 1
                )
            },
        );
    }

    let manual_worst = robust_rep
        .mlus
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let worst = RobustObjective::WorstCase.aggregate(&robust_rep.mlus);
    rep.check(
        worst.to_bits() == manual_worst.to_bits(),
        "robust-aggregate",
        || format!("worst-case aggregate {worst} != manual max {manual_worst}"),
    );
    let q1 = RobustObjective::Quantile(1.0).aggregate(&robust_rep.mlus);
    rep.check(
        q1.to_bits() == worst.to_bits(),
        "robust-quantile-unit",
        || format!("Quantile(1.0) {q1} != WorstCase {worst}"),
    );
    let median = RobustObjective::Quantile(0.5).aggregate(&robust_rep.mlus);
    rep.check(median <= worst, "robust-quantile-order", || {
        format!("Quantile(0.5) {median} exceeds worst case {worst}")
    });
    Ok(rep)
}

/// Failure-sweep invariants for one `(Network, demands, weights, waypoints)`
/// state: enumerates the failure set (single links, plus doubles when
/// `doubles` is set), runs [`sweep_failures`] over `scalings`, and checks
///
/// * **bookkeeping** — scenario counts add up (`scenarios` = patterns ×
///   scalings, `evaluated + disconnects = scenarios`),
/// * **scratch differential** — every [`ScenarioOutcome::Evaluated`] is
///   reproduced by a from-scratch [`Router`] evaluation of a rebuilt
///   topology with the dead edges *deleted* (bit-identical loads and MLU
///   under integral weights, within tolerance otherwise), the disable probe
///   carries exactly zero load on every dead edge, and every
///   [`ScenarioOutcome::Disconnected`] corresponds to a scratch evaluation
///   that is genuinely unroutable,
/// * **certificate** — the worst-case certificate's MLU equals the maximum
///   of the evaluated distribution, its bottleneck link attains that
///   utilization, and the [`RobustObjective::WorstCase`] aggregate agrees,
/// * **distribution** — the MLU distribution is sorted and covers exactly
///   the evaluated scenarios.
///
/// # Errors
/// Returns the underlying [`TeError`] when the *intact* workload cannot be
/// evaluated — a property of the input, not an invariant violation.
pub fn validate_sweep(
    net: &Network,
    demands: &DemandList,
    weights: &WeightSetting,
    waypoints: &WaypointSetting,
    doubles: bool,
    scalings: &[f64],
) -> Result<ValidationReport, TeError> {
    let mut rep = ValidationReport::default();
    let set = FailureSet::enumerate(net, doubles);
    let sweep = sweep_failures(net, weights, demands, waypoints, &set, scalings)?;
    let integral = weights.as_slice().iter().all(|w| w.fract() == 0.0);

    rep.check(
        sweep.scenarios == set.len() * sweep.scalings.len(),
        "sweep-bookkeeping",
        || {
            format!(
                "{} scenarios for {} patterns x {} scalings",
                sweep.scenarios,
                set.len(),
                sweep.scalings.len()
            )
        },
    );
    rep.check(
        sweep.evaluated + sweep.disconnects == sweep.scenarios,
        "sweep-bookkeeping",
        || {
            format!(
                "evaluated {} + disconnects {} != scenarios {}",
                sweep.evaluated, sweep.disconnects, sweep.scenarios
            )
        },
    );
    rep.check(
        sweep.results.len() == sweep.scenarios,
        "sweep-bookkeeping",
        || {
            format!(
                "{} results for {} scenarios",
                sweep.results.len(),
                sweep.scenarios
            )
        },
    );

    for (si, &scale) in sweep.scalings.iter().enumerate() {
        let scaled: DemandList = demands
            .iter()
            .map(|d| Demand::new(d.src, d.dst, d.size * scale))
            .collect();
        let eval = IncrementalEvaluator::new(net, weights, &scaled, waypoints)?;
        for (p, pattern) in set.patterns().iter().enumerate() {
            let r = &sweep.results[si * set.len() + p];
            rep.check(
                r.pattern == p && r.scaling == si,
                "sweep-bookkeeping",
                || {
                    format!(
                        "result order: expected ({p}, {si}), found ({}, {})",
                        r.pattern, r.scaling
                    )
                },
            );

            // Rebuild the topology with the dead edges *deleted* — the
            // ground truth the disable probe claims to be equivalent to.
            let mut b = Network::builder(net.node_count());
            let mut kept = Vec::new();
            let mut kept_weights = Vec::new();
            for (e, u, v) in net.graph().edges() {
                if !pattern.dead.contains(&e) {
                    b.link(u, v, net.capacities()[e.index()]);
                    kept.push(e);
                    kept_weights.push(weights.as_slice()[e.index()]);
                }
            }
            let deleted = if kept.is_empty() {
                None
            } else {
                b.build().ok()
            };
            let Some(net2) = deleted else {
                rep.check(
                    matches!(r.outcome, ScenarioOutcome::Disconnected { .. }),
                    "sweep-classify",
                    || {
                        format!(
                            "pattern {p}: no surviving edges but outcome {:?}",
                            r.outcome
                        )
                    },
                );
                continue;
            };
            let w2 = WeightSetting::new(&net2, kept_weights)?;
            let fresh = Router::new(&net2, &w2).evaluate(&scaled, waypoints);

            match (&r.outcome, fresh) {
                (&ScenarioOutcome::Evaluated { mlu, phi, .. }, Ok(fresh)) => {
                    let probe = eval
                        .probe_disable(&pattern.dead)
                        .expect("evaluated scenario must re-probe");
                    let scale_tol = 1.0 + fresh.loads.iter().cloned().fold(0.0f64, f64::max);
                    let ok_mlu = if integral {
                        mlu.to_bits() == fresh.mlu.to_bits()
                    } else {
                        (mlu - fresh.mlu).abs() <= LOAD_TOL * (1.0 + fresh.mlu)
                    };
                    rep.check(ok_mlu, "sweep-scratch-mlu", || {
                        format!(
                            "pattern {p} @ x{scale}: probe MLU {mlu} vs deleted-topology \
                             scratch MLU {} (integral = {integral})",
                            fresh.mlu
                        )
                    });
                    for (new_idx, &old) in kept.iter().enumerate() {
                        let got = probe.loads[old.index()];
                        let want = fresh.loads[new_idx];
                        let ok = if integral {
                            got.to_bits() == want.to_bits()
                        } else {
                            (got - want).abs() <= LOAD_TOL * scale_tol
                        };
                        rep.check(ok, "sweep-scratch-loads", || {
                            format!(
                                "pattern {p} @ x{scale}, edge {}: probe load {got} vs \
                                 deleted-topology scratch {want}",
                                old.index()
                            )
                        });
                    }
                    for &dead in &pattern.dead {
                        rep.check(probe.loads[dead.index()] == 0.0, "sweep-dead-load", || {
                            format!(
                                "pattern {p} @ x{scale}: dead edge {} carries load {}",
                                dead.index(),
                                probe.loads[dead.index()]
                            )
                        });
                    }
                    let fresh_phi = fortz_phi(&fresh.loads, net2.capacities());
                    rep.check(
                        (phi - fresh_phi).abs() <= LOAD_TOL * (1.0 + fresh_phi),
                        "sweep-scratch-phi",
                        || {
                            format!(
                                "pattern {p} @ x{scale}: probe Φ {phi} vs deleted-topology \
                                 scratch Φ {fresh_phi}"
                            )
                        },
                    );
                }
                (&ScenarioOutcome::Disconnected { .. }, Err(TeError::Unroutable { .. })) => {
                    rep.check(true, "sweep-classify", String::new);
                }
                (outcome, fresh) => {
                    rep.check(false, "sweep-classify", || {
                        format!(
                            "pattern {p} @ x{scale}: sweep outcome {outcome:?} but \
                             deleted-topology scratch gave {:?}",
                            fresh.map(|f| f.mlu)
                        )
                    });
                }
            }
        }
    }

    let dist = sweep.mlu_distribution();
    rep.check(dist.len() == sweep.evaluated, "sweep-distribution", || {
        format!(
            "distribution has {} entries for {} evaluated",
            dist.len(),
            sweep.evaluated
        )
    });
    rep.check(
        dist.windows(2).all(|w| w[0] <= w[1]),
        "sweep-distribution",
        || "MLU distribution is not sorted ascending".to_string(),
    );
    match (&sweep.worst, dist.last()) {
        (Some(cert), Some(&max)) => {
            rep.check(
                cert.mlu.to_bits() == max.to_bits(),
                "sweep-certificate",
                || format!("certificate MLU {} != distribution max {max}", cert.mlu),
            );
            let util = cert.bottleneck_load / net.capacities()[cert.bottleneck.index()];
            rep.check(
                util.to_bits() == cert.mlu.to_bits(),
                "sweep-certificate",
                || {
                    format!(
                        "bottleneck edge {} utilization {util} != certificate MLU {}",
                        cert.bottleneck.index(),
                        cert.mlu
                    )
                },
            );
            let agg = sweep.aggregate_mlu(RobustObjective::WorstCase);
            rep.check(
                agg.map(f64::to_bits) == Some(cert.mlu.to_bits()),
                "sweep-certificate",
                || {
                    format!(
                        "worst-case aggregate {agg:?} != certificate MLU {}",
                        cert.mlu
                    )
                },
            );
        }
        (None, None) => {
            rep.check(sweep.evaluated == 0, "sweep-certificate", || {
                format!("{} evaluated scenarios but no certificate", sweep.evaluated)
            });
        }
        (cert, max) => {
            rep.check(false, "sweep-certificate", || {
                format!("certificate {cert:?} inconsistent with distribution max {max:?}")
            });
        }
    }
    Ok(rep)
}

/// Kahn topological order of the nodes over the on-DAG edges; `None` when
/// the subgraph has a cycle.
fn kahn_order(net: &Network, dag: &SpDag) -> Option<Vec<NodeId>> {
    let g = net.graph();
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for (e, _, v) in g.edges() {
        if dag.edge_on_dag[e.index()] {
            indeg[v.index()] += 1;
        }
    }
    let mut stack: Vec<NodeId> = g.nodes().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        order.push(v);
        for &e in dag.dag_out(v) {
            let w = g.dst(e);
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                stack.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// `true` when the destination DAG's edge subgraph is acyclic.
fn dag_is_acyclic(net: &Network, dag: &SpDag) -> bool {
    kahn_order(net, dag).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Network, DemandList) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        d.push(NodeId(1), NodeId(3), 0.5);
        (net, d)
    }

    #[test]
    fn valid_state_passes_the_full_suite() {
        let (net, demands) = diamond();
        let w = WeightSetting::unit(&net);
        let mut wp = WaypointSetting::none(demands.len());
        wp.set(0, vec![NodeId(2)]);
        let rep = Validator::new(&net, &demands, &w, &wp).validate().unwrap();
        assert!(rep.is_ok(), "{rep}");
        assert!(rep.checks > 20, "suite ran only {} checks", rep.checks);
    }

    #[test]
    fn fractional_weights_pass_with_tolerant_comparison() {
        let (net, demands) = diamond();
        let w = WeightSetting::new(&net, vec![1.25, 1.0, 1.0, 1.25]).unwrap();
        let wp = WaypointSetting::none(demands.len());
        Validator::new(&net, &demands, &w, &wp).assert_valid();
    }

    #[test]
    fn unroutable_state_is_an_error_not_a_violation() {
        // One-way chain: demand against the arrow direction.
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(2), NodeId(0), 1.0);
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(d.len());
        let err = Validator::new(&net, &d, &w, &wp).validate().unwrap_err();
        assert!(matches!(err, TeError::Unroutable { .. }));
    }

    #[test]
    fn robust_state_passes_and_misalignment_errors() {
        let (net, demands) = diamond();
        let scaled: DemandList = demands
            .iter()
            .map(|d| segrout_core::Demand::new(d.src, d.dst, d.size * 0.25))
            .collect();
        let mut set = DemandSet::single(demands.clone());
        set.push("offpeak", scaled);
        let w = WeightSetting::unit(&net);
        let mut wp = WaypointSetting::none(demands.len());
        wp.set(0, vec![NodeId(2)]);
        let rep = validate_robust(&net, &set, &w, &wp).unwrap();
        assert!(rep.is_ok(), "{rep}");
        assert!(rep.checks > 10, "suite ran only {} checks", rep.checks);

        // A misaligned set (different pair list) with waypoints is an input
        // error, not a violation.
        let mut other = DemandList::new();
        other.push(NodeId(1), NodeId(0), 1.0);
        let mut bad = DemandSet::single(demands.clone());
        bad.push("misaligned", other);
        assert!(validate_robust(&net, &bad, &w, &wp).is_err());
    }

    #[test]
    fn sweep_suite_passes_on_bidirected_diamond() {
        // Bi-directed diamond so single failures leave an alternate path and
        // doubles produce genuine disconnects — both classification arms of
        // the suite run.
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(3), 1.0);
        b.bilink(NodeId(0), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(d.len());
        let rep = validate_sweep(&net, &d, &w, &wp, true, &[0.5, 1.0]).unwrap();
        assert!(rep.is_ok(), "{rep}");
        assert!(rep.checks > 50, "suite ran only {} checks", rep.checks);
    }

    #[test]
    fn sweep_suite_handles_fractional_weights_and_waypoints() {
        let (net, demands) = diamond();
        let w = WeightSetting::new(&net, vec![1.25, 1.0, 1.0, 1.25]).unwrap();
        let mut wp = WaypointSetting::none(demands.len());
        wp.set(0, vec![NodeId(2)]);
        let rep = validate_sweep(&net, &demands, &w, &wp, false, &[1.0]).unwrap();
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn abilene_gravity_state_passes() {
        let net = segrout_topo::abilene();
        let demands = segrout_traffic::gravity(
            &net,
            &segrout_traffic::TrafficConfig {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let w = WeightSetting::inverse_capacity(&net);
        let wp = WaypointSetting::none(demands.len());
        let cfg = ValidatorConfig {
            mcf_lower_bound: true,
            ..Default::default()
        };
        let rep = Validator::new(&net, &demands, &w, &wp)
            .with_config(cfg)
            .validate()
            .unwrap();
        assert!(rep.is_ok(), "{rep}");
    }
}
