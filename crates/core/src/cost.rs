//! TE objectives: maximum link utilization (paper §1.1) and the
//! Fortz–Thorup piecewise-linear congestion cost Φ used by the HeurOSPF
//! local search (paper \[11\]).

/// Per-link utilizations `loads[e] / caps[e]`.
///
/// # Panics
/// Panics when the vectors disagree in length.
pub fn utilizations(loads: &[f64], caps: &[f64]) -> Vec<f64> {
    assert_eq!(loads.len(), caps.len(), "loads/capacities length mismatch");
    loads.iter().zip(caps).map(|(l, c)| l / c).collect()
}

/// Maximum link utilization `MLU(N, f) = max_ℓ f_ℓ / c_ℓ` (paper §2).
/// Returns 0 for edgeless networks.
pub fn max_link_utilization(loads: &[f64], caps: &[f64]) -> f64 {
    assert_eq!(loads.len(), caps.len(), "loads/capacities length mismatch");
    loads
        .iter()
        .zip(caps)
        .map(|(l, c)| l / c)
        .fold(0.0, f64::max)
}

/// Breakpoints (as utilization fractions) of the Fortz–Thorup link cost.
const PHI_BREAKS: [f64; 6] = [0.0, 1.0 / 3.0, 2.0 / 3.0, 0.9, 1.0, 1.1];
/// Marginal costs per unit of load on the successive utilization segments.
const PHI_SLOPES: [f64; 6] = [1.0, 3.0, 10.0, 70.0, 500.0, 5000.0];

/// The Fortz–Thorup cost of a single link with load `load` and capacity
/// `cap`: a convex piecewise-linear function of the load whose derivative is
/// 1 below 1/3 utilization and 5000 above 110%.
pub fn fortz_phi_link(load: f64, cap: f64) -> f64 {
    debug_assert!(cap > 0.0);
    let mut cost = 0.0;
    for i in 0..PHI_BREAKS.len() {
        let lo = PHI_BREAKS[i] * cap;
        let hi = if i + 1 < PHI_BREAKS.len() {
            PHI_BREAKS[i + 1] * cap
        } else {
            f64::INFINITY
        };
        if load <= lo {
            break;
        }
        cost += PHI_SLOPES[i] * (load.min(hi) - lo);
    }
    cost
}

/// The network-wide Fortz–Thorup cost `Φ = Σ_ℓ φ(f_ℓ, c_ℓ)`.
pub fn fortz_phi(loads: &[f64], caps: &[f64]) -> f64 {
    assert_eq!(loads.len(), caps.len(), "loads/capacities length mismatch");
    loads
        .iter()
        .zip(caps)
        .map(|(&l, &c)| fortz_phi_link(l, c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlu_takes_the_maximum_ratio() {
        let mlu = max_link_utilization(&[1.0, 3.0, 0.5], &[2.0, 2.0, 1.0]);
        assert!((mlu - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mlu_of_empty_network_is_zero() {
        assert_eq!(max_link_utilization(&[], &[]), 0.0);
    }

    #[test]
    fn utilizations_elementwise() {
        assert_eq!(utilizations(&[1.0, 1.0], &[2.0, 4.0]), vec![0.5, 0.25]);
    }

    #[test]
    fn phi_is_linear_below_one_third() {
        assert!((fortz_phi_link(0.2, 1.0) - 0.2).abs() < 1e-12);
        assert!((fortz_phi_link(1.0 / 3.0, 1.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn phi_slope_three_on_second_segment() {
        // At u = 2/3: 1/3 * 1 + 1/3 * 3 = 4/3.
        assert!((fortz_phi_link(2.0 / 3.0, 1.0) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn phi_penalizes_overload_heavily() {
        let at_capacity = fortz_phi_link(1.0, 1.0);
        let overloaded = fortz_phi_link(1.2, 1.0);
        // Past 110%, marginal cost is 5000 per unit of load.
        assert!(overloaded > at_capacity + 500.0 * 0.1 + 5000.0 * 0.1 - 1e-9);
    }

    #[test]
    fn phi_scales_with_capacity() {
        // Same utilization pattern, doubled capacity: cost doubles.
        let a = fortz_phi_link(0.8, 1.0);
        let b = fortz_phi_link(1.6, 2.0);
        assert!((2.0 * a - b).abs() < 1e-9);
    }

    #[test]
    fn phi_is_monotone_and_convex() {
        let c = 1.0;
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.05).collect();
        let mut prev_val = -1.0;
        let mut prev_slope = 0.0;
        for w in xs.windows(2) {
            let (a, b) = (fortz_phi_link(w[0], c), fortz_phi_link(w[1], c));
            assert!(b >= a, "phi must be nondecreasing");
            let slope = (b - a) / (w[1] - w[0]);
            assert!(slope + 1e-9 >= prev_slope, "phi must be convex");
            prev_slope = slope;
            assert!(a >= prev_val);
            prev_val = a;
        }
    }

    #[test]
    fn network_phi_sums_links() {
        let phi = fortz_phi(&[0.2, 0.2], &[1.0, 1.0]);
        assert!((phi - 0.4).abs() < 1e-12);
    }
}
