//! Traffic demands: the multiset `D` of `(s, t, d)` tuples of paper §2.

use crate::error::TeError;
use segrout_graph::NodeId;

/// One traffic demand: `d` units of flow from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Demand {
    /// Source node `s`.
    pub src: NodeId,
    /// Target node `t`.
    pub dst: NodeId,
    /// Demand size `d` (required bandwidth), strictly positive.
    pub size: f64,
}

impl Demand {
    /// Convenience constructor.
    pub fn new(src: NodeId, dst: NodeId, size: f64) -> Self {
        Self { src, dst, size }
    }
}

/// An ordered multiset of demands.
///
/// Order matters only for reproducibility (optimizers iterate demands in a
/// documented order); the flow semantics treat `D` as a multiset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DemandList {
    demands: Vec<Demand>,
}

impl DemandList {
    /// Creates an empty demand list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing vector of demands, validating sizes.
    pub fn from_vec(demands: Vec<Demand>) -> Result<Self, TeError> {
        for (i, d) in demands.iter().enumerate() {
            if !(d.size.is_finite() && d.size > 0.0) {
                return Err(TeError::InvalidDemand {
                    index: i,
                    value: d.size,
                });
            }
            if d.src == d.dst {
                return Err(TeError::InvalidDemand {
                    index: i,
                    value: d.size,
                });
            }
        }
        Ok(Self { demands })
    }

    /// Appends a demand.
    ///
    /// # Panics
    /// Panics on non-positive sizes or `src == dst`; use
    /// [`DemandList::from_vec`] for fallible construction.
    pub fn push(&mut self, src: NodeId, dst: NodeId, size: f64) {
        assert!(
            size.is_finite() && size > 0.0,
            "demand size must be positive"
        );
        assert!(src != dst, "demand endpoints must differ");
        self.demands.push(Demand::new(src, dst, size));
    }

    /// Number of demands `|D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// `true` when no demands are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// The demands as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Demand] {
        &self.demands
    }

    /// Iterator over the demands.
    pub fn iter(&self) -> impl Iterator<Item = &Demand> {
        self.demands.iter()
    }

    /// Total demand size `D = Σ d` (paper §2).
    pub fn total_size(&self) -> f64 {
        self.demands.iter().map(|d| d.size).sum()
    }

    /// If every demand shares the same `(s, t)` pair, returns it. The gap
    /// analysis (paper §3–5) applies to such *single source–target* lists.
    pub fn single_pair(&self) -> Option<(NodeId, NodeId)> {
        let first = self.demands.first()?;
        let pair = (first.src, first.dst);
        self.demands
            .iter()
            .all(|d| (d.src, d.dst) == pair)
            .then_some(pair)
    }

    /// The distinct destinations appearing in the list, in first-appearance
    /// order. The ECMP engine computes one shortest-path DAG per destination.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut seen = Vec::new();
        for d in &self.demands {
            if !seen.contains(&d.dst) {
                seen.push(d.dst);
            }
        }
        seen
    }

    /// Indices of demands sorted by descending size (ties broken by index),
    /// the iteration order of GreedyWPO (paper Algorithm 3).
    pub fn indices_by_descending_size(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.demands.len()).collect();
        idx.sort_by(|&a, &b| {
            self.demands[b]
                .size
                .partial_cmp(&self.demands[a].size)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }
}

impl std::ops::Index<usize> for DemandList {
    type Output = Demand;
    fn index(&self, i: usize) -> &Demand {
        &self.demands[i]
    }
}

impl FromIterator<Demand> for DemandList {
    fn from_iter<I: IntoIterator<Item = Demand>>(iter: I) -> Self {
        Self {
            demands: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a DemandList {
    type Item = &'a Demand;
    type IntoIter = std::slice::Iter<'a, Demand>;
    fn into_iter(self) -> Self::IntoIter {
        self.demands.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_lengths() {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 1.0);
        d.push(NodeId(0), NodeId(1), 0.5);
        assert_eq!(d.len(), 2);
        assert!((d.total_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_pair_detection() {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.0);
        d.push(NodeId(0), NodeId(3), 2.0);
        assert_eq!(d.single_pair(), Some((NodeId(0), NodeId(3))));
        d.push(NodeId(1), NodeId(3), 1.0);
        assert_eq!(d.single_pair(), None);
        assert_eq!(DemandList::new().single_pair(), None);
    }

    #[test]
    fn destinations_are_deduplicated() {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.0);
        d.push(NodeId(1), NodeId(3), 1.0);
        d.push(NodeId(1), NodeId(2), 1.0);
        assert_eq!(d.destinations(), vec![NodeId(3), NodeId(2)]);
    }

    #[test]
    fn descending_order_is_stable() {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 1.0);
        d.push(NodeId(0), NodeId(2), 3.0);
        d.push(NodeId(0), NodeId(3), 1.0);
        assert_eq!(d.indices_by_descending_size(), vec![1, 0, 2]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(DemandList::from_vec(vec![Demand::new(NodeId(0), NodeId(1), -1.0)]).is_err());
        assert!(DemandList::from_vec(vec![Demand::new(NodeId(0), NodeId(0), 1.0)]).is_err());
        assert!(DemandList::from_vec(vec![Demand::new(NodeId(0), NodeId(1), 1.0)]).is_ok());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn push_rejects_zero_size() {
        DemandList::new().push(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    fn harmonic_demands_total() {
        // The harmonic demand lists of TE-Instances 2-5: sizes 1, 1/2, ..., 1/m.
        let m = 100usize;
        let d: DemandList = (1..=m)
            .map(|j| Demand::new(NodeId(0), NodeId(1), 1.0 / j as f64))
            .collect();
        let h: f64 = (1..=m).map(|j| 1.0 / j as f64).sum();
        assert!((d.total_size() - h).abs() < 1e-12);
    }
}
