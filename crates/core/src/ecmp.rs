//! The ECMP flow engine: destination-driven shortest-path routing with even
//! splits (paper §1.1, §2).
//!
//! Given a weight setting, a packet destined to `t` is forwarded at every
//! node over *all* outgoing links on shortest paths to `t`, and the flow
//! splits **evenly** among them (fine-grained packet-level splitting,
//! paper \[14\]). Segment routing decomposes each demand into consecutive
//! shortest-path *segments* between waypoints; each segment is an independent
//! ECMP flow towards the segment's destination.
//!
//! The engine aggregates all segments sharing a destination into a single
//! propagation pass over that destination's shortest-path DAG, which makes
//! evaluating a full demand matrix `O(Σ_t (E log V))` — one Dijkstra and one
//! linear sweep per distinct destination.
//!
//! Destination passes are independent, so [`Router::add_segment_loads`] fans
//! them out over the `segrout-par` pool. Destinations are grouped in a
//! `BTreeMap` and their per-destination load vectors are summed **in
//! destination order on the calling thread**, so the result is bit-identical
//! at any thread count (`f64` accumulation order never depends on
//! scheduling).

use crate::cost::max_link_utilization;
use crate::demand::DemandList;
use crate::error::TeError;
use crate::network::Network;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;
use segrout_graph::{shortest_path_dag, EdgeId, NodeId, SpDag, EPS};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// One routing segment: `amount` units of flow from `src` to `dst`, routed
/// as an ECMP flow towards `dst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Segment entry node.
    pub src: NodeId,
    /// Segment destination (a waypoint or the demand's final target).
    pub dst: NodeId,
    /// Flow amount carried by the segment.
    pub amount: f64,
}

/// Result of evaluating a routed demand set: per-link loads and the MLU.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// `loads[e]` = total flow on link `e`.
    pub loads: Vec<f64>,
    /// Maximum link utilization `max_e loads[e] / c(e)`.
    pub mlu: f64,
}

/// An ECMP router for one fixed `(network, weights)` pair.
///
/// Shortest-path DAGs are computed lazily per destination and cached, so the
/// waypoint optimizers can evaluate thousands of candidate routings against
/// the same weight setting cheaply. The cache is a `OnceLock` per
/// destination, making the router `Sync`: optimizer workers probe candidate
/// waypoints against one shared router concurrently, and each DAG is still
/// computed at most once.
///
/// ```
/// use segrout_core::{DemandList, Network, NodeId, Router, WaypointSetting, WeightSetting};
///
/// // Two equal-cost paths from 0 to 3: ECMP splits a 2-unit demand evenly.
/// let mut b = Network::builder(4);
/// b.link(NodeId(0), NodeId(1), 1.0);
/// b.link(NodeId(1), NodeId(3), 1.0);
/// b.link(NodeId(0), NodeId(2), 1.0);
/// b.link(NodeId(2), NodeId(3), 1.0);
/// let net = b.build()?;
///
/// let mut demands = DemandList::new();
/// demands.push(NodeId(0), NodeId(3), 2.0);
///
/// let router = Router::new(&net, &WeightSetting::unit(&net));
/// let report = router.evaluate(&demands, &WaypointSetting::none(1))?;
/// assert_eq!(report.loads, vec![1.0; 4]);
/// assert!((report.mlu - 1.0).abs() < 1e-12);
/// # Ok::<(), segrout_core::TeError>(())
/// ```
pub struct Router<'n> {
    net: &'n Network,
    weights: Vec<f64>,
    dags: Vec<OnceLock<Arc<SpDag>>>,
    // Handle resolved once per process so neither router construction nor
    // cache misses pay a registry lookup (HeurOSPF builds a router per
    // scored candidate on the from-scratch path).
    recomputes: &'static Arc<segrout_obs::Counter>,
}

/// The `ecmp.recomputes` counter handle, resolved once per process. Every
/// full per-destination DAG construction — by [`Router`] or by the
/// incremental evaluator — increments it; bounded repairs do not.
pub(crate) fn recompute_counter() -> &'static Arc<segrout_obs::Counter> {
    static HANDLE: OnceLock<Arc<segrout_obs::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| segrout_obs::counter("ecmp.recomputes"))
}

impl<'n> Router<'n> {
    /// Creates a router for the given network and weight setting.
    pub fn new(net: &'n Network, weights: &WeightSetting) -> Self {
        Self {
            net,
            weights: weights.as_slice().to_vec(),
            dags: (0..net.node_count()).map(|_| OnceLock::new()).collect(),
            recomputes: recompute_counter(),
        }
    }

    /// The network this router operates on.
    #[inline]
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The weight vector in use.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The (cached) shortest-path DAG towards `t`.
    pub fn dag(&self, t: NodeId) -> Arc<SpDag> {
        Arc::clone(self.dags[t.index()].get_or_init(|| {
            self.recomputes.inc();
            Arc::new(shortest_path_dag(self.net.graph(), &self.weights, t))
        }))
    }

    /// Shortest-path distance from `s` to `t` under the router's weights.
    pub fn distance(&self, s: NodeId, t: NodeId) -> f64 {
        self.dag(t).dist[s.index()]
    }

    /// Computes per-link loads of the ECMP flow induced by a set of routing
    /// segments. Segments sharing a destination are aggregated into one
    /// propagation pass.
    pub fn loads_for_segments(&self, segments: &[Segment]) -> Result<Vec<f64>, TeError> {
        let mut loads = vec![0.0; self.net.edge_count()];
        self.add_segment_loads(segments, &mut loads)?;
        Ok(loads)
    }

    /// Adds the loads of `segments` onto an existing load vector.
    ///
    /// Destination passes run on the `segrout-par` pool; the per-destination
    /// load vectors are summed in ascending destination order on the calling
    /// thread, so the result does not depend on the thread count.
    pub fn add_segment_loads(
        &self,
        segments: &[Segment],
        loads: &mut [f64],
    ) -> Result<(), TeError> {
        // Group injected amounts by destination, in deterministic order.
        let dests: Vec<(NodeId, Vec<(NodeId, f64)>)> =
            group_by_destination(segments).into_iter().collect();
        let per_dest = segrout_par::par_map(dests.len(), |i| {
            let (t, injections) = &dests[i];
            self.destination_loads(*t, injections)
        });
        for dest_loads in per_dest {
            for (slot, l) in loads.iter_mut().zip(dest_loads?) {
                *slot += l;
            }
        }
        Ok(())
    }

    /// One propagation pass: the dense load vector of all `injections`
    /// routed towards `t`. Pure per-destination work, safe to run on any
    /// worker thread.
    fn destination_loads(
        &self,
        t: NodeId,
        injections: &[(NodeId, f64)],
    ) -> Result<Vec<f64>, TeError> {
        let dag = self.dag(t);
        let mut loads = vec![0.0; self.net.edge_count()];
        let mut node_flow = vec![0.0; self.net.node_count()];
        propagate_destination(self.net, &dag, injections, &mut loads, &mut node_flow)?;
        Ok(loads)
    }

    /// Loads of a single unit segment `src → dst` of size `amount`, returned
    /// sparsely as `(edge, load)` pairs. This is the inner evaluation of
    /// GreedyWPO, which probes `|D| · |V|` candidate waypoints.
    pub fn segment_loads_sparse(
        &self,
        src: NodeId,
        dst: NodeId,
        amount: f64,
    ) -> Result<Vec<(EdgeId, f64)>, TeError> {
        if src == dst || amount <= EPS {
            return Ok(Vec::new());
        }
        let dag = self.dag(dst);
        if !dag.reaches_target(src) {
            return Err(TeError::Unroutable { src, dst });
        }
        let mut node_flow = vec![0.0; self.net.node_count()];
        node_flow[src.index()] = amount;
        let mut out = Vec::new();
        for &v in &dag.order {
            let f = node_flow[v.index()];
            if f <= EPS || v == dst {
                continue;
            }
            let outs = dag.dag_out(v);
            let share = f / outs.len() as f64;
            for &e in outs {
                out.push((e, share));
                node_flow[self.net.graph().dst(e).index()] += share;
            }
        }
        Ok(out)
    }

    /// Evaluates a full demand list under a waypoint setting, producing loads
    /// and MLU. Use [`WaypointSetting::none`] for pure OSPF/ECMP routing.
    pub fn evaluate(
        &self,
        demands: &DemandList,
        waypoints: &WaypointSetting,
    ) -> Result<LoadReport, TeError> {
        if waypoints.len() != demands.len() {
            return Err(TeError::InvalidWaypoints(format!(
                "waypoint table has {} rows for {} demands",
                waypoints.len(),
                demands.len()
            )));
        }
        let mut segments = Vec::with_capacity(demands.len());
        for (i, d) in demands.iter().enumerate() {
            for (src, dst, amount) in waypoints.segments_of(i, d) {
                segments.push(Segment { src, dst, amount });
            }
        }
        let loads = self.loads_for_segments(&segments)?;
        let mlu = max_link_utilization(&loads, self.net.capacities());
        Ok(LoadReport { loads, mlu })
    }

    /// Convenience: MLU of the plain ECMP flow (no waypoints).
    pub fn mlu(&self, demands: &DemandList) -> Result<f64, TeError> {
        Ok(self
            .evaluate(demands, &WaypointSetting::none(demands.len()))?
            .mlu)
    }
}

/// Groups segments by destination in deterministic (ascending) order,
/// aggregating the injected amounts. Shared by [`Router::add_segment_loads`]
/// and the incremental evaluator so both see identical injection lists (same
/// order, hence the same `f64` accumulation sequence).
pub(crate) fn group_by_destination(segments: &[Segment]) -> BTreeMap<NodeId, Vec<(NodeId, f64)>> {
    let mut by_dest: BTreeMap<NodeId, Vec<(NodeId, f64)>> = BTreeMap::new();
    for seg in segments {
        if seg.src == seg.dst || seg.amount <= EPS {
            continue;
        }
        by_dest
            .entry(seg.dst)
            .or_default()
            .push((seg.src, seg.amount));
    }
    by_dest
}

/// The ECMP propagation pass for one destination: routes all `injections`
/// towards `dag.target`, adding the resulting per-edge flow into `loads`
/// (which must be zeroed, `edge_count` long). `node_flow` is caller-provided
/// zeroed scratch of `node_count` length — it is left dirty on return so hot
/// loops can re-zero and reuse it instead of reallocating.
///
/// This is the single propagation code path in the workspace: the router and
/// the incremental evaluator both call it, so their per-destination partials
/// are bit-identical by construction.
pub(crate) fn propagate_destination(
    net: &Network,
    dag: &SpDag,
    injections: &[(NodeId, f64)],
    loads: &mut [f64],
    node_flow: &mut [f64],
) -> Result<(), TeError> {
    let t = dag.target;
    for &(s, amount) in injections {
        if !dag.reaches_target(s) {
            return Err(TeError::Unroutable { src: s, dst: t });
        }
        node_flow[s.index()] += amount;
    }
    spread_seeded(net, dag, loads, node_flow);
    Ok(())
}

/// The splitting half of [`propagate_destination`]: `node_flow` already holds
/// the injected amounts per source. Reachability is a property of the graph
/// alone (weights are always positive finite), so hot loops that validated a
/// destination once may seed `node_flow` from a cached slab — bitwise the
/// same values the injection fold produces — and skip the per-call check.
pub(crate) fn spread_seeded(net: &Network, dag: &SpDag, loads: &mut [f64], node_flow: &mut [f64]) {
    let t = dag.target;
    // `dag.order` is topological (decreasing distance), so each node has
    // received its full inflow before we split it.
    for &v in &dag.order {
        let f = node_flow[v.index()];
        if f <= EPS || v == t {
            continue;
        }
        let outs = dag.dag_out(v);
        debug_assert!(!outs.is_empty(), "non-target node on DAG without out-edge");
        let share = f / outs.len() as f64;
        for &e in outs {
            loads[e.index()] += share;
            node_flow[net.graph().dst(e).index()] += share;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    /// Diamond with unit weights: two equal-cost 2-hop paths from 0 to 3.
    fn diamond() -> Network {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        b.build().unwrap()
    }

    #[test]
    fn even_split_over_two_paths() {
        let net = diamond();
        let w = WeightSetting::unit(&net);
        let router = Router::new(&net, &w);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let report = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
        assert_eq!(report.loads, vec![1.0, 1.0, 1.0, 1.0]);
        assert!((report.mlu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weight_change_steers_all_flow_one_way() {
        let net = diamond();
        let mut w = WeightSetting::unit(&net);
        w.set(EdgeId(2), 5.0); // make path via node 2 longer
        let router = Router::new(&net, &w);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let report = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
        assert_eq!(report.loads, vec![2.0, 2.0, 0.0, 0.0]);
        assert!((report.mlu - 2.0).abs() < 1e-12);
    }

    #[test]
    fn waypoint_forces_detour() {
        let net = diamond();
        let mut w = WeightSetting::unit(&net);
        w.set(EdgeId(2), 5.0); // shortest path avoids node 2 ...
        let router = Router::new(&net, &w);
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let mut wp = WaypointSetting::none(1);
        wp.set(0, vec![NodeId(2)]); // ... but the waypoint pins it through 2
        let report = router.evaluate(&d, &wp).unwrap();
        assert_eq!(report.loads, vec![0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn recursive_splitting() {
        // Binary fan-out: 0 splits to 1,2; both split to 3,4 via 4 parallel
        // length-2 routes; all reconverge at 5.
        let mut b = Network::builder(6);
        b.link(NodeId(0), NodeId(1), 1.0); // e0
        b.link(NodeId(0), NodeId(2), 1.0); // e1
        b.link(NodeId(1), NodeId(3), 1.0); // e2
        b.link(NodeId(1), NodeId(4), 1.0); // e3
        b.link(NodeId(2), NodeId(3), 1.0); // e4
        b.link(NodeId(2), NodeId(4), 1.0); // e5
        b.link(NodeId(3), NodeId(5), 1.0); // e6
        b.link(NodeId(4), NodeId(5), 1.0); // e7
        let net = b.build().unwrap();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(5), 4.0);
        let r = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
        assert!((r.loads[0] - 2.0).abs() < 1e-12);
        assert!((r.loads[2] - 1.0).abs() < 1e-12);
        assert!((r.loads[6] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_demands_same_destination_aggregate() {
        let net = diamond();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.0);
        d.push(NodeId(1), NodeId(3), 1.0);
        let r = router.evaluate(&d, &WaypointSetting::none(2)).unwrap();
        // Demand from 1 rides only edge 1; demand from 0 splits.
        assert!((r.loads[1] - 1.5).abs() < 1e-12);
        assert!((r.loads[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unroutable_segment_is_an_error() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        assert_eq!(
            router.mlu(&d).unwrap_err(),
            TeError::Unroutable {
                src: NodeId(0),
                dst: NodeId(2)
            }
        );
    }

    #[test]
    fn sparse_and_dense_loads_agree() {
        let net = diamond();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let sparse = router
            .segment_loads_sparse(NodeId(0), NodeId(3), 2.0)
            .unwrap();
        let dense = router
            .loads_for_segments(&[Segment {
                src: NodeId(0),
                dst: NodeId(3),
                amount: 2.0,
            }])
            .unwrap();
        let mut from_sparse = vec![0.0; net.edge_count()];
        for (e, l) in sparse {
            from_sparse[e.index()] += l;
        }
        for e in 0..net.edge_count() {
            assert!((from_sparse[e] - dense[e]).abs() < 1e-12);
        }
    }

    #[test]
    fn flow_is_conserved_end_to_end() {
        let net = diamond();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let loads = router
            .loads_for_segments(&[Segment {
                src: NodeId(0),
                dst: NodeId(3),
                amount: 3.0,
            }])
            .unwrap();
        let into_target: f64 = net
            .graph()
            .in_edges(NodeId(3))
            .iter()
            .map(|e| loads[e.index()])
            .sum();
        assert!((into_target - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segments_are_ignored() {
        let net = diamond();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let loads = router
            .loads_for_segments(&[Segment {
                src: NodeId(1),
                dst: NodeId(1),
                amount: 5.0,
            }])
            .unwrap();
        assert!(loads.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn dag_cache_is_reused() {
        let net = diamond();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        let a = router.dag(NodeId(3));
        let b = router.dag(NodeId(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distance_matches_weights() {
        let net = diamond();
        let router = Router::new(&net, &WeightSetting::unit(&net));
        assert_eq!(router.distance(NodeId(0), NodeId(3)), 2.0);
        assert_eq!(router.distance(NodeId(3), NodeId(3)), 0.0);
    }
}
