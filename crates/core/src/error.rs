//! Error type shared across the TE model and optimizers.

use segrout_graph::NodeId;
use std::fmt;

/// Errors raised by model construction and flow evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum TeError {
    /// A per-edge attribute vector has the wrong length.
    DimensionMismatch {
        /// What the vector describes ("weights", "capacities", ...).
        what: &'static str,
        /// Expected length (edge or demand count).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// A link weight is non-positive, NaN or infinite.
    InvalidWeight {
        /// Index of the offending edge.
        edge: usize,
        /// The invalid value.
        value: f64,
    },
    /// A link capacity is non-positive, NaN or infinite.
    InvalidCapacity {
        /// Index of the offending edge.
        edge: usize,
        /// The invalid value.
        value: f64,
    },
    /// A demand size is non-positive, NaN or infinite.
    InvalidDemand {
        /// Index of the offending demand.
        index: usize,
        /// The invalid value.
        value: f64,
    },
    /// No directed path exists for a routing segment, so the ECMP flow is
    /// undefined.
    Unroutable {
        /// Segment source.
        src: NodeId,
        /// Segment destination.
        dst: NodeId,
    },
    /// A waypoint setting refers to more demands than the demand list has,
    /// or exceeds the waypoint budget `W`.
    InvalidWaypoints(String),
    /// An LP/MILP solve aborted on a resource limit or numerical failure
    /// before reaching a verdict — distinct from [`TeError::Unroutable`]:
    /// the instance may well be feasible, the solver just could not decide.
    SolverLimit {
        /// Which solve gave up ("OPT LP", "Joint MILP", ...).
        what: &'static str,
        /// The solver status it stopped with ("iteration limit",
        /// "unbounded", ...).
        status: &'static str,
    },
}

impl fmt::Display for TeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} vector has length {actual}, expected {expected}"),
            TeError::InvalidWeight { edge, value } => {
                write!(
                    f,
                    "weight of edge {edge} must be a positive finite real, got {value}"
                )
            }
            TeError::InvalidCapacity { edge, value } => {
                write!(
                    f,
                    "capacity of edge {edge} must be a positive finite real, got {value}"
                )
            }
            TeError::InvalidDemand { index, value } => {
                write!(
                    f,
                    "size of demand {index} must be a positive finite real, got {value}"
                )
            }
            TeError::Unroutable { src, dst } => {
                write!(
                    f,
                    "no directed path from {src:?} to {dst:?}; ECMP flow undefined"
                )
            }
            TeError::InvalidWaypoints(msg) => write!(f, "invalid waypoint setting: {msg}"),
            TeError::SolverLimit { what, status } => {
                write!(
                    f,
                    "{what} solve stopped without a verdict ({status}); \
                     raise the limits or reduce the instance"
                )
            }
        }
    }
}

impl std::error::Error for TeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TeError::Unroutable {
            src: NodeId(0),
            dst: NodeId(7),
        };
        let s = e.to_string();
        assert!(s.contains("n0") && s.contains("n7"));

        let e = TeError::DimensionMismatch {
            what: "weights",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("weights"));

        // A solver limit must never read like a disconnected demand pair.
        let e = TeError::SolverLimit {
            what: "Joint MILP",
            status: "iteration limit",
        };
        let s = e.to_string();
        assert!(s.contains("Joint MILP") && s.contains("iteration limit"));
        assert!(!s.contains("no directed path"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TeError::InvalidWeight {
            edge: 0,
            value: -1.0,
        });
    }
}
