//! Even-split flows over arbitrary DAGs and *effective capacities*
//! (paper §2 "Even-Split Flow" and Definition 5.1).
//!
//! An even-split (ES) flow either does not split at a node or splits evenly
//! over a chosen subset of its outgoing links. ECMP flows are the special
//! case where that subset is forced to be *all* shortest-path next hops; the
//! LWO-APX algorithm instead *chooses* the subset (by pruning links from the
//! max-flow DAG) to maximize the deliverable ES-flow.
//!
//! Given a fixed DAG (edge mask), the *effective capacity* `ec_t(v)` of a
//! node is the size of the maximal ES-flow from `v` to `t` when the flow
//! splits evenly over all DAG out-edges at every node:
//!
//! * `ec_t(t) = ∞`,
//! * `ec_t(v) = δ(v) · min_{ℓ=(v,*)} ec_t(ℓ)`,
//! * `ec_t(ℓ=(*,u)) = min(c*(ℓ), ec_t(u))`.

use crate::error::TeError;
use segrout_graph::{topological_order, Digraph, NodeId, EPS};

/// Effective capacities of all nodes and edges with respect to target `t`,
/// computed on the sub-DAG selected by `mask` with usable capacities `cap`
/// (paper Definition 5.1; illustrated by the paper's Figure 3).
///
/// Returns `(ec_node, ec_edge)`. Nodes with no masked out-edge other than `t`
/// get effective capacity 0 (no ES-flow can leave them); `ec_node[t] = ∞`.
///
/// # Errors
/// Returns an error if the masked subgraph is cyclic.
pub fn effective_capacities(
    g: &Digraph,
    cap: &[f64],
    mask: &[bool],
    t: NodeId,
) -> Result<(Vec<f64>, Vec<f64>), TeError> {
    assert_eq!(cap.len(), g.edge_count(), "capacity length mismatch");
    assert_eq!(mask.len(), g.edge_count(), "mask length mismatch");
    let order = topological_order(g, mask).ok_or(TeError::InvalidWaypoints(
        "effective capacities require an acyclic edge mask".to_string(),
    ))?;

    let mut ec_node = vec![0.0; g.node_count()];
    let mut ec_edge = vec![0.0; g.edge_count()];
    ec_node[t.index()] = f64::INFINITY;

    // Process nodes in reverse topological order: all DAG out-neighbours of a
    // node are finalized before the node itself.
    for &v in order.iter().rev() {
        if v == t {
            // Edges into t are still capped by their usable capacity.
            for &e in g.in_edges(v) {
                if mask[e.index()] {
                    ec_edge[e.index()] = cap[e.index()];
                }
            }
            continue;
        }
        let outs: Vec<_> = g
            .out_edges(v)
            .iter()
            .copied()
            .filter(|e| mask[e.index()])
            .collect();
        if !outs.is_empty() {
            let min_out = outs
                .iter()
                .map(|e| ec_edge[e.index()])
                .fold(f64::INFINITY, f64::min);
            ec_node[v.index()] = outs.len() as f64 * min_out;
        }
        for &e in g.in_edges(v) {
            if mask[e.index()] {
                ec_edge[e.index()] = cap[e.index()].min(ec_node[v.index()]);
            }
        }
    }
    Ok((ec_node, ec_edge))
}

/// Per-link loads of the even-split flow that injects `amount` at `src` and
/// splits evenly over the masked out-edges at every node until reaching `t`.
///
/// # Errors
/// Fails when the mask is cyclic or when flow reaches a node other than `t`
/// with no masked out-edge (the flow would be stuck).
pub fn es_flow_loads(
    g: &Digraph,
    mask: &[bool],
    src: NodeId,
    t: NodeId,
    amount: f64,
) -> Result<Vec<f64>, TeError> {
    let order = topological_order(g, mask).ok_or(TeError::InvalidWaypoints(
        "even-split flow requires an acyclic edge mask".to_string(),
    ))?;
    let mut node_flow = vec![0.0; g.node_count()];
    node_flow[src.index()] = amount;
    let mut loads = vec![0.0; g.edge_count()];
    for &v in &order {
        let f = node_flow[v.index()];
        if f <= EPS || v == t {
            continue;
        }
        let outs: Vec<_> = g
            .out_edges(v)
            .iter()
            .copied()
            .filter(|e| mask[e.index()])
            .collect();
        if outs.is_empty() {
            return Err(TeError::Unroutable { src: v, dst: t });
        }
        let share = f / outs.len() as f64;
        for e in outs {
            loads[e.index()] += share;
            node_flow[g.dst(e).index()] += share;
        }
    }
    Ok(loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_graph::Digraph;

    /// Paper Figure 3a: ec(s) equals the usable capacity 3/2.
    ///
    /// s has three outgoing links to v1, v2, v3; v2 has two unit links... the
    /// figure's capacities: (s,v1)=1/2 capped by ec(v1)=1/2; (s,v2) capped by
    /// ec(v2)=2*(1/4)=1/2; (s,v3) capped by ec(v3)=3/4 but its own capacity
    /// is 3/4; ec(s)=3*min(1/2,1/2,3/4)=3/2.
    fn figure_3a() -> (Digraph, Vec<f64>, NodeId, NodeId) {
        let mut g = Digraph::new(5); // s=0, v1=1, v2=2, v3=3, t=4
        let mut cap = Vec::new();
        let e = |g: &mut Digraph, cap: &mut Vec<f64>, u: u32, v: u32, c: f64| {
            g.add_edge(NodeId(u), NodeId(v));
            cap.push(c);
        };
        e(&mut g, &mut cap, 0, 1, 0.5); // (s,v1)
        e(&mut g, &mut cap, 0, 2, 0.5); // (s,v2)
        e(&mut g, &mut cap, 0, 3, 0.75); // (s,v3)
        e(&mut g, &mut cap, 1, 4, 0.5); // (v1,t)
        e(&mut g, &mut cap, 2, 4, 0.25); // (v2,t)
        e(&mut g, &mut cap, 2, 4, 0.25); // (v2,t) second parallel link
        e(&mut g, &mut cap, 3, 4, 0.75); // (v3,t)
        (g, cap, NodeId(0), NodeId(4))
    }

    #[test]
    fn effective_capacities_match_figure_3a() {
        let (g, cap, s, t) = figure_3a();
        let mask = vec![true; g.edge_count()];
        let (ec_node, ec_edge) = effective_capacities(&g, &cap, &mask, t).unwrap();
        assert_eq!(ec_node[t.index()], f64::INFINITY);
        assert!((ec_node[1] - 0.5).abs() < 1e-12); // v1
        assert!((ec_node[2] - 0.5).abs() < 1e-12); // v2 = 2 * 1/4
        assert!((ec_node[3] - 0.75).abs() < 1e-12); // v3
        assert!((ec_edge[0] - 0.5).abs() < 1e-12); // (s,v1)
        assert!((ec_edge[1] - 0.5).abs() < 1e-12); // (s,v2)
        assert!((ec_edge[2] - 0.75).abs() < 1e-12); // (s,v3)
        assert!((ec_node[s.index()] - 1.5).abs() < 1e-12); // ec(s) = 3 * 1/2
    }

    /// Paper Figure 3b: always-splitting reduces ec(s) to 2/3 while the
    /// maximum flow is 3/2.
    fn figure_3b() -> (Digraph, Vec<f64>, NodeId, NodeId) {
        let mut g = Digraph::new(6); // s=0, v1=1, v2=2, v3=3, v4=4, t=5
        let mut cap = Vec::new();
        let e = |g: &mut Digraph, cap: &mut Vec<f64>, u: u32, v: u32, c: f64| {
            g.add_edge(NodeId(u), NodeId(v));
            cap.push(c);
        };
        e(&mut g, &mut cap, 0, 1, 0.5); // (s,v1)
        e(&mut g, &mut cap, 0, 2, 1.0); // (s,v2)
        e(&mut g, &mut cap, 1, 3, 1.0 / 6.0); // (v1,v3)
        e(&mut g, &mut cap, 1, 4, 1.0 / 3.0); // (v1,v4)
        e(&mut g, &mut cap, 2, 3, 1.0 / 3.0); // (v2,v3)
        e(&mut g, &mut cap, 2, 4, 2.0 / 3.0); // (v2,v4)
        e(&mut g, &mut cap, 3, 5, 0.5); // (v3,t)
        e(&mut g, &mut cap, 4, 5, 1.0); // (v4,t)
        (g, cap, NodeId(0), NodeId(5))
    }

    #[test]
    fn effective_capacities_match_figure_3b() {
        let (g, cap, s, t) = figure_3b();
        let mask = vec![true; g.edge_count()];
        let (ec_node, _) = effective_capacities(&g, &cap, &mask, t).unwrap();
        assert!((ec_node[3] - 0.5).abs() < 1e-12); // v3
        assert!((ec_node[4] - 1.0).abs() < 1e-12); // v4
        assert!((ec_node[1] - 1.0 / 3.0).abs() < 1e-12); // v1 = 2 * 1/6
        assert!((ec_node[2] - 2.0 / 3.0).abs() < 1e-12); // v2 = 2 * 1/3
        assert!((ec_node[s.index()] - 2.0 / 3.0).abs() < 1e-12); // ec(s) = 2 * 1/3
    }

    #[test]
    fn es_flow_loads_split_evenly() {
        let (g, _cap, s, t) = figure_3a();
        let mask = vec![true; g.edge_count()];
        let loads = es_flow_loads(&g, &mask, s, t, 1.5).unwrap();
        assert!((loads[0] - 0.5).abs() < 1e-12);
        assert!((loads[4] - 0.25).abs() < 1e-12); // v2 splits its 1/2 over two links
        let into_t: f64 = g.in_edges(t).iter().map(|e| loads[e.index()]).sum();
        assert!((into_t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn es_flow_with_pruned_edges() {
        let (g, _cap, s, t) = figure_3b();
        // Prune (v2,v3) so v2 forwards everything to v4 (the better choice
        // discussed under Figure 3b).
        let mut mask = vec![true; g.edge_count()];
        mask[4] = false;
        let loads = es_flow_loads(&g, &mask, s, t, 1.0).unwrap();
        assert_eq!(loads[4], 0.0);
        assert!((loads[5] - 0.5).abs() < 1e-12); // all of v2's half goes to v4
    }

    #[test]
    fn stuck_flow_is_an_error() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        // node 1 is a dead end; flow to t=2 gets stuck.
        let mask = vec![true; 1];
        assert!(es_flow_loads(&g, &mask, NodeId(0), NodeId(2), 1.0).is_err());
    }

    #[test]
    fn cyclic_mask_is_an_error() {
        let mut g = Digraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        let mask = vec![true, true];
        assert!(effective_capacities(&g, &[1.0, 1.0], &mask, NodeId(1)).is_err());
        assert!(es_flow_loads(&g, &mask, NodeId(0), NodeId(1), 1.0).is_err());
    }

    #[test]
    fn ec_of_isolated_source_is_zero() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(1), NodeId(2));
        let mask = vec![true];
        let (ec_node, _) = effective_capacities(&g, &[1.0], &mask, NodeId(2)).unwrap();
        assert_eq!(ec_node[0], 0.0);
        assert_eq!(ec_node[1], 1.0);
    }

    #[test]
    fn es_flow_equals_effective_capacity_when_saturating() {
        // Sending exactly ec(s) saturates the bottleneck link but respects
        // all capacities.
        let (g, cap, s, t) = figure_3a();
        let mask = vec![true; g.edge_count()];
        let (ec_node, _) = effective_capacities(&g, &cap, &mask, t).unwrap();
        let loads = es_flow_loads(&g, &mask, s, t, ec_node[s.index()]).unwrap();
        for e in 0..g.edge_count() {
            assert!(
                loads[e] <= cap[e] + 1e-9,
                "edge {e} overloaded: {} > {}",
                loads[e],
                cap[e]
            );
        }
    }
}
