//! Failure-scenario enumeration and the fleet-scale what-if sweep engine.
//!
//! The paper optimizes weights and waypoints for the intact topology, but
//! the question an operator actually asks is *post-failure* congestion: what
//! does the MLU become when a link (or two) goes down, possibly under a
//! scaled traffic matrix? This module turns that question into a first-class
//! sweep:
//!
//! * [`FailureSet`] enumerates failure *patterns* — all single-link and
//!   optionally all double-link failures at the **undirected-link** level
//!   (both directions of a bi-directed arc fail together, the way a fiber
//!   cut behaves) — over the distinct links of a [`Network`].
//! * [`sweep_failures`] crosses the patterns with a list of demand scalings
//!   and evaluates every resulting scenario with the read-only
//!   [`IncrementalEvaluator::probe_disable`] edge-disable probe, fanned out
//!   over the `segrout-par` pool. One evaluator is built per scaling; every
//!   failure pattern then repairs only the destinations whose shortest-path
//!   DAG actually used a failed edge, which is what makes whole-fleet sweeps
//!   (hundreds of thousands of scenarios) affordable.
//! * Scenarios that cut a demand off its destination are **classified**, not
//!   errored: they surface as [`ScenarioOutcome::Disconnected`] with the
//!   severed `(src, dst)` pair, and the sweep carries on.
//!
//! The [`SweepReport`] carries the per-scenario MLU distribution, a
//! [`WorstCaseCertificate`] naming the worst scenario *and* its bottleneck
//! link, and aggregates over the survivors through the same
//! [`RobustObjective`] machinery the multi-matrix optimizer uses — so
//! "minimize the worst-case MLU over the failure set" is the same code path
//! as "minimize the worst case over a demand set".

use crate::demand::DemandList;
use crate::error::TeError;
use crate::incremental::IncrementalEvaluator;
use crate::network::Network;
use crate::robust::RobustObjective;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;
use segrout_graph::{EdgeId, NodeId};

/// One failure pattern: a set of failed undirected links, expanded to the
/// directed edges the routing layer masks out.
#[derive(Clone, Debug)]
pub struct FailurePattern {
    /// Indices into [`FailureSet::links`] of the failed links, ascending.
    pub links: Vec<usize>,
    /// All directed edges belonging to the failed links, ascending by id.
    pub dead: Vec<EdgeId>,
}

/// The enumerated failure patterns of a network: all single-link and
/// optionally all double-link failures, at the undirected-link level.
///
/// Links are recovered from the directed edge list by greedy reverse-pairing
/// in ascending edge-id order — exactly inverse to the `bilink` construction
/// every SNDLib topology uses; a directed edge without a reverse partner
/// forms a single-edge link of its own.
#[derive(Clone, Debug)]
pub struct FailureSet {
    links: Vec<Vec<EdgeId>>,
    patterns: Vec<FailurePattern>,
}

impl FailureSet {
    /// Enumerates failure patterns over `net`: every single link, plus every
    /// unordered pair of links when `doubles` is set. Disconnecting patterns
    /// are *not* filtered out here — the sweep classifies them.
    pub fn enumerate(net: &Network, doubles: bool) -> Self {
        let g = net.graph();
        let mut link_of = vec![usize::MAX; g.edge_count()];
        let mut links: Vec<Vec<EdgeId>> = Vec::new();
        for (e, u, v) in g.edges() {
            if link_of[e.index()] != usize::MAX {
                continue;
            }
            let id = links.len();
            link_of[e.index()] = id;
            let mut members = vec![e];
            // First unpaired reverse edge, by ascending id: the partner the
            // `bilink` convention created.
            if let Some(&r) = g
                .out_edges(v)
                .iter()
                .find(|&&r| g.dst(r) == u && link_of[r.index()] == usize::MAX)
            {
                link_of[r.index()] = id;
                members.push(r);
            }
            links.push(members);
        }

        let mut patterns = Vec::new();
        for (i, members) in links.iter().enumerate() {
            patterns.push(FailurePattern {
                links: vec![i],
                dead: members.clone(),
            });
        }
        if doubles {
            for i in 0..links.len() {
                for j in (i + 1)..links.len() {
                    let mut dead: Vec<EdgeId> =
                        links[i].iter().chain(links[j].iter()).copied().collect();
                    dead.sort_unstable();
                    patterns.push(FailurePattern {
                        links: vec![i, j],
                        dead,
                    });
                }
            }
        }
        Self { links, patterns }
    }

    /// The undirected links, each as its directed-edge members.
    #[inline]
    pub fn links(&self) -> &[Vec<EdgeId>] {
        &self.links
    }

    /// The enumerated failure patterns.
    #[inline]
    pub fn patterns(&self) -> &[FailurePattern] {
        &self.patterns
    }

    /// Number of undirected links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of failure patterns.
    #[inline]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` if no patterns were enumerated (edgeless network).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Human-readable label of a pattern, e.g. `"Berlin–Hamburg"` or
    /// `"A–B + C–D"` for a double failure.
    pub fn pattern_label(&self, net: &Network, p: usize) -> String {
        let g = net.graph();
        self.patterns[p]
            .links
            .iter()
            .map(|&l| {
                let e = self.links[l][0];
                format!("{}–{}", net.node_name(g.src(e)), net.node_name(g.dst(e)))
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// What one failure scenario did to the network.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioOutcome {
    /// The scenario routes: the resulting objective state.
    Evaluated {
        /// Maximum link utilization under the failure.
        mlu: f64,
        /// Fortz–Thorup congestion cost Φ under the failure.
        phi: f64,
        /// Destinations whose DAG had to be repaired.
        dirty_dests: usize,
    },
    /// The scenario cuts a demand off its destination: the first severed
    /// `(src, dst)` pair found, in ascending destination order.
    Disconnected {
        /// A source that can no longer reach `dst`.
        src: NodeId,
        /// The unreachable destination.
        dst: NodeId,
    },
}

/// The outcome of one `(pattern, scaling)` scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Index into [`FailureSet::patterns`].
    pub pattern: usize,
    /// Index into the sweep's scaling list.
    pub scaling: usize,
    /// What happened.
    pub outcome: ScenarioOutcome,
}

/// The worst-case certificate: the scenario attaining the maximum MLU over
/// all evaluated scenarios, with the bottleneck link that attains the
/// utilization — enough for an operator to verify the claim by hand.
#[derive(Clone, Debug)]
pub struct WorstCaseCertificate {
    /// Index into [`FailureSet::patterns`].
    pub pattern: usize,
    /// Index into the sweep's scaling list.
    pub scaling: usize,
    /// The demand scaling factor of the scenario.
    pub scale: f64,
    /// The failed directed edges.
    pub dead: Vec<EdgeId>,
    /// The worst-case MLU.
    pub mlu: f64,
    /// The link attaining the MLU (smallest edge id on ties — the same
    /// argmax rule `max_link_utilization` folds with).
    pub bottleneck: EdgeId,
    /// Load on the bottleneck link.
    pub bottleneck_load: f64,
}

/// The result of a full failure sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Undirected links in the network.
    pub link_count: usize,
    /// Failure patterns swept.
    pub patterns: usize,
    /// The demand scaling factors, in sweep order.
    pub scalings: Vec<f64>,
    /// Total scenarios = patterns × scalings.
    pub scenarios: usize,
    /// Scenarios that routed.
    pub evaluated: usize,
    /// Scenarios classified as disconnecting.
    pub disconnects: usize,
    /// Intact-topology MLU per scaling (the sweep's baseline).
    pub base_mlu: Vec<f64>,
    /// Per-scenario outcomes, scaling-major then pattern order.
    pub results: Vec<ScenarioResult>,
    /// The worst evaluated scenario, if any scenario routed.
    pub worst: Option<WorstCaseCertificate>,
}

impl SweepReport {
    /// The MLUs of all evaluated scenarios, ascending (`total_cmp` order).
    pub fn mlu_distribution(&self) -> Vec<f64> {
        let mut mlus: Vec<f64> = self
            .results
            .iter()
            .filter_map(|r| match r.outcome {
                ScenarioOutcome::Evaluated { mlu, .. } => Some(mlu),
                ScenarioOutcome::Disconnected { .. } => None,
            })
            .collect();
        mlus.sort_unstable_by(f64::total_cmp);
        mlus
    }

    /// Aggregates the evaluated-scenario MLUs under a [`RobustObjective`]
    /// (worst case or quantile) — the same aggregation the multi-matrix
    /// optimizer uses over demand sets. `None` if every scenario
    /// disconnected.
    pub fn aggregate_mlu(&self, objective: RobustObjective) -> Option<f64> {
        let mlus = self.mlu_distribution();
        if mlus.is_empty() {
            None
        } else {
            Some(objective.aggregate(&mlus))
        }
    }
}

/// Metric handles for the sweep engine.
fn sweep_metrics() -> &'static (
    std::sync::Arc<segrout_obs::Counter>,
    std::sync::Arc<segrout_obs::Counter>,
    std::sync::Arc<segrout_obs::Gauge>,
) {
    static HANDLES: std::sync::OnceLock<(
        std::sync::Arc<segrout_obs::Counter>,
        std::sync::Arc<segrout_obs::Counter>,
        std::sync::Arc<segrout_obs::Gauge>,
    )> = std::sync::OnceLock::new();
    HANDLES.get_or_init(|| {
        (
            segrout_obs::counter("sweep.scenarios"),
            segrout_obs::counter("sweep.disconnects"),
            segrout_obs::gauge("sweep.worst_mlu"),
        )
    })
}

/// Scales every demand size by `scale` (sources, destinations and order are
/// preserved).
fn scale_demands(demands: &DemandList, scale: f64) -> DemandList {
    let mut out = DemandList::new();
    for d in demands.iter() {
        out.push(d.src, d.dst, d.size * scale);
    }
    out
}

/// Sweeps every `(failure pattern, demand scaling)` scenario of `set` over
/// the given workload and reports per-scenario outcomes plus the worst-case
/// certificate.
///
/// One [`IncrementalEvaluator`] is built per scaling (an intact-topology
/// base state); each failure pattern is then answered by the read-only
/// [`IncrementalEvaluator::probe_disable`], fanned out over the
/// `segrout-par` pool. Results are deterministic and independent of the
/// thread count — scenario outcomes are collected in sweep order, and each
/// probe is bit-identical to a from-scratch evaluation of the edge-deleted
/// topology.
///
/// Errors only if the *intact* workload fails to route for some scaling
/// (failure-induced disconnections are classified per scenario instead).
pub fn sweep_failures(
    net: &Network,
    weights: &WeightSetting,
    demands: &DemandList,
    waypoints: &WaypointSetting,
    set: &FailureSet,
    scalings: &[f64],
) -> Result<SweepReport, TeError> {
    let scalings: Vec<f64> = if scalings.is_empty() {
        vec![1.0]
    } else {
        scalings.to_vec()
    };
    for &s in &scalings {
        assert!(s.is_finite() && s > 0.0, "demand scaling must be positive");
    }

    let (scen_counter, disc_counter, worst_gauge) = sweep_metrics();
    let mut results = Vec::with_capacity(set.len() * scalings.len());
    let mut base_mlu = Vec::with_capacity(scalings.len());
    let mut evaluated = 0usize;
    let mut disconnects = 0usize;
    // Worst over evaluated scenarios: (mlu, index into `results`), ties to
    // the earliest scenario so the certificate is deterministic.
    let mut worst: Option<(f64, usize)> = None;

    for (si, &scale) in scalings.iter().enumerate() {
        let scaled = scale_demands(demands, scale);
        let eval = IncrementalEvaluator::new(net, weights, &scaled, waypoints)?;
        base_mlu.push(eval.mlu());
        let outcomes =
            segrout_par::par_map(set.len(), |p| eval.probe_disable(&set.patterns()[p].dead));
        for (p, out) in outcomes.into_iter().enumerate() {
            scen_counter.inc();
            let outcome = match out {
                Ok(probe) => {
                    evaluated += 1;
                    ScenarioOutcome::Evaluated {
                        mlu: probe.mlu,
                        phi: probe.phi,
                        dirty_dests: probe.dirty_count,
                    }
                }
                Err(TeError::Unroutable { src, dst }) => {
                    disconnects += 1;
                    disc_counter.inc();
                    ScenarioOutcome::Disconnected { src, dst }
                }
                Err(other) => return Err(other),
            };
            if let ScenarioOutcome::Evaluated { mlu, .. } = outcome {
                let better = match worst {
                    None => true,
                    Some((w, _)) => mlu.total_cmp(&w) == std::cmp::Ordering::Greater,
                };
                if better {
                    worst = Some((mlu, results.len()));
                }
            }
            results.push(ScenarioResult {
                pattern: p,
                scaling: si,
                outcome,
            });
        }
    }

    // Materialize the certificate: re-answer the winning scenario once to
    // recover its load vector and name the bottleneck link.
    let worst = match worst {
        None => None,
        Some((mlu, idx)) => {
            let r = &results[idx];
            let scaled = scale_demands(demands, scalings[r.scaling]);
            let eval = IncrementalEvaluator::new(net, weights, &scaled, waypoints)?;
            let probe = eval
                .probe_disable(&set.patterns()[r.pattern].dead)
                .expect("worst scenario evaluated in the sweep must re-evaluate");
            let caps = net.capacities();
            let (mut bottleneck, mut best_util) = (EdgeId(0), f64::NEG_INFINITY);
            for (i, (&l, &c)) in probe.loads.iter().zip(caps).enumerate() {
                let util = l / c;
                if util > best_util {
                    best_util = util;
                    bottleneck = EdgeId(i as u32);
                }
            }
            worst_gauge.set(mlu);
            Some(WorstCaseCertificate {
                pattern: r.pattern,
                scaling: r.scaling,
                scale: scalings[r.scaling],
                dead: set.patterns()[r.pattern].dead.clone(),
                mlu,
                bottleneck,
                bottleneck_load: probe.loads[bottleneck.index()],
            })
        }
    };

    Ok(SweepReport {
        link_count: set.link_count(),
        patterns: set.len(),
        scenarios: set.len() * scalings.len(),
        evaluated,
        disconnects,
        scalings,
        base_mlu,
        results,
        worst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Router;

    /// Bi-directed diamond: links 0–1, 1–3, 0–2, 2–3 (8 directed edges).
    fn diamond() -> Network {
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(3), 1.0);
        b.bilink(NodeId(0), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        b.build().unwrap()
    }

    fn demand() -> DemandList {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        d
    }

    #[test]
    fn enumerates_links_by_reverse_pairing() {
        let net = diamond();
        let set = FailureSet::enumerate(&net, false);
        assert_eq!(set.link_count(), 4);
        assert_eq!(set.len(), 4);
        for link in set.links() {
            assert_eq!(link.len(), 2, "bilink must pair into one link");
            let g = net.graph();
            assert_eq!(g.src(link[0]), g.dst(link[1]));
            assert_eq!(g.dst(link[0]), g.src(link[1]));
        }
    }

    #[test]
    fn unpaired_edge_forms_its_own_link() {
        let mut b = Network::builder(3);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(2), 1.0); // one-way
        let net = b.build().unwrap();
        let set = FailureSet::enumerate(&net, false);
        assert_eq!(set.link_count(), 2);
        assert_eq!(set.links()[1], vec![EdgeId(2)]);
    }

    #[test]
    fn doubles_enumerate_all_pairs() {
        let net = diamond();
        let set = FailureSet::enumerate(&net, true);
        assert_eq!(set.len(), 4 + 6);
        for p in set.patterns().iter().skip(4) {
            assert_eq!(p.links.len(), 2);
            assert_eq!(p.dead.len(), 4);
        }
    }

    #[test]
    fn sweep_classifies_and_matches_deleted_topology() {
        let net = diamond();
        let d = demand();
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(1);
        let set = FailureSet::enumerate(&net, true);
        let rep = sweep_failures(&net, &w, &d, &wp, &set, &[1.0]).unwrap();
        assert_eq!(rep.scenarios, 10);
        assert_eq!(rep.evaluated + rep.disconnects, rep.scenarios);
        // Single failures of any one link leave the alternative 2-hop path;
        // of the six double failures only {0–1, 1–3} and {0–2, 2–3} (one
        // whole path each) keep 0 connected to 3 — the other four cut it.
        assert_eq!(rep.disconnects, 4);
        // Killing link 0–1 doubles the load on the lower path: MLU 2.0.
        match &rep.results[0].outcome {
            ScenarioOutcome::Evaluated { mlu, .. } => assert_eq!(*mlu, 2.0),
            other => panic!("expected evaluated, got {other:?}"),
        }
        let worst = rep.worst.as_ref().expect("some scenarios evaluated");
        assert_eq!(worst.mlu, 2.0);
        assert_eq!(worst.bottleneck_load, 2.0);
        // The certificate's MLU is reproducible from scratch on the
        // edge-deleted topology via a plain router.
        let pattern = &set.patterns()[worst.pattern];
        let mut b = Network::builder(4);
        for (e, u, v) in net.graph().edges() {
            if !pattern.dead.contains(&e) {
                b.link(u, v, net.capacities()[e.index()]);
            }
        }
        let net2 = b.build().unwrap();
        let w2 = WeightSetting::unit(&net2);
        let fresh = Router::new(&net2, &w2).evaluate(&d, &wp).unwrap();
        assert_eq!(fresh.mlu.to_bits(), worst.mlu.to_bits());
    }

    #[test]
    fn scalings_scale_the_baseline_and_results() {
        let net = diamond();
        let d = demand();
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(1);
        let set = FailureSet::enumerate(&net, false);
        let rep = sweep_failures(&net, &w, &d, &wp, &set, &[0.5, 1.0]).unwrap();
        assert_eq!(rep.scenarios, 8);
        assert_eq!(rep.base_mlu.len(), 2);
        assert_eq!(rep.base_mlu[0], 0.5);
        assert_eq!(rep.base_mlu[1], 1.0);
        let worst = rep.worst.unwrap();
        assert_eq!(worst.scale, 1.0);
        assert_eq!(worst.mlu, 2.0);
    }

    #[test]
    fn aggregate_reuses_robust_objectives() {
        let net = diamond();
        let d = demand();
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(1);
        let set = FailureSet::enumerate(&net, false);
        let rep = sweep_failures(&net, &w, &d, &wp, &set, &[]).unwrap();
        let worst = rep.aggregate_mlu(RobustObjective::WorstCase).unwrap();
        assert_eq!(worst, rep.worst.as_ref().unwrap().mlu);
        let median = rep.aggregate_mlu(RobustObjective::Quantile(0.5)).unwrap();
        assert!(median <= worst);
        let dist = rep.mlu_distribution();
        assert_eq!(dist.len(), rep.evaluated);
        assert!(dist.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn intact_unroutable_is_still_an_error() {
        let mut b = Network::builder(3);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        let w = WeightSetting::unit(&net);
        let set = FailureSet::enumerate(&net, false);
        let err = sweep_failures(&net, &w, &d, &WaypointSetting::none(1), &set, &[1.0]);
        assert!(err.is_err(), "intact disconnection must error");
    }
}
