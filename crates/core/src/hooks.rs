//! Debug-build consistency hooks for optimizer commit points.
//!
//! The local-search optimizers maintain derived state incrementally — the
//! [`crate::IncrementalEvaluator`]'s repaired DAGs and load partials in
//! HeurOSPF, the sparsely patched load vector in GreedyWPO — and the whole
//! correctness argument is that this derived state always equals what a
//! from-scratch evaluation would produce. This module provides one cheap
//! assertion, [`assert_commit_consistent`], that the optimizers call at
//! every accepted move (their *commit points*).
//!
//! The check re-evaluates the committed configuration with a fresh
//! [`Router`] and compares loads and MLU. It is compiled to a no-op unless
//! `debug_assertions` are enabled, so release binaries (and the benchmark
//! record) pay nothing; the call sites in `segrout-algos` are additionally
//! `#[cfg(debug_assertions)]`-gated so not even argument marshalling
//! survives into release builds.
//!
//! The heavyweight invariant suite (SP-DAG structure, even-split
//! conservation, MCF lower bounds, cross-engine differentials) lives in the
//! `segrout-check` crate, which depends on this one; these hooks are the
//! lightweight in-tree complement that runs on every debug test.

use crate::demand::DemandList;
use crate::ecmp::Router;
use crate::network::Network;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;

/// Relative tolerance for comparing incrementally maintained loads against
/// a fresh evaluation. Incremental paths accumulate in a different order
/// than the from-scratch path, so exact bit equality is only guaranteed for
/// the [`crate::IncrementalEvaluator`] under tie-exact (integral) weights;
/// the hook uses a scaled tolerance that accepts legitimate reassociation
/// while still catching logic errors (which produce errors many orders of
/// magnitude larger).
const REL_TOL: f64 = 1e-6;

/// Asserts that a committed optimizer state is self-consistent: `loads` and
/// `mlu` must match a from-scratch evaluation of `(weights, waypoints)` on
/// `demands` within [`REL_TOL`], and every load must be finite and
/// non-negative.
///
/// No-op in release builds (`debug_assertions` off).
///
/// # Panics
/// Panics (debug builds only) with a diagnostic message when the committed
/// state diverges from the from-scratch evaluation.
#[inline]
pub fn assert_commit_consistent(
    net: &Network,
    weights: &WeightSetting,
    demands: &DemandList,
    waypoints: &WaypointSetting,
    loads: &[f64],
    mlu: f64,
) {
    if !cfg!(debug_assertions) {
        return;
    }
    assert_eq!(
        loads.len(),
        net.edge_count(),
        "commit hook: load vector length {} != edge count {}",
        loads.len(),
        net.edge_count()
    );
    let scale = 1.0 + loads.iter().cloned().fold(0.0f64, f64::max).abs();
    for (e, &l) in loads.iter().enumerate() {
        assert!(
            l.is_finite() && l >= -REL_TOL * scale,
            "commit hook: load of edge {e} is {l} (must be finite and non-negative)"
        );
    }
    let fresh = Router::new(net, weights)
        .evaluate(demands, waypoints)
        .expect("commit hook: committed configuration must be routable");
    for (e, (&got, &want)) in loads.iter().zip(&fresh.loads).enumerate() {
        assert!(
            (got - want).abs() <= REL_TOL * scale,
            "commit hook: edge {e} load diverged from fresh evaluation: \
             incremental {got} vs fresh {want}"
        );
    }
    assert!(
        (mlu - fresh.mlu).abs() <= REL_TOL * (1.0 + fresh.mlu.abs()),
        "commit hook: MLU diverged from fresh evaluation: incremental {mlu} vs fresh {}",
        fresh.mlu
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn diamond() -> (Network, DemandList) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        (net, d)
    }

    #[test]
    fn accepts_a_fresh_evaluation() {
        let (net, demands) = diamond();
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(demands.len());
        let r = Router::new(&net, &w).evaluate(&demands, &wp).unwrap();
        assert_commit_consistent(&net, &w, &demands, &wp, &r.loads, r.mlu);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "hook is a no-op in release")]
    #[should_panic(expected = "diverged")]
    fn rejects_corrupted_loads() {
        let (net, demands) = diamond();
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(demands.len());
        let mut r = Router::new(&net, &w).evaluate(&demands, &wp).unwrap();
        r.loads[0] += 0.5; // simulate incremental-state drift
        assert_commit_consistent(&net, &w, &demands, &wp, &r.loads, r.mlu);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "hook is a no-op in release")]
    #[should_panic(expected = "MLU diverged")]
    fn rejects_wrong_mlu() {
        let (net, demands) = diamond();
        let w = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(demands.len());
        let r = Router::new(&net, &w).evaluate(&demands, &wp).unwrap();
        assert_commit_consistent(&net, &w, &demands, &wp, &r.loads, r.mlu * 2.0);
    }
}
