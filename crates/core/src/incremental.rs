//! Incremental ECMP re-evaluation for single-edge weight changes — the
//! engine behind the HeurOSPF candidate loop.
//!
//! The Fortz–Thorup local search asks one question thousands of times per
//! pass: *"what are Φ / MLU if edge `e`'s weight becomes `w`?"* Answering it
//! from scratch costs one Dijkstra plus one load propagation **per
//! destination**, even though a single-edge change leaves most shortest-path
//! DAGs untouched. [`IncrementalEvaluator`] maintains, for a base weight
//! vector, every per-destination SP-DAG *and* a per-destination decomposition
//! of the link-load vector, and answers probes in three steps:
//!
//! 1. **Affected-destination test** — destination `t` is *dirty* only if the
//!    changed edge can alter `t`'s DAG: a weight increase on an edge that is
//!    on the DAG, or a decrease that reaches the current distance at the
//!    edge's tail ([`segrout_graph::edge_change_affects_dag`]). Everything
//!    else is provably clean and is skipped entirely.
//! 2. **Bounded DAG repair** — dirty destinations are repaired with a
//!    Ramalingam–Reps-style dynamic Dijkstra update
//!    ([`segrout_graph::update_shortest_path_dag`]) whose work is
//!    proportional to the set of nodes whose distance actually changes; when
//!    that set exceeds the *fallback threshold* (`frontier_cap`, default
//!    half the node count) a full per-destination Dijkstra runs instead.
//! 3. **Load patching** — each dirty destination's load partial is
//!    re-propagated over its repaired DAG; the total load vector is then
//!    re-summed from the per-destination partials **in ascending destination
//!    order**. Clean destinations contribute their cached partials, so no
//!    propagation runs for them — but the summation order is exactly the one
//!    the from-scratch evaluator uses, which keeps every load, Φ and MLU
//!    value **bit-identical** to [`crate::Router`] at any thread count. (A
//!    subtract-stale/add-new patch would be cheaper still, but `f64`
//!    addition is not associative — re-folding cached partials is the only
//!    patch that preserves the bit pattern.)
//!
//! The partials live in a [`LoadArena`]: one flat `|D| · |E|` slab instead
//! of `|D|` separate `Vec`s, plus a *prefix slab* caching the ascending fold
//! up to every destination. A probe whose first dirty destination is `i`
//! starts from a straight copy of prefix row `i - 1` and only folds rows
//! `i..` — bit-safe, because the skipped prefix **is** the identical `f64`
//! operation sequence, just cached from the last commit (no reassociation
//! happens). A fully clean probe is a single copy of the committed totals.
//! The re-fold itself is a branch-free add over two contiguous `f64` slices
//! the compiler can autovectorize.
//!
//! Probes borrow the evaluator read-only, so a speculative candidate
//! neighbourhood can be scored in parallel on the `segrout-par` pool against
//! one shared base state; the accepted candidate is then applied in place
//! with [`IncrementalEvaluator::commit`].
//!
//! Bit-identity of the repaired DAGs additionally relies on tie-exact
//! weights — sums of weights must be exactly representable so that shortest-
//! path ties classify identically in the repaired and the from-scratch run.
//! Integral weight vectors (what every optimizer in this workspace emits)
//! satisfy this; the differential suite (`tests/incremental_differential.rs`)
//! enforces `f64::to_bits` equality across instances, thread counts and
//! random weight-change sequences.

use crate::cost::{fortz_phi, max_link_utilization};
use crate::demand::DemandList;
use crate::ecmp::{
    group_by_destination, propagate_destination, recompute_counter, spread_seeded, Segment,
};
use crate::error::TeError;
use crate::network::Network;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;
use segrout_graph::{
    disable_edge_update, edge_change_affects_dag, edge_disabled, shortest_path_dag_masked,
    update_shortest_path_dag_masked, EdgeId, NodeId, SpDag, SpDagUpdate,
};
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

/// Counter handles for the incremental engine, resolved once per process
/// (probes are the hottest loop in the workspace — no registry lookups).
struct IncrCounters {
    /// Speculative probes answered.
    probes: Arc<segrout_obs::Counter>,
    /// Destination DAGs found dirty across all probes.
    dirty_dests: Arc<segrout_obs::Counter>,
    /// Destination DAGs skipped as provably clean across all probes.
    clean_dests: Arc<segrout_obs::Counter>,
    /// Bounded dynamic-Dijkstra repairs that stayed under the threshold.
    repairs: Arc<segrout_obs::Counter>,
    /// Probes whose load fold started from a cached prefix row (or from the
    /// committed totals, for fully clean probes).
    arena_reuses: Arc<segrout_obs::Counter>,
    /// Prefix-slab (re)folds: one at construction, one per commit with dirty
    /// destinations.
    arena_rebuilds: Arc<segrout_obs::Counter>,
    /// Edge-disable (failure-scenario) probes answered.
    disable_probes: Arc<segrout_obs::Counter>,
}

fn counters() -> &'static IncrCounters {
    static HANDLES: OnceLock<IncrCounters> = OnceLock::new();
    HANDLES.get_or_init(|| IncrCounters {
        probes: segrout_obs::counter("incr.probes"),
        dirty_dests: segrout_obs::counter("incr.dirty_dests"),
        clean_dests: segrout_obs::counter("incr.clean_dests"),
        repairs: segrout_obs::counter("incr.repairs"),
        arena_reuses: segrout_obs::counter("arena.reuses"),
        arena_rebuilds: segrout_obs::counter("arena.rebuilds"),
        disable_probes: segrout_obs::counter("incr.disable_probes"),
    })
}

/// Branch-free elementwise `out[j] += row[j]` over two contiguous slices —
/// the single accumulation kernel every load fold in this module uses, so
/// the operation sequence (and therefore every bit) is shared.
#[inline]
fn add_assign(out: &mut [f64], row: &[f64]) {
    debug_assert_eq!(out.len(), row.len());
    for (slot, &x) in out.iter_mut().zip(row) {
        *slot += x;
    }
}

/// Flat per-destination load storage: all `|D|` link-load partials in one
/// contiguous `|D| · stride` slab, plus a prefix slab whose row `i` caches
/// the ascending-order fold of rows `0..=i`.
///
/// Both slabs are allocated once and reused across every probe and commit —
/// no per-candidate allocation, and the prefix rows let probes skip the
/// clean head of the fold entirely (see module docs for why that preserves
/// bit-identity).
struct LoadArena {
    stride: usize,
    dests: usize,
    rows: Vec<f64>,
    prefix: Vec<f64>,
}

impl LoadArena {
    /// Takes ownership of the concatenated per-destination rows and computes
    /// the prefix slab.
    fn new(stride: usize, dests: usize, rows: Vec<f64>) -> Self {
        debug_assert_eq!(rows.len(), stride * dests);
        let mut arena = Self {
            stride,
            dests,
            rows,
            prefix: vec![0.0; stride * dests],
        };
        arena.refold_from(0);
        arena
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.rows[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    fn prefix_row(&self, i: usize) -> &[f64] {
        &self.prefix[i * self.stride..(i + 1) * self.stride]
    }

    /// The committed totals: the fold over all rows (zeros if no rows).
    fn total(&self, out: &mut Vec<f64>) {
        out.clear();
        if self.dests == 0 {
            out.resize(self.stride, 0.0);
        } else {
            out.extend_from_slice(self.prefix_row(self.dests - 1));
        }
    }

    /// Recomputes prefix rows `first..` after rows changed. Row `i` is the
    /// copy of row `i - 1`'s prefix plus row `i` — exactly the operation
    /// sequence of a from-zero ascending fold (the copy stands in for the
    /// fold's partial sum, which it is).
    fn refold_from(&mut self, first: usize) {
        let s = self.stride;
        for i in first..self.dests {
            if i == 0 {
                self.prefix[..s].copy_from_slice(&self.rows[..s]);
            } else {
                self.prefix.copy_within((i - 1) * s..i * s, i * s);
                add_assign(
                    &mut self.prefix[i * s..(i + 1) * s],
                    &self.rows[i * s..(i + 1) * s],
                );
            }
        }
    }
}

thread_local! {
    /// Per-worker scratch reused across probes: the node-flow propagation
    /// buffer and the patched weight vector. Probes run on pool workers, so
    /// thread-locals give each worker one allocation for the whole search
    /// instead of two per candidate.
    static SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Per-worker disabled-edge mask scratch for [`IncrementalEvaluator::probe_disable`]:
    /// failure sweeps answer one probe per scenario, so the mask buffer must
    /// not be reallocated per scenario either.
    static MASK_SCRATCH: RefCell<Vec<bool>> = const { RefCell::new(Vec::new()) };
}

/// The answer to one edge-disable (failure-scenario) probe: the objective
/// state the failure would produce. Unlike [`Probe`] it is not committable —
/// failure sweeps are what-if fans over a fixed base state, and an adopted
/// failure mask is expressed by constructing a masked evaluator
/// ([`IncrementalEvaluator::new_with_failures`]) instead.
#[derive(Clone, Debug)]
pub struct DisableProbe {
    /// The disabled (failed) edges, in probe order.
    pub dead: Vec<EdgeId>,
    /// Total per-link loads under the failure (bit-identical to a
    /// from-scratch evaluation on the edge-deleted topology; failed links
    /// always carry exactly `0.0`).
    pub loads: Vec<f64>,
    /// Fortz–Thorup congestion cost Φ of `loads`.
    pub phi: f64,
    /// Maximum link utilization of `loads`.
    pub mlu: f64,
    /// Number of destinations whose DAG had to be repaired or rebuilt.
    pub dirty_count: usize,
}

/// The answer to one speculative probe: the full objective state the weight
/// change would produce, plus the repaired per-destination data needed to
/// [`IncrementalEvaluator::commit`] it in place.
#[derive(Clone, Debug)]
pub struct Probe {
    /// The probed edge.
    pub edge: EdgeId,
    /// The probed weight.
    pub weight: f64,
    /// Total per-link loads under the change (bit-identical to a
    /// from-scratch evaluation).
    pub loads: Vec<f64>,
    /// Fortz–Thorup congestion cost Φ of `loads`.
    pub phi: f64,
    /// Maximum link utilization of `loads`.
    pub mlu: f64,
    /// Number of destinations whose DAG had to be touched.
    pub dirty_count: usize,
    /// Repaired `(dest index, DAG)` pairs, ascending by index.
    dirty: Vec<(usize, Arc<SpDag>)>,
    /// Repaired load partials, one `edge_count` chunk per `dirty` entry, in
    /// the same order — a single contiguous slab instead of one `Vec` per
    /// dirty destination.
    dirty_partials: Vec<f64>,
    /// Base-state generation this probe was computed against.
    generation: u64,
}

/// Incremental evaluation state for one `(network, demands, waypoints)`
/// workload under an evolving weight vector.
///
/// See the [module docs](self) for the algorithm. Construction performs one
/// full from-scratch evaluation (counted in `ecmp.recomputes` like any
/// other); afterwards [`probe`](Self::probe) answers single-edge what-ifs by
/// repairing only the affected destinations.
///
/// ```
/// use segrout_core::{DemandList, IncrementalEvaluator, Network, NodeId, EdgeId,
///                    Router, WaypointSetting, WeightSetting};
///
/// let mut b = Network::builder(4);
/// b.link(NodeId(0), NodeId(1), 1.0);
/// b.link(NodeId(1), NodeId(3), 1.0);
/// b.link(NodeId(0), NodeId(2), 1.0);
/// b.link(NodeId(2), NodeId(3), 1.0);
/// let net = b.build()?;
/// let mut demands = DemandList::new();
/// demands.push(NodeId(0), NodeId(3), 2.0);
///
/// let weights = WeightSetting::unit(&net);
/// let wp = WaypointSetting::none(1);
/// let mut eval = IncrementalEvaluator::new(&net, &weights, &demands, &wp)?;
/// assert_eq!(eval.loads(), &[1.0, 1.0, 1.0, 1.0]);
///
/// // What if edge 2 becomes longer? All flow shifts onto the upper path.
/// let probe = eval.probe(EdgeId(2), 5.0)?;
/// assert_eq!(probe.loads, vec![2.0, 2.0, 0.0, 0.0]);
///
/// // Accept the change in place; the state now matches a fresh evaluation.
/// eval.commit(probe);
/// let mut w2 = WeightSetting::unit(&net);
/// w2.set(EdgeId(2), 5.0);
/// let fresh = Router::new(&net, &w2).evaluate(&demands, &wp)?;
/// assert_eq!(eval.mlu().to_bits(), fresh.mlu.to_bits());
/// # Ok::<(), segrout_core::TeError>(())
/// ```
pub struct IncrementalEvaluator<'n> {
    net: &'n Network,
    weights: Vec<f64>,
    /// Base disabled-edge mask (failed links), empty for the intact
    /// topology. Every DAG, repair and probe honors it; weight probes on a
    /// disabled edge are provable no-ops.
    disabled: Vec<bool>,
    /// Distinct destinations, ascending (the summation order).
    dests: Vec<NodeId>,
    /// Flat `n × dests` slab of pre-folded injection seeds: row `i` is
    /// `node_flow` after seeding destination `i`'s injections. Injections
    /// and reachability are weight-independent (validated once at build), so
    /// probes seed propagation with a row copy instead of re-folding a few
    /// hundred injections per dirty destination.
    seeds: Vec<f64>,
    /// Current SP-DAG per destination.
    dags: Vec<Arc<SpDag>>,
    /// Per-destination link-load partials and their prefix folds, in flat
    /// slabs; `loads` is the fold over all rows.
    arena: LoadArena,
    /// Effective link capacities. Initialized from the network; capacity
    /// events ([`set_capacity`](Self::set_capacity)) override entries here so
    /// a long-running evaluator can track capacity changes without rebuilding
    /// the (borrowed, immutable) [`Network`]. Capacities never influence
    /// routing — only the Φ/MLU readouts — so an override is exact.
    caps: Vec<f64>,
    loads: Vec<f64>,
    phi: f64,
    mlu: f64,
    /// Repair-frontier threshold above which a dirty destination falls back
    /// to a full Dijkstra.
    frontier_cap: usize,
    /// Bumped on every commit; probes from older generations are rejected.
    generation: u64,
}

impl<'n> IncrementalEvaluator<'n> {
    /// Builds the evaluator for a demand list under a waypoint setting —
    /// the same segment decomposition as [`crate::Router::evaluate`].
    pub fn new(
        net: &'n Network,
        weights: &WeightSetting,
        demands: &DemandList,
        waypoints: &WaypointSetting,
    ) -> Result<Self, TeError> {
        if waypoints.len() != demands.len() {
            return Err(TeError::InvalidWaypoints(format!(
                "waypoint table has {} rows for {} demands",
                waypoints.len(),
                demands.len()
            )));
        }
        let mut segments = Vec::with_capacity(demands.len());
        for (i, d) in demands.iter().enumerate() {
            for (src, dst, amount) in waypoints.segments_of(i, d) {
                segments.push(Segment { src, dst, amount });
            }
        }
        Self::for_segments(net, weights, &segments)
    }

    /// Builds the evaluator with a set of failed (disabled) links baked into
    /// the base state: every DAG is built, repaired and probed as if the
    /// failed edges were deleted from the topology. Returns
    /// [`TeError::Unroutable`] when the failures cut some demand off its
    /// destination — the caller classifies that scenario as disconnected.
    pub fn new_with_failures(
        net: &'n Network,
        weights: &WeightSetting,
        demands: &DemandList,
        waypoints: &WaypointSetting,
        failed: &[EdgeId],
    ) -> Result<Self, TeError> {
        if waypoints.len() != demands.len() {
            return Err(TeError::InvalidWaypoints(format!(
                "waypoint table has {} rows for {} demands",
                waypoints.len(),
                demands.len()
            )));
        }
        let mut segments = Vec::with_capacity(demands.len());
        for (i, d) in demands.iter().enumerate() {
            for (src, dst, amount) in waypoints.segments_of(i, d) {
                segments.push(Segment { src, dst, amount });
            }
        }
        let mut disabled = vec![false; net.edge_count()];
        for &e in failed {
            disabled[e.index()] = true;
        }
        Self::for_segments_masked(net, weights, &segments, disabled)
    }

    /// Builds the evaluator for an explicit segment list.
    pub fn for_segments(
        net: &'n Network,
        weights: &WeightSetting,
        segments: &[Segment],
    ) -> Result<Self, TeError> {
        Self::for_segments_masked(net, weights, segments, Vec::new())
    }

    /// Builds the evaluator for an explicit segment list under a base
    /// disabled-edge mask (empty = intact topology).
    fn for_segments_masked(
        net: &'n Network,
        weights: &WeightSetting,
        segments: &[Segment],
        disabled: Vec<bool>,
    ) -> Result<Self, TeError> {
        let weights = weights.as_slice().to_vec();
        let grouped: Vec<(NodeId, Vec<(NodeId, f64)>)> =
            group_by_destination(segments).into_iter().collect();
        let n = net.node_count();
        let m = net.edge_count();

        // Full build: one Dijkstra + one propagation per destination, fanned
        // out on the pool (pure per-destination work, summed on the caller).
        let recomputes = recompute_counter();
        let built = segrout_par::par_map(grouped.len(), |i| {
            let (t, injections) = &grouped[i];
            recomputes.inc();
            let dag = Arc::new(shortest_path_dag_masked(
                net.graph(),
                &weights,
                *t,
                &disabled,
            ));
            let mut partial = vec![0.0; m];
            let mut node_flow = vec![0.0; n];
            propagate_destination(net, &dag, injections, &mut partial, &mut node_flow)
                .map(|()| (dag, partial))
        });

        let mut dests = Vec::with_capacity(grouped.len());
        let mut seeds = vec![0.0; grouped.len() * n];
        let mut dags = Vec::with_capacity(grouped.len());
        let mut rows = Vec::with_capacity(grouped.len() * m);
        for ((i, (t, inj)), b) in grouped.into_iter().enumerate().zip(built) {
            let (dag, partial) = b?;
            // The same fold the router's injection loop performs, cached.
            let seed_row = &mut seeds[i * n..(i + 1) * n];
            for &(s, amount) in &inj {
                seed_row[s.index()] += amount;
            }
            dests.push(t);
            dags.push(dag);
            rows.extend_from_slice(&partial);
        }

        let arena = LoadArena::new(m, dests.len(), rows);
        counters().arena_rebuilds.inc();
        let mut loads = Vec::with_capacity(m);
        arena.total(&mut loads);
        let caps = net.capacities().to_vec();
        let phi = fortz_phi(&loads, &caps);
        let mlu = max_link_utilization(&loads, &caps);
        Ok(Self {
            net,
            weights,
            disabled,
            dests,
            seeds,
            dags,
            arena,
            caps,
            loads,
            phi,
            mlu,
            frontier_cap: (n / 2).max(8),
            generation: 0,
        })
    }

    /// Overrides the repair-frontier fallback threshold (number of affected
    /// nodes above which a dirty destination is rebuilt from scratch).
    pub fn with_frontier_cap(mut self, cap: usize) -> Self {
        self.frontier_cap = cap.max(1);
        self
    }

    /// The network being evaluated.
    #[inline]
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The current (committed) weight vector.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The base disabled-edge mask (empty for the intact topology).
    #[inline]
    pub fn disabled(&self) -> &[bool] {
        &self.disabled
    }

    /// The effective link capacities (network capacities plus any
    /// [`set_capacity`](Self::set_capacity) overrides).
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Current total per-link loads.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Current Fortz–Thorup congestion cost Φ.
    #[inline]
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Current maximum link utilization.
    #[inline]
    pub fn mlu(&self) -> f64 {
        self.mlu
    }

    /// Number of distinct destinations in the workload (the per-probe
    /// denominator of the dirty-destination ratio).
    #[inline]
    pub fn destination_count(&self) -> usize {
        self.dests.len()
    }

    /// Answers "what are loads/Φ/MLU if edge `e`'s weight becomes `new_w`?"
    /// without mutating the evaluator. Read-only: speculative probes for a
    /// whole candidate neighbourhood can run concurrently against one shared
    /// base state.
    ///
    /// # Panics
    /// Panics if `new_w` is not a positive finite real.
    pub fn probe(&self, e: EdgeId, new_w: f64) -> Result<Probe, TeError> {
        assert!(
            new_w.is_finite() && new_w > 0.0,
            "weight must be positive finite"
        );
        let c = counters();
        c.probes.inc();
        SCRATCH.with(|s| {
            let (node_flow, weights) = &mut *s.borrow_mut();
            node_flow.resize(self.net.node_count(), 0.0);
            weights.clear();
            weights.extend_from_slice(&self.weights);
            weights[e.index()] = new_w;
            self.probe_with(e, new_w, weights, node_flow)
        })
    }

    /// Probe body, working on borrowed scratch (`weights` already patched).
    fn probe_with(
        &self,
        e: EdgeId,
        new_w: f64,
        weights: &[f64],
        node_flow: &mut [f64],
    ) -> Result<Probe, TeError> {
        let c = counters();
        let g = self.net.graph();
        let (u, v) = g.endpoints(e);
        let old_w = self.weights[e.index()];
        let m = self.net.edge_count();
        let recomputes = recompute_counter();

        let mut dirty: Vec<(usize, Arc<SpDag>)> = Vec::new();
        let mut dirty_partials: Vec<f64> = Vec::new();
        if new_w != old_w && !edge_disabled(&self.disabled, e) {
            for (i, dag) in self.dags.iter().enumerate() {
                if !edge_change_affects_dag(dag, e, u, v, new_w) {
                    continue;
                }
                let repaired = match update_shortest_path_dag_masked(
                    g,
                    weights,
                    dag,
                    e,
                    old_w,
                    self.frontier_cap,
                    &self.disabled,
                ) {
                    SpDagUpdate::Unchanged => continue,
                    SpDagUpdate::Repaired(d, _) => {
                        c.repairs.inc();
                        d
                    }
                    SpDagUpdate::Rebuilt(d) => {
                        recomputes.inc();
                        d
                    }
                };
                let base = dirty_partials.len();
                dirty_partials.resize(base + m, 0.0);
                // Seed from the cached injection fold (bitwise the values the
                // injection loop produces; reachability was validated at
                // build time and cannot change under positive finite weights).
                let n = self.net.node_count();
                node_flow.copy_from_slice(&self.seeds[i * n..(i + 1) * n]);
                spread_seeded(self.net, &repaired, &mut dirty_partials[base..], node_flow);
                dirty.push((i, Arc::new(repaired)));
            }
        }
        c.dirty_dests.add(dirty.len() as u64);
        c.clean_dests.add((self.dests.len() - dirty.len()) as u64);

        let mut loads = Vec::with_capacity(m);
        self.fold_with_dirty(&dirty, &dirty_partials, &mut loads);
        let phi = fortz_phi(&loads, &self.caps);
        let mlu = max_link_utilization(&loads, &self.caps);
        Ok(Probe {
            edge: e,
            weight: new_w,
            dirty_count: dirty.len(),
            loads,
            phi,
            mlu,
            dirty,
            dirty_partials,
            generation: self.generation,
        })
    }

    /// Patches the totals for a probe: the fold up to the first dirty
    /// destination is exactly the cached prefix row (or the committed totals
    /// when no destination is dirty), so the probe copies it and only
    /// re-folds the tail — cached partials for clean destinations,
    /// substituted ones for dirty, in ascending destination order as always.
    /// This is the single load-fold code path for weight probes and
    /// edge-disable probes, so both stay bit-identical to scratch.
    fn fold_with_dirty<T>(
        &self,
        dirty: &[(usize, T)],
        dirty_partials: &[f64],
        loads: &mut Vec<f64>,
    ) {
        let c = counters();
        let m = self.net.edge_count();
        if dirty.is_empty() {
            loads.extend_from_slice(&self.loads);
            c.arena_reuses.inc();
            return;
        }
        let first = dirty[0].0;
        if first > 0 {
            loads.extend_from_slice(self.arena.prefix_row(first - 1));
            c.arena_reuses.inc();
        } else {
            loads.resize(m, 0.0);
        }
        let mut next_dirty = 0usize;
        for i in first..self.dests.len() {
            let row = if next_dirty < dirty.len() && dirty[next_dirty].0 == i {
                let chunk = &dirty_partials[next_dirty * m..(next_dirty + 1) * m];
                next_dirty += 1;
                chunk
            } else {
                self.arena.row(i)
            };
            add_assign(loads, row);
        }
    }

    /// Answers "what are loads/Φ/MLU if the links in `dead` fail?" without
    /// mutating the evaluator — the failure-scenario counterpart of
    /// [`probe`](Self::probe). Read-only, so a whole [`FailureSet`] sweep can
    /// fan scenarios over the `segrout-par` pool against one shared base
    /// state.
    ///
    /// The failed edges are masked out exactly as if deleted: destinations
    /// whose DAG does not use any dead edge are provably clean and skipped;
    /// dirty destinations are repaired with the bounded
    /// [`disable_edge_update`] (single dead on-DAG edge) or rebuilt under
    /// the mask, and the result is bit-identical to a from-scratch
    /// evaluation on the edge-deleted topology. A scenario that cuts some
    /// demand off its destination returns [`TeError::Unroutable`] naming a
    /// severed `(src, dst)` pair — the caller classifies it as disconnected.
    ///
    /// Edges already disabled in the base mask are ignored; an empty `dead`
    /// set reproduces the committed state.
    ///
    /// [`FailureSet`]: crate::failure::FailureSet
    pub fn probe_disable(&self, dead: &[EdgeId]) -> Result<DisableProbe, TeError> {
        let c = counters();
        c.disable_probes.inc();
        let g = self.net.graph();
        let n = self.net.node_count();
        let m = self.net.edge_count();
        let recomputes = recompute_counter();

        MASK_SCRATCH.with(|mask_cell| {
            SCRATCH.with(|s| {
                let (node_flow, _) = &mut *s.borrow_mut();
                node_flow.resize(n, 0.0);
                let mask = &mut *mask_cell.borrow_mut();
                mask.clear();
                mask.resize(m, false);
                if !self.disabled.is_empty() {
                    mask.copy_from_slice(&self.disabled);
                }
                let mut new_dead = 0usize;
                for &e in dead {
                    if !mask[e.index()] {
                        mask[e.index()] = true;
                        new_dead += 1;
                    }
                }

                let mut dirty: Vec<(usize, Arc<SpDag>)> = Vec::new();
                let mut dirty_partials: Vec<f64> = Vec::new();
                if new_dead > 0 {
                    for (i, dag) in self.dags.iter().enumerate() {
                        // Removal never adds tight edges: a destination is
                        // dirty iff some dead edge is on its current DAG.
                        let mut on_dag = None;
                        let mut on_dag_count = 0usize;
                        for &e in dead {
                            if !edge_disabled(&self.disabled, e) && dag.edge_on_dag[e.index()] {
                                on_dag = Some(e);
                                on_dag_count += 1;
                            }
                        }
                        let repaired = match (on_dag, on_dag_count) {
                            (None, _) => continue,
                            (Some(e), 1) => {
                                // Bounded dynamic repair under the full mask:
                                // the other dead edges are off this DAG, so
                                // `dag` is already correct for the mask
                                // without `e`.
                                match disable_edge_update(
                                    g,
                                    &self.weights,
                                    dag,
                                    e,
                                    self.frontier_cap,
                                    mask,
                                ) {
                                    SpDagUpdate::Unchanged => {
                                        unreachable!("on-DAG edge disable cannot be clean")
                                    }
                                    SpDagUpdate::Repaired(d, _) => {
                                        c.repairs.inc();
                                        d
                                    }
                                    SpDagUpdate::Rebuilt(d) => {
                                        recomputes.inc();
                                        d
                                    }
                                }
                            }
                            _ => {
                                // Two or more dead edges on one DAG (only
                                // possible for multi-link scenarios): full
                                // masked rebuild.
                                recomputes.inc();
                                shortest_path_dag_masked(g, &self.weights, dag.target, mask)
                            }
                        };
                        // Failures can sever sources — recheck every seeded
                        // injection before spreading (spread_seeded drops
                        // flow at unreachable nodes silently).
                        let seed_row = &self.seeds[i * n..(i + 1) * n];
                        for (j, &f) in seed_row.iter().enumerate() {
                            if f > 0.0 && !repaired.reaches_target(NodeId(j as u32)) {
                                return Err(TeError::Unroutable {
                                    src: NodeId(j as u32),
                                    dst: self.dests[i],
                                });
                            }
                        }
                        let base = dirty_partials.len();
                        dirty_partials.resize(base + m, 0.0);
                        node_flow.copy_from_slice(seed_row);
                        spread_seeded(self.net, &repaired, &mut dirty_partials[base..], node_flow);
                        dirty.push((i, Arc::new(repaired)));
                    }
                }
                c.dirty_dests.add(dirty.len() as u64);
                c.clean_dests.add((self.dests.len() - dirty.len()) as u64);

                let mut loads = Vec::with_capacity(m);
                self.fold_with_dirty(&dirty, &dirty_partials, &mut loads);
                let phi = fortz_phi(&loads, &self.caps);
                let mlu = max_link_utilization(&loads, &self.caps);
                Ok(DisableProbe {
                    dead: dead.to_vec(),
                    loads,
                    phi,
                    mlu,
                    dirty_count: dirty.len(),
                })
            })
        })
    }

    /// Applies an accepted probe in place: the probed weight becomes the base
    /// weight, repaired DAGs and partials replace the stale ones, and the
    /// cached loads/Φ/MLU move to the probe's values.
    ///
    /// # Panics
    /// Panics if the probe was computed against an older committed state
    /// (its answer would no longer be valid).
    pub fn commit(&mut self, probe: Probe) {
        assert_eq!(
            probe.generation, self.generation,
            "probe is stale: it was computed against a previous base state"
        );
        self.weights[probe.edge.index()] = probe.weight;
        let m = self.net.edge_count();
        let first_dirty = probe.dirty.first().map(|&(i, _)| i);
        for (d, (i, dag)) in probe.dirty.into_iter().enumerate() {
            self.dags[i] = dag;
            self.arena
                .row_mut(i)
                .copy_from_slice(&probe.dirty_partials[d * m..(d + 1) * m]);
        }
        if let Some(first) = first_dirty {
            self.arena.refold_from(first);
            counters().arena_rebuilds.inc();
        }
        self.loads = probe.loads;
        self.phi = probe.phi;
        self.mlu = probe.mlu;
        self.generation += 1;
    }

    /// Recomputes the cached totals from the arena (after rows changed) and
    /// bumps the generation. `first_dirty` is the lowest changed row, if any.
    fn refold_and_commit(&mut self, first_dirty: Option<usize>) {
        if let Some(first) = first_dirty {
            self.arena.refold_from(first);
            counters().arena_rebuilds.inc();
        }
        let mut loads = std::mem::take(&mut self.loads);
        self.arena.total(&mut loads);
        self.loads = loads;
        self.phi = fortz_phi(&self.loads, &self.caps);
        self.mlu = max_link_utilization(&self.loads, &self.caps);
        self.generation += 1;
    }

    /// Overrides the capacity of link `e` in place — the event-application
    /// path for capacity changes. Capacities never influence routing, so only
    /// the cached Φ/MLU are recomputed (from the unchanged loads, with the
    /// exact operation sequence a fresh build on the re-capacitated network
    /// would use — the result is bit-identical to that rebuild). Returns
    /// whether anything changed; outstanding probes are invalidated when it
    /// did.
    ///
    /// # Errors
    /// [`TeError::InvalidCapacity`] when `cap` is not positive finite — the
    /// evaluator is left untouched.
    pub fn set_capacity(&mut self, e: EdgeId, cap: f64) -> Result<bool, TeError> {
        if !cap.is_finite() || cap <= 0.0 {
            return Err(TeError::InvalidCapacity {
                edge: e.index(),
                value: cap,
            });
        }
        if self.caps[e.index()].to_bits() == cap.to_bits() {
            return Ok(false);
        }
        self.caps[e.index()] = cap;
        self.phi = fortz_phi(&self.loads, &self.caps);
        self.mlu = max_link_utilization(&self.loads, &self.caps);
        self.generation += 1;
        Ok(true)
    }

    /// Replaces the demand workload in place — the event-application path for
    /// demand updates and matrix replacement.
    ///
    /// When the new workload routes to the same destination set, only the
    /// destinations whose injection seeds actually changed are re-propagated
    /// (over their unchanged DAGs — weights did not move), and the load fold
    /// is repaired from the first changed row. When the destination set
    /// differs, the evaluator rebuilds in place with the full construction
    /// path. Either way the resulting state is bit-identical to a fresh
    /// evaluator built on the new workload.
    ///
    /// # Errors
    /// [`TeError::Unroutable`] when some new segment cannot reach its
    /// destination, and [`TeError::InvalidWaypoints`] on a row-count mismatch
    /// — the evaluator is left untouched in both cases.
    pub fn set_workload(
        &mut self,
        demands: &DemandList,
        waypoints: &WaypointSetting,
    ) -> Result<bool, TeError> {
        if waypoints.len() != demands.len() {
            return Err(TeError::InvalidWaypoints(format!(
                "waypoint table has {} rows for {} demands",
                waypoints.len(),
                demands.len()
            )));
        }
        let mut segments = Vec::with_capacity(demands.len());
        for (i, d) in demands.iter().enumerate() {
            for (src, dst, amount) in waypoints.segments_of(i, d) {
                segments.push(Segment { src, dst, amount });
            }
        }
        let grouped: Vec<(NodeId, Vec<(NodeId, f64)>)> =
            group_by_destination(&segments).into_iter().collect();
        if grouped.len() != self.dests.len()
            || grouped.iter().zip(&self.dests).any(|((t, _), d)| t != d)
        {
            // Destination set changed: full in-place rebuild (one Dijkstra +
            // one propagation per destination, like construction).
            return self.rebuild_for_segments(&segments).map(|()| true);
        }
        let n = self.net.node_count();
        let m = self.net.edge_count();
        // Same destinations: the DAGs are all still valid. Re-fold the seed
        // slab (the same injection fold construction performs) and find the
        // rows whose seeds actually moved.
        let mut new_seeds = vec![0.0; grouped.len() * n];
        for (i, (_, inj)) in grouped.iter().enumerate() {
            let seed_row = &mut new_seeds[i * n..(i + 1) * n];
            for &(s, amount) in inj {
                seed_row[s.index()] += amount;
            }
        }
        let dirty: Vec<usize> = (0..grouped.len())
            .filter(|&i| {
                let new = &new_seeds[i * n..(i + 1) * n];
                let old = &self.seeds[i * n..(i + 1) * n];
                new.iter().zip(old).any(|(a, b)| a.to_bits() != b.to_bits())
            })
            .collect();
        if dirty.is_empty() {
            return Ok(false);
        }
        let c = counters();
        c.dirty_dests.add(dirty.len() as u64);
        c.clean_dests.add((self.dests.len() - dirty.len()) as u64);
        // Re-propagate the changed destinations into temporaries first: a new
        // source may be unreachable, and an error must leave the evaluator
        // untouched. `propagate_destination` is the exact function a fresh
        // build runs per destination, reachability check included.
        let mut new_rows = vec![0.0; dirty.len() * m];
        SCRATCH.with(|s| {
            let (node_flow, _) = &mut *s.borrow_mut();
            for (k, &i) in dirty.iter().enumerate() {
                node_flow.clear();
                node_flow.resize(n, 0.0);
                propagate_destination(
                    self.net,
                    &self.dags[i],
                    &grouped[i].1,
                    &mut new_rows[k * m..(k + 1) * m],
                    node_flow,
                )?;
            }
            Ok::<(), TeError>(())
        })?;
        self.seeds = new_seeds;
        for (k, &i) in dirty.iter().enumerate() {
            self.arena
                .row_mut(i)
                .copy_from_slice(&new_rows[k * m..(k + 1) * m]);
        }
        self.refold_and_commit(dirty.first().copied());
        Ok(true)
    }

    /// Full in-place rebuild for a new segment list (destination set changed):
    /// runs the construction path and splices the result in, preserving the
    /// committed weights, the disabled mask, any capacity overrides, and the
    /// generation ordering.
    fn rebuild_for_segments(&mut self, segments: &[Segment]) -> Result<(), TeError> {
        let w = WeightSetting::new(self.net, self.weights.clone())
            .expect("committed weights are positive finite");
        let fresh = Self::for_segments_masked(self.net, &w, segments, self.disabled.clone())?;
        self.dests = fresh.dests;
        self.seeds = fresh.seeds;
        self.dags = fresh.dags;
        self.arena = fresh.arena;
        self.loads = fresh.loads;
        // Capacity overrides survive the rebuild (fresh computed Φ/MLU from
        // the network's nominal capacities).
        self.phi = fortz_phi(&self.loads, &self.caps);
        self.mlu = max_link_utilization(&self.loads, &self.caps);
        self.generation += 1;
        Ok(())
    }

    /// Takes link `e` down (`up = false`) or back up (`up = true`) in place —
    /// the event-application path for link-state changes. Returns whether the
    /// state changed (a repeated event is a no-op).
    ///
    /// Both directions repair only the destinations whose DAG is actually
    /// affected, exactly as a probe would, and the committed state is
    /// bit-identical to a fresh evaluator built with the new mask.
    ///
    /// # Errors
    /// [`TeError::Unroutable`] when taking the link down severs a demand from
    /// its destination — the evaluator is left untouched.
    pub fn set_link_state(&mut self, e: EdgeId, up: bool) -> Result<bool, TeError> {
        if up {
            self.enable_edge(e)
        } else {
            self.disable_edge(e)
        }
    }

    fn disable_edge(&mut self, e: EdgeId) -> Result<bool, TeError> {
        if edge_disabled(&self.disabled, e) {
            return Ok(false);
        }
        let g = self.net.graph();
        let n = self.net.node_count();
        let m = self.net.edge_count();
        let c = counters();
        let recomputes = recompute_counter();
        let mut mask = if self.disabled.is_empty() {
            vec![false; m]
        } else {
            self.disabled.clone()
        };
        mask[e.index()] = true;

        let mut dirty: Vec<(usize, Arc<SpDag>)> = Vec::new();
        let mut dirty_partials: Vec<f64> = Vec::new();
        SCRATCH.with(|s| {
            let (node_flow, _) = &mut *s.borrow_mut();
            node_flow.resize(n, 0.0);
            for (i, dag) in self.dags.iter().enumerate() {
                // Removal never adds tight edges: dirty iff `e` is on the DAG.
                if !dag.edge_on_dag[e.index()] {
                    continue;
                }
                let repaired =
                    match disable_edge_update(g, &self.weights, dag, e, self.frontier_cap, &mask) {
                        SpDagUpdate::Unchanged => {
                            unreachable!("on-DAG edge disable cannot be clean")
                        }
                        SpDagUpdate::Repaired(d, _) => {
                            c.repairs.inc();
                            d
                        }
                        SpDagUpdate::Rebuilt(d) => {
                            recomputes.inc();
                            d
                        }
                    };
                // The failure can sever sources — validate every seeded
                // injection before mutating anything.
                let seed_row = &self.seeds[i * n..(i + 1) * n];
                for (j, &f) in seed_row.iter().enumerate() {
                    if f > 0.0 && !repaired.reaches_target(NodeId(j as u32)) {
                        return Err(TeError::Unroutable {
                            src: NodeId(j as u32),
                            dst: self.dests[i],
                        });
                    }
                }
                let base = dirty_partials.len();
                dirty_partials.resize(base + m, 0.0);
                node_flow.copy_from_slice(seed_row);
                spread_seeded(self.net, &repaired, &mut dirty_partials[base..], node_flow);
                dirty.push((i, Arc::new(repaired)));
            }
            Ok(())
        })?;
        self.disabled = mask;
        let first = dirty.first().map(|&(i, _)| i);
        for (k, (i, dag)) in dirty.into_iter().enumerate() {
            self.dags[i] = dag;
            self.arena
                .row_mut(i)
                .copy_from_slice(&dirty_partials[k * m..(k + 1) * m]);
        }
        self.refold_and_commit(first);
        Ok(true)
    }

    fn enable_edge(&mut self, e: EdgeId) -> Result<bool, TeError> {
        if !edge_disabled(&self.disabled, e) {
            return Ok(false);
        }
        let g = self.net.graph();
        let n = self.net.node_count();
        let m = self.net.edge_count();
        let recomputes = recompute_counter();
        let mut mask = self.disabled.clone();
        mask[e.index()] = false;
        let (u, v) = g.endpoints(e);
        let w_e = self.weights[e.index()];

        let mut dirty: Vec<(usize, Arc<SpDag>)> = Vec::new();
        let mut dirty_partials: Vec<f64> = Vec::new();
        SCRATCH.with(|s| {
            let (node_flow, _) = &mut *s.borrow_mut();
            node_flow.resize(n, 0.0);
            for (i, dag) in self.dags.iter().enumerate() {
                // Re-enabling `e` is a weight drop from "unusable" to `w_e`:
                // the DAG moves only if the revived edge reaches the current
                // distance at its tail (the same affectedness test weight
                // decreases use; `e` is off the masked DAG by construction).
                if !edge_change_affects_dag(dag, e, u, v, w_e) {
                    continue;
                }
                // A fresh Dijkstra under the shrunk mask — exactly what a
                // from-scratch build runs for this destination.
                recomputes.inc();
                let rebuilt = shortest_path_dag_masked(g, &self.weights, dag.target, &mask);
                let base = dirty_partials.len();
                dirty_partials.resize(base + m, 0.0);
                // Reachability only improves when a link comes back, so the
                // build-time validation still covers every seeded source.
                node_flow.copy_from_slice(&self.seeds[i * n..(i + 1) * n]);
                spread_seeded(self.net, &rebuilt, &mut dirty_partials[base..], node_flow);
                dirty.push((i, Arc::new(rebuilt)));
            }
        });
        self.disabled = mask;
        let first = dirty.first().map(|&(i, _)| i);
        for (k, (i, dag)) in dirty.into_iter().enumerate() {
            self.dags[i] = dag;
            self.arena
                .row_mut(i)
                .copy_from_slice(&dirty_partials[k * m..(k + 1) * m]);
        }
        self.refold_and_commit(first);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Router;

    /// Diamond with an extra direct edge — gives probes both clean and dirty
    /// destinations to chew on.
    fn net() -> Network {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 2.0); // e0
        b.link(NodeId(1), NodeId(3), 2.0); // e1
        b.link(NodeId(0), NodeId(2), 1.0); // e2
        b.link(NodeId(2), NodeId(3), 1.0); // e3
        b.link(NodeId(0), NodeId(3), 1.0); // e4
        b.build().unwrap()
    }

    fn demands() -> DemandList {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        d.push(NodeId(1), NodeId(3), 1.0);
        d.push(NodeId(0), NodeId(2), 0.5);
        d
    }

    fn fresh_bits(net: &Network, w: &WeightSetting, d: &DemandList) -> (Vec<u64>, u64, u64) {
        let r = Router::new(net, w)
            .evaluate(d, &WaypointSetting::none(d.len()))
            .unwrap();
        let phi = fortz_phi(&r.loads, net.capacities());
        (
            r.loads.iter().map(|x| x.to_bits()).collect(),
            phi.to_bits(),
            r.mlu.to_bits(),
        )
    }

    fn eval_bits(e: &IncrementalEvaluator<'_>) -> (Vec<u64>, u64, u64) {
        (
            e.loads().iter().map(|x| x.to_bits()).collect(),
            e.phi().to_bits(),
            e.mlu().to_bits(),
        )
    }

    #[test]
    fn construction_matches_router() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        assert_eq!(eval_bits(&eval), fresh_bits(&net, &w, &d));
        assert_eq!(eval.destination_count(), 2); // dests {2, 3}
    }

    #[test]
    fn probe_and_commit_track_scratch_evaluation() {
        let net = net();
        let d = demands();
        let mut w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        // A sequence of single-edge changes, each probed then committed.
        for (e, nw) in [
            (EdgeId(4), 3.0),
            (EdgeId(0), 1.0),
            (EdgeId(3), 4.0),
            (EdgeId(4), 2.0),
            (EdgeId(2), 5.0),
        ] {
            let probe = eval.probe(e, nw).unwrap();
            w.set(e, nw);
            let fresh = fresh_bits(&net, &w, &d);
            assert_eq!(
                (
                    probe.loads.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    probe.phi.to_bits(),
                    probe.mlu.to_bits()
                ),
                fresh,
                "probe {e:?}->{nw} diverged from scratch"
            );
            eval.commit(probe);
            assert_eq!(eval_bits(&eval), fresh, "committed state diverged");
        }
    }

    #[test]
    fn clean_probe_touches_nothing() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        // e1 (1->3) is on DAGs; e0 -> increasing e0 while 0 has the direct
        // edge e4 keeps... use an edge with no effect: increase e2's weight
        // partner: probing the same weight is trivially clean.
        let probe = eval.probe(EdgeId(0), 1.0).unwrap();
        assert_eq!(probe.dirty_count, 0);
        assert_eq!(
            probe.loads.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            eval.loads().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_probe_is_rejected() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        let p1 = eval.probe(EdgeId(0), 3.0).unwrap();
        let p2 = eval.probe(EdgeId(1), 3.0).unwrap();
        eval.commit(p1);
        eval.commit(p2); // computed against the pre-p1 state
    }

    #[test]
    fn unroutable_workload_errors_at_construction() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        let w = WeightSetting::unit(&net);
        let err = IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(1))
            .err()
            .expect("must be unroutable");
        assert_eq!(
            err,
            TeError::Unroutable {
                src: NodeId(0),
                dst: NodeId(2)
            }
        );
    }

    #[test]
    fn waypointed_workloads_are_supported() {
        let net = net();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let mut wp = WaypointSetting::none(1);
        wp.set(0, vec![NodeId(2)]);
        let w = WeightSetting::unit(&net);
        let eval = IncrementalEvaluator::new(&net, &w, &d, &wp).unwrap();
        let fresh = Router::new(&net, &w).evaluate(&d, &wp).unwrap();
        assert_eq!(
            eval.loads().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            fresh.loads.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The diamond net with the direct edge (e4) deleted — the topology an
    /// e4 failure must route on.
    fn net_without_e4() -> Network {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 2.0); // e0
        b.link(NodeId(1), NodeId(3), 2.0); // e1
        b.link(NodeId(0), NodeId(2), 1.0); // e2
        b.link(NodeId(2), NodeId(3), 1.0); // e3
        b.build().unwrap()
    }

    #[test]
    fn disable_probe_matches_scratch_on_deleted_topology() {
        let net = net();
        let net2 = net_without_e4();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let w2 = WeightSetting::unit(&net2);
        let eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        let probe = eval.probe_disable(&[EdgeId(4)]).unwrap();
        let fresh = fresh_bits(&net2, &w2, &d);
        // e4 is the last edge, so ids 0..4 coincide between the topologies.
        assert_eq!(
            probe.loads[..4]
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            fresh.0,
            "disable probe diverged from edge-deleted scratch"
        );
        assert_eq!(probe.loads[4], 0.0, "failed link must carry no flow");
        assert_eq!(probe.mlu.to_bits(), fresh.2);
        assert!(probe.dirty_count >= 1);
    }

    #[test]
    fn disable_probe_classifies_disconnection() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        // e1 (1->3) is node 1's only route to 3.
        let err = eval.probe_disable(&[EdgeId(1)]).unwrap_err();
        assert_eq!(
            err,
            TeError::Unroutable {
                src: NodeId(1),
                dst: NodeId(3)
            }
        );
        // The evaluator is untouched: a fresh intact probe still answers.
        let intact = eval.probe_disable(&[]).unwrap();
        assert_eq!(
            intact.loads.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            eval.loads().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(intact.dirty_count, 0);
    }

    #[test]
    fn masked_base_evaluator_matches_deleted_topology() {
        let net = net();
        let net2 = net_without_e4();
        let d = demands();
        let mut w = WeightSetting::unit(&net);
        let mut w2 = WeightSetting::unit(&net2);
        let mut eval = IncrementalEvaluator::new_with_failures(
            &net,
            &w,
            &d,
            &WaypointSetting::none(d.len()),
            &[EdgeId(4)],
        )
        .unwrap();
        assert_eq!(eval.disabled(), &[false, false, false, false, true]);
        let f0 = fresh_bits(&net2, &w2, &d);
        assert_eq!(eval.phi().to_bits(), f0.1);
        assert_eq!(eval.mlu().to_bits(), f0.2);
        // Weight probes repair under the base mask and stay bit-identical to
        // scratch on the deleted topology.
        for (e, nw) in [(EdgeId(0), 5.0), (EdgeId(3), 4.0), (EdgeId(0), 1.0)] {
            let probe = eval.probe(e, nw).unwrap();
            w.set(e, nw);
            w2.set(e, nw);
            let fresh = fresh_bits(&net2, &w2, &d);
            assert_eq!(
                probe.loads[..4]
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                fresh.0,
                "masked-base probe {e:?}->{nw} diverged"
            );
            assert_eq!(probe.mlu.to_bits(), fresh.2);
            eval.commit(probe);
        }
        // Probing the failed edge itself is a provable no-op.
        let noop = eval.probe(EdgeId(4), 9.0).unwrap();
        assert_eq!(noop.dirty_count, 0);
        assert_eq!(noop.mlu.to_bits(), eval.mlu().to_bits());
    }

    #[test]
    fn masked_construction_errors_when_disconnected() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let err = IncrementalEvaluator::new_with_failures(
            &net,
            &w,
            &d,
            &WaypointSetting::none(d.len()),
            &[EdgeId(1)],
        )
        .err()
        .expect("1 -> 3 has no alternative");
        assert_eq!(
            err,
            TeError::Unroutable {
                src: NodeId(1),
                dst: NodeId(3)
            }
        );
    }

    #[test]
    fn double_failure_on_one_dag_rebuilds_correctly() {
        // Destination 3's DAG uses e0/e1 and e2/e3 and e4 under unit
        // weights; killing e1 + e4 forces everything over 0->2->3 and cuts
        // node 1 — unless node 1 has no demand, so use a 0->3 demand only.
        let net = net();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let w = WeightSetting::unit(&net);
        let eval = IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(1)).unwrap();
        let probe = eval.probe_disable(&[EdgeId(1), EdgeId(4)]).unwrap();
        assert_eq!(probe.loads[2], 2.0);
        assert_eq!(probe.loads[3], 2.0);
        assert_eq!(probe.loads[0], 0.0);
        assert_eq!(probe.loads[1], 0.0);
        assert_eq!(probe.loads[4], 0.0);
    }

    /// The diamond net with a different capacity on e0.
    fn net_with_cap(e0_cap: f64) -> Network {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), e0_cap); // e0
        b.link(NodeId(1), NodeId(3), 2.0); // e1
        b.link(NodeId(0), NodeId(2), 1.0); // e2
        b.link(NodeId(2), NodeId(3), 1.0); // e3
        b.link(NodeId(0), NodeId(3), 1.0); // e4
        b.build().unwrap()
    }

    #[test]
    fn set_capacity_matches_recapacitated_rebuild() {
        let d = demands();
        let net = net_with_cap(2.0);
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        assert!(eval.set_capacity(EdgeId(0), 0.5).unwrap());
        let net2 = net_with_cap(0.5);
        let w2 = WeightSetting::unit(&net2);
        assert_eq!(eval_bits(&eval), fresh_bits(&net2, &w2, &d));
        assert_eq!(eval.capacities()[0], 0.5);
        // Same value again is a no-op; an invalid value errors untouched.
        assert!(!eval.set_capacity(EdgeId(0), 0.5).unwrap());
        let before = eval_bits(&eval);
        assert!(eval.set_capacity(EdgeId(0), -1.0).is_err());
        assert_eq!(eval_bits(&eval), before);
        // Probes answer against the overridden capacities.
        let probe = eval.probe(EdgeId(2), 5.0).unwrap();
        let mut w3 = WeightSetting::unit(&net2);
        w3.set(EdgeId(2), 5.0);
        let fresh = fresh_bits(&net2, &w3, &d);
        assert_eq!(probe.mlu.to_bits(), fresh.2);
        assert_eq!(probe.phi.to_bits(), fresh.1);
    }

    #[test]
    fn set_workload_in_place_matches_fresh_build() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        // Scale one demand: same destinations, one dirty seed row.
        let mut d2 = DemandList::new();
        d2.push(NodeId(0), NodeId(3), 3.5);
        d2.push(NodeId(1), NodeId(3), 1.0);
        d2.push(NodeId(0), NodeId(2), 0.5);
        assert!(eval
            .set_workload(&d2, &WaypointSetting::none(d2.len()))
            .unwrap());
        assert_eq!(eval_bits(&eval), fresh_bits(&net, &w, &d2));
        // Identical workload again: a provable no-op.
        assert!(!eval
            .set_workload(&d2, &WaypointSetting::none(d2.len()))
            .unwrap());
        // Probe/commit still track scratch after the in-place swap.
        let probe = eval.probe(EdgeId(4), 5.0).unwrap();
        let mut w2 = WeightSetting::unit(&net);
        w2.set(EdgeId(4), 5.0);
        assert_eq!(probe.mlu.to_bits(), fresh_bits(&net, &w2, &d2).2);
        eval.commit(probe);
        assert_eq!(eval_bits(&eval), fresh_bits(&net, &w2, &d2));
    }

    #[test]
    fn set_workload_new_destinations_rebuilds_in_place() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        // Destination set changes from {2, 3} to {1, 3}.
        let mut d2 = DemandList::new();
        d2.push(NodeId(0), NodeId(1), 1.5);
        d2.push(NodeId(0), NodeId(3), 2.0);
        assert!(eval
            .set_workload(&d2, &WaypointSetting::none(d2.len()))
            .unwrap());
        assert_eq!(eval.destination_count(), 2);
        assert_eq!(eval_bits(&eval), fresh_bits(&net, &w, &d2));
    }

    #[test]
    fn set_workload_unroutable_leaves_state_untouched() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        let before = eval_bits(&eval);
        // Node 3 has no out-edges: 3 -> 2 is unroutable. Same destination
        // set, so this exercises the in-place (seed-diff) path's validation.
        let mut bad = DemandList::new();
        bad.push(NodeId(0), NodeId(3), 2.0);
        bad.push(NodeId(3), NodeId(2), 1.0);
        let err = eval
            .set_workload(&bad, &WaypointSetting::none(bad.len()))
            .unwrap_err();
        assert_eq!(
            err,
            TeError::Unroutable {
                src: NodeId(3),
                dst: NodeId(2)
            }
        );
        assert_eq!(eval_bits(&eval), before);
        // The rebuild path validates too: new destination set, unroutable.
        let mut bad2 = DemandList::new();
        bad2.push(NodeId(3), NodeId(1), 1.0);
        assert!(eval.set_workload(&bad2, &WaypointSetting::none(1)).is_err());
        assert_eq!(eval_bits(&eval), before);
    }

    #[test]
    fn set_link_state_down_matches_deleted_topology() {
        let net = net();
        let net2 = net_without_e4();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let w2 = WeightSetting::unit(&net2);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        let original = eval_bits(&eval);
        assert!(eval.set_link_state(EdgeId(4), false).unwrap());
        let fresh = fresh_bits(&net2, &w2, &d);
        assert_eq!(
            eval.loads()[..4]
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            fresh.0
        );
        assert_eq!(eval.loads()[4], 0.0, "downed link must carry no flow");
        assert_eq!(eval.mlu().to_bits(), fresh.2);
        // Repeated down is a no-op; bringing it back restores every bit.
        assert!(!eval.set_link_state(EdgeId(4), false).unwrap());
        assert!(eval.set_link_state(EdgeId(4), true).unwrap());
        assert!(!eval.set_link_state(EdgeId(4), true).unwrap());
        assert_eq!(eval_bits(&eval), original);
        assert_eq!(
            eval_bits(&eval),
            fresh_bits(&net, &w, &d),
            "down + up must round-trip to the intact state"
        );
    }

    #[test]
    fn disconnecting_link_down_leaves_state_untouched() {
        let net = net();
        let d = demands();
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        let before = eval_bits(&eval);
        // e1 (1->3) is node 1's only route to 3.
        let err = eval.set_link_state(EdgeId(1), false).unwrap_err();
        assert_eq!(
            err,
            TeError::Unroutable {
                src: NodeId(1),
                dst: NodeId(3)
            }
        );
        assert_eq!(eval_bits(&eval), before);
        assert!(eval.disabled().is_empty() || !eval.disabled()[1]);
    }

    #[test]
    fn event_sequence_matches_fresh_masked_build() {
        // Interleave all three event kinds and pin the state to a fresh
        // evaluator built on the mutated inputs after every step.
        let net = net_with_cap(2.0);
        let d = demands();
        let w = WeightSetting::unit(&net);
        let mut eval =
            IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len())).unwrap();
        eval.set_link_state(EdgeId(4), false).unwrap();
        let mut d2 = DemandList::new();
        d2.push(NodeId(0), NodeId(3), 1.25);
        d2.push(NodeId(1), NodeId(3), 1.0);
        d2.push(NodeId(0), NodeId(2), 0.5);
        eval.set_workload(&d2, &WaypointSetting::none(d2.len()))
            .unwrap();
        eval.set_capacity(EdgeId(3), 4.0).unwrap();
        let net2 = {
            let mut b = Network::builder(4);
            b.link(NodeId(0), NodeId(1), 2.0);
            b.link(NodeId(1), NodeId(3), 2.0);
            b.link(NodeId(0), NodeId(2), 1.0);
            b.link(NodeId(2), NodeId(3), 4.0);
            b.link(NodeId(0), NodeId(3), 1.0);
            b.build().unwrap()
        };
        let fresh = IncrementalEvaluator::new_with_failures(
            &net2,
            &WeightSetting::unit(&net2),
            &d2,
            &WaypointSetting::none(d2.len()),
            &[EdgeId(4)],
        )
        .unwrap();
        assert_eq!(eval_bits(&eval), eval_bits(&fresh));
    }

    #[test]
    fn tiny_frontier_cap_still_bit_identical() {
        let net = net();
        let d = demands();
        let mut w = WeightSetting::unit(&net);
        let mut eval = IncrementalEvaluator::new(&net, &w, &d, &WaypointSetting::none(d.len()))
            .unwrap()
            .with_frontier_cap(1);
        for (e, nw) in [(EdgeId(4), 5.0), (EdgeId(1), 1.0), (EdgeId(2), 3.0)] {
            let probe = eval.probe(e, nw).unwrap();
            w.set(e, nw);
            assert_eq!(
                (probe.phi.to_bits(), probe.mlu.to_bits()),
                {
                    let f = fresh_bits(&net, &w, &d);
                    (f.1, f.2)
                },
                "fallback path diverged"
            );
            eval.commit(probe);
        }
    }
}
