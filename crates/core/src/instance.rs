//! The TE instance `I = (N, D, ω)` of paper §2 — a network, a demand list,
//! and (optionally) a given weight setting for WPO-style problems.

use crate::demand::DemandList;
use crate::ecmp::Router;
use crate::error::TeError;
use crate::network::Network;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;

/// A complete traffic-engineering instance.
///
/// The `given_weights` field corresponds to the paper's `ω`: for WPO the
/// weight setting is part of the input; LWO and Joint ignore it.
#[derive(Clone, Debug)]
pub struct TeInstance {
    /// The network `N = (V, E, c)`.
    pub network: Network,
    /// The demand list `D`.
    pub demands: DemandList,
    /// The input weight setting `ω`, if the problem takes one.
    pub given_weights: Option<WeightSetting>,
}

impl TeInstance {
    /// Creates an instance without a given weight setting (LWO / Joint
    /// inputs).
    pub fn new(network: Network, demands: DemandList) -> Self {
        Self {
            network,
            demands,
            given_weights: None,
        }
    }

    /// Attaches the given weight setting `ω` (WPO inputs).
    pub fn with_weights(mut self, weights: WeightSetting) -> Self {
        self.given_weights = Some(weights);
        self
    }

    /// Total demand size `D`.
    pub fn total_demand(&self) -> f64 {
        self.demands.total_size()
    }

    /// Evaluates the MLU of this instance under explicit weights and
    /// waypoints — the objective value `MLU(N, f)` of the joint setting.
    pub fn mlu_under(
        &self,
        weights: &WeightSetting,
        waypoints: &WaypointSetting,
    ) -> Result<f64, TeError> {
        let router = Router::new(&self.network, weights);
        Ok(router.evaluate(&self.demands, waypoints)?.mlu)
    }

    /// Evaluates the MLU under explicit weights with plain ECMP (no
    /// waypoints).
    pub fn mlu_under_weights(&self, weights: &WeightSetting) -> Result<f64, TeError> {
        self.mlu_under(weights, &WaypointSetting::none(self.demands.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_graph::NodeId;

    fn small_instance() -> TeInstance {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 2.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        TeInstance::new(net, d)
    }

    #[test]
    fn mlu_under_weights_routes_the_chain() {
        let inst = small_instance();
        let w = WeightSetting::unit(&inst.network);
        let mlu = inst.mlu_under_weights(&w).unwrap();
        assert!((mlu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_weights_stores_omega() {
        let inst = small_instance();
        let w = WeightSetting::unit(&inst.network);
        let inst = inst.with_weights(w.clone());
        assert_eq!(inst.given_weights, Some(w));
    }

    #[test]
    fn total_demand_sums() {
        let inst = small_instance();
        assert!((inst.total_demand() - 1.0).abs() < 1e-12);
    }
}
