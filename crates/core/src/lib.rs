//! # segrout-core
//!
//! The traffic-engineering model of
//! *Traffic Engineering with Joint Link Weight and Segment Optimization*
//! (Parham, Fenz, Süss, Foerster, Schmid — CoNEXT'21), paper §2.
//!
//! A TE instance consists of
//!
//! * a [`Network`] `N = (V, E, c)` — a directed capacitated multigraph,
//! * a [`DemandList`] `D` of `(s, t, d)` demands,
//! * a [`WeightSetting`] `w: E → R+` steering OSPF shortest paths,
//! * optionally a [`WaypointSetting`] `π` assigning up to `W` segment-routing
//!   waypoints to each demand.
//!
//! The central evaluation primitive is the ECMP flow engine ([`ecmp`]): given
//! weights and waypointed demands it computes per-link loads of the induced
//! ECMP flow — flow splits *evenly* over all shortest-path next hops at every
//! node — and the **maximum link utilization** (MLU), the objective every
//! optimizer in this workspace minimizes.
//!
//! [`esflow`] provides the more general *even-split flows* over arbitrary
//! DAGs together with effective capacities (paper Definition 5.1), which the
//! LWO-APX approximation algorithm builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod demand;
pub mod ecmp;
pub mod error;
pub mod esflow;
pub mod failure;
pub mod hooks;
pub mod incremental;
pub mod instance;
pub mod network;
pub mod report;
pub mod rng;
pub mod robust;
pub mod textio;
pub mod waypoints;
pub mod weights;

pub use cost::{fortz_phi, max_link_utilization, utilizations};
pub use demand::{Demand, DemandList};
pub use ecmp::{LoadReport, Router, Segment};
pub use error::TeError;
pub use failure::{
    sweep_failures, FailurePattern, FailureSet, ScenarioOutcome, ScenarioResult, SweepReport,
    WorstCaseCertificate,
};
pub use incremental::{DisableProbe, IncrementalEvaluator, Probe};
pub use instance::TeInstance;
pub use network::Network;
pub use report::UtilizationReport;
pub use robust::{evaluate_robust, DemandSet, RobustObjective, RobustReport};
pub use textio::{read_config, write_config};
pub use waypoints::WaypointSetting;
pub use weights::WeightSetting;

pub use segrout_graph::{Digraph, EdgeId, NodeId};
