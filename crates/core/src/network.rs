//! The capacitated network `N = (V, E, c)` of paper §2.

use crate::error::TeError;
use segrout_graph::{Digraph, EdgeId, NodeId};

/// A directed capacitated network: a [`Digraph`] plus a positive real
/// capacity per link and optional human-readable node names.
#[derive(Clone, Debug)]
pub struct Network {
    graph: Digraph,
    capacity: Vec<f64>,
    names: Vec<String>,
}

impl Network {
    /// Builds a network from a graph and per-edge capacities.
    ///
    /// Node names default to the node indices; use
    /// [`Network::with_names`] for topologies with real router names.
    pub fn new(graph: Digraph, capacity: Vec<f64>) -> Result<Self, TeError> {
        if capacity.len() != graph.edge_count() {
            return Err(TeError::DimensionMismatch {
                what: "capacities",
                expected: graph.edge_count(),
                actual: capacity.len(),
            });
        }
        for (i, &c) in capacity.iter().enumerate() {
            if !(c.is_finite() && c > 0.0) {
                return Err(TeError::InvalidCapacity { edge: i, value: c });
            }
        }
        let names = (0..graph.node_count()).map(|i| i.to_string()).collect();
        Ok(Self {
            graph,
            capacity,
            names,
        })
    }

    /// Replaces the default node names.
    pub fn with_names(mut self, names: Vec<String>) -> Result<Self, TeError> {
        if names.len() != self.graph.node_count() {
            return Err(TeError::DimensionMismatch {
                what: "node names",
                expected: self.graph.node_count(),
                actual: names.len(),
            });
        }
        self.names = names;
        Ok(self)
    }

    /// The underlying directed graph.
    #[inline]
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// Capacity of link `e` (the paper's `c_ℓ`).
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.capacity[e.index()]
    }

    /// All capacities, indexed by edge id.
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Human-readable name of a node.
    #[inline]
    pub fn node_name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// Looks up a node by its name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// `true` when every link has the same capacity (the special case of
    /// paper §3.4 / Theorem 4.2, where `LWO = OPT` for single-pair demands).
    pub fn has_uniform_capacities(&self) -> bool {
        match self.capacity.first() {
            None => true,
            Some(&c0) => self
                .capacity
                .iter()
                .all(|&c| segrout_graph::approx_eq(c, c0)),
        }
    }

    /// Builder for assembling networks edge by edge.
    pub fn builder(n: usize) -> NetworkBuilder {
        NetworkBuilder {
            graph: Digraph::new(n),
            capacity: Vec::new(),
        }
    }
}

/// Incremental [`Network`] constructor used by topology code and tests.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    graph: Digraph,
    capacity: Vec<f64>,
}

impl NetworkBuilder {
    /// Adds a directed link `u -> v` with the given capacity.
    pub fn link(&mut self, u: NodeId, v: NodeId, capacity: f64) -> EdgeId {
        let e = self.graph.add_edge(u, v);
        self.capacity.push(capacity);
        e
    }

    /// Adds the two directed links `u -> v` and `v -> u`, both with the given
    /// capacity (the "bi-directed arc" convention of the paper's figures).
    pub fn bilink(&mut self, u: NodeId, v: NodeId, capacity: f64) -> (EdgeId, EdgeId) {
        (self.link(u, v, capacity), self.link(v, u, capacity))
    }

    /// Appends an extra node.
    pub fn node(&mut self) -> NodeId {
        self.graph.add_node()
    }

    /// Finalizes the network, validating capacities.
    pub fn build(self) -> Result<Network, TeError> {
        Network::new(self.graph, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 10.0);
        b.bilink(NodeId(1), NodeId(2), 5.0);
        let net = b.build().unwrap();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 3);
        assert_eq!(net.capacity(EdgeId(0)), 10.0);
        assert_eq!(net.capacity(EdgeId(2)), 5.0);
    }

    #[test]
    fn rejects_nonpositive_capacity() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 0.0);
        assert!(matches!(
            b.build(),
            Err(TeError::InvalidCapacity { edge: 0, .. })
        ));
    }

    #[test]
    fn rejects_nan_capacity() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), f64::NAN);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_capacity_length_mismatch() {
        let g = Digraph::new(2);
        assert!(matches!(
            Network::new(g, vec![1.0]),
            Err(TeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn uniform_capacity_detection() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 2.0);
        b.link(NodeId(1), NodeId(2), 2.0);
        let net = b.build().unwrap();
        assert!(net.has_uniform_capacities());

        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 2.0);
        b.link(NodeId(1), NodeId(2), 3.0);
        assert!(!b.build().unwrap().has_uniform_capacities());
    }

    #[test]
    fn names_lookup() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b
            .build()
            .unwrap()
            .with_names(vec!["vienna".into(), "dortmund".into()])
            .unwrap();
        assert_eq!(net.node_name(NodeId(1)), "dortmund");
        assert_eq!(net.node_by_name("vienna"), Some(NodeId(0)));
        assert_eq!(net.node_by_name("berlin"), None);
    }

    #[test]
    fn wrong_name_count_rejected() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 1.0);
        assert!(b.build().unwrap().with_names(vec!["x".into()]).is_err());
    }
}
