//! Operator-facing utilization reports: which links are hot, how the load
//! distribution looks, and how two routings compare. Used by the examples
//! and the experiment harness; handy for debugging weight settings.

use crate::network::Network;
use segrout_graph::EdgeId;

/// A ranked view of link utilizations under some routing.
#[derive(Clone, Debug)]
pub struct UtilizationReport {
    /// `(edge, load, utilization)` sorted by decreasing utilization.
    pub ranked: Vec<(EdgeId, f64, f64)>,
}

impl UtilizationReport {
    /// Builds a report from per-link loads.
    ///
    /// # Panics
    /// Panics when `loads.len() != net.edge_count()`.
    pub fn new(net: &Network, loads: &[f64]) -> Self {
        assert_eq!(loads.len(), net.edge_count(), "loads length mismatch");
        let mut ranked: Vec<(EdgeId, f64, f64)> = net
            .graph()
            .edge_ids()
            .map(|e| (e, loads[e.index()], loads[e.index()] / net.capacity(e)))
            .collect();
        ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        Self { ranked }
    }

    /// The maximum link utilization.
    pub fn mlu(&self) -> f64 {
        self.ranked.first().map(|&(_, _, u)| u).unwrap_or(0.0)
    }

    /// The `k` most utilized links.
    pub fn top(&self, k: usize) -> &[(EdgeId, f64, f64)] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Number of links at or above a utilization threshold.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.ranked
            .iter()
            .filter(|&&(_, _, u)| u >= threshold)
            .count()
    }

    /// Mean utilization over all links (unweighted).
    pub fn mean_utilization(&self) -> f64 {
        if self.ranked.is_empty() {
            return 0.0;
        }
        self.ranked.iter().map(|&(_, _, u)| u).sum::<f64>() / self.ranked.len() as f64
    }

    /// Renders the top-`k` lines as `src -> dst: load/capacity (uu.u%)`,
    /// using the network's node names.
    pub fn format_top(&self, net: &Network, k: usize) -> String {
        let mut out = String::new();
        for &(e, load, util) in self.top(k) {
            let (u, v) = net.graph().endpoints(e);
            out.push_str(&format!(
                "{} -> {}: {:.1}/{:.1} ({:.1}%)\n",
                net.node_name(u),
                net.node_name(v),
                load,
                net.capacity(e),
                100.0 * util
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_graph::NodeId;

    fn small() -> (Network, Vec<f64>) {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 10.0);
        b.link(NodeId(1), NodeId(2), 2.0);
        b.link(NodeId(0), NodeId(2), 4.0);
        (b.build().unwrap(), vec![5.0, 1.9, 1.0])
    }

    #[test]
    fn ranking_is_by_utilization() {
        let (net, loads) = small();
        let r = UtilizationReport::new(&net, &loads);
        // utilizations: 0.5, 0.95, 0.25 -> order e1, e0, e2
        assert_eq!(r.ranked[0].0, EdgeId(1));
        assert_eq!(r.ranked[1].0, EdgeId(0));
        assert!((r.mlu() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn counting_and_means() {
        let (net, loads) = small();
        let r = UtilizationReport::new(&net, &loads);
        assert_eq!(r.count_above(0.5), 2);
        assert_eq!(r.count_above(0.99), 0);
        assert!((r.mean_utilization() - (0.5 + 0.95 + 0.25) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_is_clamped() {
        let (net, loads) = small();
        let r = UtilizationReport::new(&net, &loads);
        assert_eq!(r.top(99).len(), 3);
        assert_eq!(r.top(1).len(), 1);
    }

    #[test]
    fn formatting_contains_names() {
        let (net, loads) = small();
        let net = net
            .with_names(vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        let r = UtilizationReport::new(&net, &loads);
        let s = r.format_top(&net, 1);
        assert!(s.contains("b -> c"));
        assert!(s.contains("95.0%"));
    }

    #[test]
    fn empty_network_mlu_zero() {
        let net = Network::new(segrout_graph::Digraph::new(2), vec![]).unwrap();
        let r = UtilizationReport::new(&net, &[]);
        assert_eq!(r.mlu(), 0.0);
        assert_eq!(r.mean_utilization(), 0.0);
    }
}
