//! Vendored deterministic PRNG: xoshiro256++ seeded via splitmix64.
//!
//! This workspace must build with zero network access, so instead of the
//! `rand` crate we carry the ~40 lines of generator the experiments
//! actually need. The API deliberately mirrors the `rand` call sites it
//! replaced (`seed_from_u64`, `gen`, `gen_range`, slice `shuffle`) so the
//! algorithm code reads identically; sequences differ from `rand`'s
//! `StdRng`, but every generator here is fully determined by its seed,
//! which is all reproducibility requires.
//!
//! xoshiro256++ is the public-domain generator of Blackman & Vigna
//! (<https://prng.di.unimi.it/>): 256 bits of state, passes BigCrush, and
//! a couple of nanoseconds per draw — more than enough statistical quality
//! for synthetic topologies, gravity traffic matrices and local-search
//! tie-breaking.

use std::ops::{Bound, RangeBounds};

/// A seedable xoshiro256++ generator.
///
/// Named `StdRng` so the pre-vendoring call sites (`StdRng::seed_from_u64`)
/// compile unchanged.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// splitmix64 step — used only to expand a 64-bit seed into the 256-bit
/// xoshiro state, per the generator authors' recommendation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator whose entire state is derived from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64 bits (the xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw of a [`Draw`] type: `f64` in `[0,1)`, integers over
    /// their full range, `bool` as a fair coin.
    pub fn gen<T: Draw>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform integer in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<T: UniformInt, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_u64(),
            Bound::Excluded(&v) => v.to_u64() + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_u64(),
            Bound::Excluded(&v) => v.to_u64().checked_sub(1).expect("gen_range: empty range"),
            Bound::Unbounded => T::MAX_U64,
        };
        assert!(lo <= hi, "gen_range: empty range");
        T::from_u64(self.uniform_u64(lo, hi))
    }

    /// Unbiased uniform draw in `[lo, hi]` via rejection sampling.
    fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Reject draws in the final partial copy of `span` within u64 range.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }
}

/// Types drawable uniformly by [`StdRng::gen`].
pub trait Draw {
    /// Draws one uniform value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Draw for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.gen_f64()
    }
}

impl Draw for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Draw for u32 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Draw for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unsigned integer types usable with [`StdRng::gen_range`].
pub trait UniformInt: Copy {
    /// The type's maximum, as `u64`.
    const MAX_U64: u64;
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (caller guarantees the value fits).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            const MAX_U64: u64 = <$t>::MAX as u64;
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// In-place Fisher–Yates shuffle, as an extension trait so pre-vendoring
/// `order.shuffle(&mut rng)` call sites compile unchanged.
pub trait SliceRandom {
    /// Uniformly permutes the slice.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
            let w: u32 = rng.gen_range(1..=5u32);
            assert!((1..=5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 reachable");
    }

    #[test]
    fn gen_range_single_value() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(3..4usize), 3);
        assert_eq!(rng.gen_range(9..=9u32), 9);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle actually permutes");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
