//! Robust multi-matrix traffic engineering: demand *sets* and the
//! worst-case / quantile objectives over them.
//!
//! A [`DemandSet`] is an ordered collection of named traffic matrices
//! (each a [`DemandList`]). One weight/waypoint configuration is evaluated
//! against *every* matrix, and a [`RobustObjective`] folds the per-matrix
//! `(Φ, MLU)` values into one scalar per metric: the maximum
//! ([`RobustObjective::WorstCase`]) or an empirical upper quantile
//! ([`RobustObjective::Quantile`]).
//!
//! The robust optimizers treat a single-matrix set as *exactly* the classic
//! single-matrix problem: `RobustObjective::aggregate` of a one-element
//! slice returns that element bit-for-bit, so every `heur_ospf` /
//! `greedy_wpo` / `joint_milp` entry point can delegate to its robust
//! generalization without perturbing a single bit of its output. The
//! differential test battery (`tests/robust_differential.rs`) enforces
//! this reduction.
//!
//! Matrices that share the `(src, dst)` pair structure index-by-index are
//! *aligned* ([`DemandSet::is_aligned`]). Alignment is what lets one
//! waypoint setting apply to every matrix (waypoints are per demand
//! *index*), and is required by the waypoint-consuming optimizers; the
//! weight-only paths accept arbitrary sets.

use crate::demand::DemandList;
use crate::ecmp::{LoadReport, Router};
use crate::error::TeError;
use crate::network::Network;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;
use segrout_graph::NodeId;

/// An ordered set of named traffic matrices evaluated against one
/// configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DemandSet {
    matrices: Vec<(String, DemandList)>,
}

impl DemandSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps one matrix — the single-matrix reduction every classic entry
    /// point uses.
    pub fn single(demands: DemandList) -> Self {
        Self {
            matrices: vec![("matrix".to_string(), demands)],
        }
    }

    /// Builds a set from explicit named matrices.
    pub fn from_named(matrices: Vec<(String, DemandList)>) -> Self {
        Self { matrices }
    }

    /// Builds a set from a sequence of matrices (e.g. the output of
    /// `drifting_series`), naming the steps `t0, t1, ...`.
    pub fn from_series(series: Vec<DemandList>) -> Self {
        Self {
            matrices: series
                .into_iter()
                .enumerate()
                .map(|(i, m)| (format!("t{i}"), m))
                .collect(),
        }
    }

    /// Appends a named matrix.
    pub fn push(&mut self, name: impl Into<String>, demands: DemandList) {
        self.matrices.push((name.into(), demands));
    }

    /// Number of matrices `K`.
    #[inline]
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// `true` when the set holds no matrices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// The `k`-th matrix.
    #[inline]
    pub fn matrix(&self, k: usize) -> &DemandList {
        &self.matrices[k].1
    }

    /// The `k`-th matrix's name.
    #[inline]
    pub fn name(&self, k: usize) -> &str {
        &self.matrices[k].0
    }

    /// Iterator over `(name, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DemandList)> {
        self.matrices.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Iterator over the matrices only.
    pub fn matrices(&self) -> impl Iterator<Item = &DemandList> {
        self.matrices.iter().map(|(_, m)| m)
    }

    /// `true` when every matrix has the same length and the same
    /// `(src, dst)` pair at every index — the precondition for sharing one
    /// waypoint setting across the set. Empty sets are trivially aligned.
    pub fn is_aligned(&self) -> bool {
        let Some((_, first)) = self.matrices.first() else {
            return true;
        };
        self.matrices.iter().skip(1).all(|(_, m)| {
            m.len() == first.len()
                && m.iter()
                    .zip(first.iter())
                    .all(|(a, b)| a.src == b.src && a.dst == b.dst)
        })
    }

    /// Returns an error naming the first misaligned matrix, or `Ok` for
    /// aligned sets. The waypoint-consuming robust optimizers call this
    /// before touching a shared [`WaypointSetting`].
    pub fn require_aligned(&self) -> Result<(), TeError> {
        let Some((_, first)) = self.matrices.first() else {
            return Ok(());
        };
        for (k, (name, m)) in self.matrices.iter().enumerate().skip(1) {
            let aligned = m.len() == first.len()
                && m.iter()
                    .zip(first.iter())
                    .all(|(a, b)| a.src == b.src && a.dst == b.dst);
            if !aligned {
                return Err(TeError::InvalidWaypoints(format!(
                    "demand set is not aligned: matrix {k} ({name}) differs \
                     from matrix 0 in length or (src, dst) structure"
                )));
            }
        }
        Ok(())
    }

    /// Number of demands per matrix of an aligned set (0 when empty).
    pub fn pair_count(&self) -> usize {
        self.matrices.first().map_or(0, |(_, m)| m.len())
    }

    /// The `(src, dst)` pairs of an aligned set, taken from the first
    /// matrix.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.matrices
            .first()
            .map(|(_, m)| m.iter().map(|d| (d.src, d.dst)).collect())
            .unwrap_or_default()
    }

    /// Per-index demand size summed across the matrices of an aligned set.
    pub fn total_sizes(&self) -> Vec<f64> {
        let mut totals = vec![0.0f64; self.pair_count()];
        for (_, m) in &self.matrices {
            for (i, d) in m.iter().enumerate() {
                totals[i] += d.size;
            }
        }
        totals
    }

    /// Demand indices sorted by descending total size across matrices (ties
    /// broken by index) — the GreedyWPO iteration order generalized to
    /// sets. For a single-matrix set this equals
    /// [`DemandList::indices_by_descending_size`] (summing one positive
    /// `f64` starting from `0.0` is exact).
    pub fn indices_by_descending_total_size(&self) -> Vec<usize> {
        let totals = self.total_sizes();
        let mut idx: Vec<usize> = (0..totals.len()).collect();
        idx.sort_by(|&a, &b| {
            totals[b]
                .partial_cmp(&totals[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }
}

impl std::ops::Index<usize> for DemandSet {
    type Output = DemandList;
    fn index(&self, k: usize) -> &DemandList {
        &self.matrices[k].1
    }
}

impl FromIterator<(String, DemandList)> for DemandSet {
    fn from_iter<I: IntoIterator<Item = (String, DemandList)>>(iter: I) -> Self {
        Self {
            matrices: iter.into_iter().collect(),
        }
    }
}

/// How per-matrix metric values fold into one robust scalar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RobustObjective {
    /// The maximum over matrices (protect against the worst matrix).
    WorstCase,
    /// The empirical `q`-quantile over matrices, `0 < q ≤ 1`.
    /// `Quantile(1.0)` is exactly [`RobustObjective::WorstCase`].
    Quantile(f64),
}

impl RobustObjective {
    /// The quantile this objective selects (`1.0` for worst case).
    pub fn quantile(&self) -> f64 {
        match *self {
            RobustObjective::WorstCase => 1.0,
            RobustObjective::Quantile(q) => q,
        }
    }

    /// `true` when the objective selects the maximum over matrices.
    pub fn is_worst_case(&self) -> bool {
        self.quantile() >= 1.0
    }

    /// Folds per-matrix values into the robust scalar: the value at rank
    /// `⌈q·K⌉` of the ascending order (so `Quantile(1.0)` and `WorstCase`
    /// pick the same maximal element, bit-for-bit). A one-element slice
    /// returns its element unchanged — the single-matrix reduction.
    ///
    /// # Panics
    /// Panics on an empty slice or a quantile outside `(0, 1]`.
    pub fn aggregate(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "cannot aggregate over an empty set");
        let q = self.quantile();
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Parses `worst` or `q<value>` (e.g. `q0.9`); used by the CLI.
    ///
    /// # Errors
    /// Returns a description of the expected syntax on malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.eq_ignore_ascii_case("worst") || s.eq_ignore_ascii_case("worst-case") {
            return Ok(RobustObjective::WorstCase);
        }
        if let Some(q) = s.strip_prefix('q').and_then(|q| q.parse::<f64>().ok()) {
            if q > 0.0 && q <= 1.0 {
                return Ok(RobustObjective::Quantile(q));
            }
        }
        Err(format!(
            "invalid robust objective '{s}': expected 'worst' or 'q<value>' with value in (0, 1]"
        ))
    }
}

/// Per-matrix evaluation of one configuration against a [`DemandSet`].
#[derive(Clone, Debug)]
pub struct RobustReport {
    /// Per-matrix load reports, in set order.
    pub reports: Vec<LoadReport>,
    /// Per-matrix Fortz–Thorup Φ, in set order.
    pub phis: Vec<f64>,
    /// Per-matrix MLU, in set order.
    pub mlus: Vec<f64>,
}

impl RobustReport {
    /// The robust MLU under `objective`.
    pub fn aggregate_mlu(&self, objective: RobustObjective) -> f64 {
        objective.aggregate(&self.mlus)
    }

    /// The robust Φ under `objective`.
    pub fn aggregate_phi(&self, objective: RobustObjective) -> f64 {
        objective.aggregate(&self.phis)
    }

    /// The worst-case MLU (maximum over matrices).
    pub fn worst_mlu(&self) -> f64 {
        RobustObjective::WorstCase.aggregate(&self.mlus)
    }
}

/// Evaluates one `(weights, waypoints)` configuration against every matrix
/// of `set` from scratch (one [`Router`] evaluation per matrix) — the
/// ground-truth robust evaluation the optimizers and validators compare
/// against.
///
/// The waypoint setting applies to every matrix by demand index, so the set
/// must be aligned (or the waypoint setting empty of any assignment beyond
/// the matrices' lengths).
///
/// # Errors
/// Propagates routing errors from any matrix; rejects misaligned sets when
/// `waypoints` assigns any waypoint.
pub fn evaluate_robust(
    net: &Network,
    weights: &WeightSetting,
    set: &DemandSet,
    waypoints: &WaypointSetting,
) -> Result<RobustReport, TeError> {
    if waypoints.max_used() > 0 {
        set.require_aligned()?;
    }
    let router = Router::new(net, weights);
    let caps = net.capacities();
    let mut reports = Vec::with_capacity(set.len());
    let mut phis = Vec::with_capacity(set.len());
    let mut mlus = Vec::with_capacity(set.len());
    for (_, demands) in set.matrices.iter() {
        let report = router.evaluate(demands, waypoints)?;
        phis.push(crate::cost::fortz_phi(&report.loads, caps));
        mlus.push(report.mlu);
        reports.push(report);
    }
    Ok(RobustReport {
        reports,
        phis,
        mlus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn diamond() -> Network {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        b.build().unwrap()
    }

    fn matrix(size: f64) -> DemandList {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), size);
        d
    }

    #[test]
    fn single_matrix_aggregate_is_identity() {
        for v in [0.5, 1.0, 1e-300, f64::INFINITY] {
            assert_eq!(
                RobustObjective::WorstCase.aggregate(&[v]).to_bits(),
                v.to_bits()
            );
            assert_eq!(
                RobustObjective::Quantile(0.5).aggregate(&[v]).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn quantile_one_equals_worst_case() {
        let xs = [0.3, 1.7, 0.9, 1.7, 0.1];
        assert_eq!(
            RobustObjective::Quantile(1.0).aggregate(&xs).to_bits(),
            RobustObjective::WorstCase.aggregate(&xs).to_bits()
        );
        assert_eq!(RobustObjective::WorstCase.aggregate(&xs), 1.7);
    }

    #[test]
    fn quantile_selects_ascending_rank() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(RobustObjective::Quantile(0.25).aggregate(&xs), 1.0);
        assert_eq!(RobustObjective::Quantile(0.5).aggregate(&xs), 2.0);
        assert_eq!(RobustObjective::Quantile(0.75).aggregate(&xs), 3.0);
        assert_eq!(RobustObjective::Quantile(1.0).aggregate(&xs), 4.0);
        // Ranks between grid points round up.
        assert_eq!(RobustObjective::Quantile(0.6).aggregate(&xs), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_aggregate_panics() {
        RobustObjective::WorstCase.aggregate(&[]);
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            RobustObjective::parse("worst").unwrap(),
            RobustObjective::WorstCase
        );
        assert_eq!(
            RobustObjective::parse("q0.9").unwrap(),
            RobustObjective::Quantile(0.9)
        );
        assert!(RobustObjective::parse("q0").is_err());
        assert!(RobustObjective::parse("q1.5").is_err());
        assert!(RobustObjective::parse("median").is_err());
    }

    #[test]
    fn alignment_detection() {
        let mut set = DemandSet::single(matrix(1.0));
        set.push("peak", matrix(2.0));
        assert!(set.is_aligned());
        assert!(set.require_aligned().is_ok());

        let mut other = DemandList::new();
        other.push(NodeId(1), NodeId(3), 1.0);
        set.push("skewed", other);
        assert!(!set.is_aligned());
        assert!(set.require_aligned().is_err());
    }

    #[test]
    fn total_size_order_matches_single_matrix_order() {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 1.0);
        d.push(NodeId(0), NodeId(2), 3.0);
        d.push(NodeId(0), NodeId(3), 1.0);
        let set = DemandSet::single(d.clone());
        assert_eq!(
            set.indices_by_descending_total_size(),
            d.indices_by_descending_size()
        );
    }

    #[test]
    fn evaluate_robust_reports_per_matrix() {
        let net = diamond();
        let mut set = DemandSet::single(matrix(1.0));
        set.push("double", matrix(2.0));
        let weights = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(1);
        let rep = evaluate_robust(&net, &weights, &set, &wp).unwrap();
        assert_eq!(rep.mlus.len(), 2);
        // ECMP splits the unit demand evenly over the two disjoint paths.
        assert!((rep.mlus[0] - 0.5).abs() < 1e-12);
        assert!((rep.mlus[1] - 1.0).abs() < 1e-12);
        assert!((rep.worst_mlu() - 1.0).abs() < 1e-12);
        assert_eq!(
            rep.aggregate_mlu(RobustObjective::Quantile(1.0)).to_bits(),
            rep.worst_mlu().to_bits()
        );
    }

    #[test]
    fn adding_a_matrix_never_decreases_worst_case() {
        let net = diamond();
        let weights = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(1);
        let mut set = DemandSet::single(matrix(1.0));
        let mut prev = evaluate_robust(&net, &weights, &set, &wp)
            .unwrap()
            .worst_mlu();
        for (i, size) in [0.25, 3.0, 0.75].iter().enumerate() {
            set.push(format!("m{i}"), matrix(*size));
            let cur = evaluate_robust(&net, &weights, &set, &wp)
                .unwrap()
                .worst_mlu();
            assert!(cur >= prev, "worst-case MLU decreased: {cur} < {prev}");
            prev = cur;
        }
    }
}
