//! Plain-text export/import of TE configurations.
//!
//! Operators deploy a TE result as router config; researchers want to diff,
//! version and replay configurations. This module defines a minimal
//! line-oriented format (one directive per line, `#` comments) carrying a
//! weight setting and a waypoint setting for a known network:
//!
//! ```text
//! # segrout-config v1
//! weight <edge-index> <weight>
//! waypoint <demand-index> <node> [<node> ...]
//! ```
//!
//! Edges are addressed by their dense index (stable for a given network
//! build order); demands by their index in the demand list the setting was
//! computed for. The format is intentionally dumb — easy to parse from any
//! language, safe to hand-edit.

use crate::demand::DemandList;
use crate::error::TeError;
use crate::network::Network;
use crate::waypoints::WaypointSetting;
use crate::weights::WeightSetting;
use segrout_graph::NodeId;

/// Serializes a joint configuration to the v1 text format.
pub fn write_config(net: &Network, weights: &WeightSetting, waypoints: &WaypointSetting) -> String {
    let mut out = String::from("# segrout-config v1\n");
    for (e, w) in weights.as_slice().iter().enumerate() {
        let (u, v) = net.graph().endpoints(segrout_graph::EdgeId(e as u32));
        out.push_str(&format!(
            "weight {e} {w}  # {} -> {}\n",
            net.node_name(u),
            net.node_name(v)
        ));
    }
    for i in 0..waypoints.len() {
        let wps = waypoints.get(i);
        if !wps.is_empty() {
            out.push_str(&format!(
                "waypoint {i}{}\n",
                wps.iter().map(|w| format!(" {}", w.0)).collect::<String>()
            ));
        }
    }
    out
}

/// Parses the v1 text format back into a configuration for the given
/// network and demand list.
///
/// # Errors
/// Reports malformed lines, out-of-range indices, and invalid weights via
/// [`TeError`].
pub fn read_config(
    net: &Network,
    demands: &DemandList,
    text: &str,
) -> Result<(WeightSetting, WaypointSetting), TeError> {
    let mut weights = vec![1.0; net.edge_count()];
    let mut waypoints = WaypointSetting::none(demands.len());

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |msg: &str| TeError::InvalidWaypoints(format!("line {}: {msg}", lineno + 1));
        match parts.next() {
            Some("weight") => {
                let e: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("weight needs an edge index"))?;
                let w: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("weight needs a value"))?;
                if e >= net.edge_count() {
                    return Err(bad(&format!("edge {e} out of range")));
                }
                weights[e] = w;
            }
            Some("waypoint") => {
                let i: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("waypoint needs a demand index"))?;
                if i >= demands.len() {
                    return Err(bad(&format!("demand {i} out of range")));
                }
                let mut wps = Vec::new();
                for tok in parts {
                    let v: u32 = tok
                        .parse()
                        .map_err(|_| bad(&format!("bad node id '{tok}'")))?;
                    if v as usize >= net.node_count() {
                        return Err(bad(&format!("node {v} out of range")));
                    }
                    wps.push(NodeId(v));
                }
                if wps.is_empty() {
                    return Err(bad("waypoint needs at least one node"));
                }
                waypoints.set(i, wps);
            }
            Some(other) => return Err(bad(&format!("unknown directive '{other}'"))),
            None => unreachable!("empty lines are skipped"),
        }
    }
    let weights = WeightSetting::new(net, weights)?;
    Ok((weights, waypoints))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecmp::Router;

    fn setup() -> (Network, DemandList) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        d.push(NodeId(1), NodeId(3), 1.0);
        (net, d)
    }

    #[test]
    fn round_trip_preserves_configuration() {
        let (net, demands) = setup();
        let mut weights = WeightSetting::unit(&net);
        weights.set(segrout_graph::EdgeId(2), 7.0);
        let mut waypoints = WaypointSetting::none(demands.len());
        waypoints.set(0, vec![NodeId(2)]);

        let text = write_config(&net, &weights, &waypoints);
        let (w2, wp2) = read_config(&net, &demands, &text).unwrap();
        assert_eq!(weights.as_slice(), w2.as_slice());
        assert_eq!(waypoints, wp2);

        // And the routed MLU is identical.
        let a = Router::new(&net, &weights)
            .evaluate(&demands, &waypoints)
            .unwrap()
            .mlu;
        let b = Router::new(&net, &w2).evaluate(&demands, &wp2).unwrap().mlu;
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (net, demands) = setup();
        let text = "\n# hello\nweight 0 3.5 # inline comment\n\nwaypoint 1 2\n";
        let (w, wp) = read_config(&net, &demands, text).unwrap();
        assert_eq!(w.as_slice()[0], 3.5);
        assert_eq!(wp.get(1), &[NodeId(2)]);
    }

    #[test]
    fn missing_weights_default_to_one() {
        let (net, demands) = setup();
        let (w, _) = read_config(&net, &demands, "weight 1 9\n").unwrap();
        assert_eq!(w.as_slice(), &[1.0, 9.0, 1.0, 1.0]);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let (net, demands) = setup();
        for (text, needle) in [
            ("weight x 1", "edge index"),
            ("weight 99 1", "out of range"),
            ("waypoint 99 1", "out of range"),
            ("waypoint 0", "at least one node"),
            ("waypoint 0 77", "out of range"),
            ("frobnicate 1", "unknown directive"),
            ("weight 0 -2", "positive"),
        ] {
            let err = read_config(&net, &demands, text).unwrap_err().to_string();
            assert!(
                err.contains(needle),
                "text '{text}' should fail with '{needle}', got '{err}'"
            );
        }
    }

    #[test]
    fn header_comment_present() {
        let (net, demands) = setup();
        let text = write_config(
            &net,
            &WeightSetting::unit(&net),
            &WaypointSetting::none(demands.len()),
        );
        assert!(text.starts_with("# segrout-config v1"));
    }
}
