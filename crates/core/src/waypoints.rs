//! Waypoint settings `π` for segment routing (paper §2).
//!
//! A waypoint setting assigns to each demand an *ordered* sequence of up to
//! `W` intermediate nodes. The flow of the demand is routed along shortest
//! paths segment by segment: `s → w₁ → w₂ → … → t`. `W = 0` (no waypoints
//! anywhere) degenerates Joint to pure link-weight optimization.

use crate::demand::{Demand, DemandList};
use crate::error::TeError;
use segrout_graph::NodeId;

/// Ordered waypoints per demand, parallel to a [`DemandList`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WaypointSetting {
    per_demand: Vec<Vec<NodeId>>,
}

impl WaypointSetting {
    /// The empty setting: no waypoints for any of `n_demands` demands.
    pub fn none(n_demands: usize) -> Self {
        Self {
            per_demand: vec![Vec::new(); n_demands],
        }
    }

    /// Wraps an explicit per-demand waypoint table, checking it against the
    /// demand list and the waypoint budget `max_waypoints` (the paper's `W`).
    pub fn new(
        demands: &DemandList,
        per_demand: Vec<Vec<NodeId>>,
        max_waypoints: usize,
    ) -> Result<Self, TeError> {
        if per_demand.len() != demands.len() {
            return Err(TeError::InvalidWaypoints(format!(
                "waypoint table has {} rows for {} demands",
                per_demand.len(),
                demands.len()
            )));
        }
        for (i, wps) in per_demand.iter().enumerate() {
            if wps.len() > max_waypoints {
                return Err(TeError::InvalidWaypoints(format!(
                    "demand {i} has {} waypoints, budget W = {max_waypoints}",
                    wps.len()
                )));
            }
        }
        Ok(Self { per_demand })
    }

    /// Number of demand rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.per_demand.len()
    }

    /// `true` if the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.per_demand.is_empty()
    }

    /// Waypoints of demand `i` (may be empty).
    #[inline]
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.per_demand[i]
    }

    /// Replaces the waypoints of demand `i`.
    pub fn set(&mut self, i: usize, waypoints: Vec<NodeId>) {
        self.per_demand[i] = waypoints;
    }

    /// The largest number of waypoints used by any demand.
    pub fn max_used(&self) -> usize {
        self.per_demand.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Expands a demand into its routing segments under this setting:
    /// `s → w₁, w₁ → w₂, …, w_k → t`, each carrying the full demand size.
    ///
    /// Degenerate hops (a waypoint equal to the previous endpoint, or a
    /// trailing waypoint equal to `t`) are skipped, matching the semantics
    /// that "reaching" an already-reached node is a no-op.
    pub fn segments_of(&self, i: usize, demand: &Demand) -> Vec<(NodeId, NodeId, f64)> {
        let mut segs = Vec::with_capacity(self.per_demand[i].len() + 1);
        let mut cur = demand.src;
        for &w in &self.per_demand[i] {
            if w != cur {
                segs.push((cur, w, demand.size));
                cur = w;
            }
        }
        if cur != demand.dst {
            segs.push((cur, demand.dst, demand.size));
        }
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands() -> DemandList {
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        d.push(NodeId(1), NodeId(3), 1.0);
        d
    }

    #[test]
    fn none_has_empty_rows() {
        let w = WaypointSetting::none(2);
        assert_eq!(w.len(), 2);
        assert!(w.get(0).is_empty());
        assert_eq!(w.max_used(), 0);
    }

    #[test]
    fn segments_without_waypoints() {
        let d = demands();
        let w = WaypointSetting::none(2);
        assert_eq!(w.segments_of(0, &d[0]), vec![(NodeId(0), NodeId(3), 2.0)]);
    }

    #[test]
    fn segments_with_two_waypoints() {
        let d = demands();
        let mut w = WaypointSetting::none(2);
        w.set(0, vec![NodeId(1), NodeId(2)]);
        assert_eq!(
            w.segments_of(0, &d[0]),
            vec![
                (NodeId(0), NodeId(1), 2.0),
                (NodeId(1), NodeId(2), 2.0),
                (NodeId(2), NodeId(3), 2.0)
            ]
        );
    }

    #[test]
    fn degenerate_waypoints_are_skipped() {
        let d = demands();
        let mut w = WaypointSetting::none(2);
        // Waypoint equal to the source, duplicated waypoint, waypoint equal
        // to the destination: all no-ops.
        w.set(0, vec![NodeId(0), NodeId(2), NodeId(2), NodeId(3)]);
        assert_eq!(
            w.segments_of(0, &d[0]),
            vec![(NodeId(0), NodeId(2), 2.0), (NodeId(2), NodeId(3), 2.0)]
        );
    }

    #[test]
    fn budget_is_enforced() {
        let d = demands();
        let table = vec![vec![NodeId(1), NodeId(2)], vec![]];
        assert!(WaypointSetting::new(&d, table.clone(), 1).is_err());
        assert!(WaypointSetting::new(&d, table, 2).is_ok());
    }

    #[test]
    fn row_count_is_enforced() {
        let d = demands();
        assert!(WaypointSetting::new(&d, vec![vec![]], 1).is_err());
    }
}
