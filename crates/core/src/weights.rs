//! Link weight settings `w: E → R+`, including the paper's *standard*
//! settings (Definition 3.2): unit weights and inverse-of-capacity weights.

use crate::error::TeError;
use crate::network::Network;
use segrout_graph::EdgeId;

/// A positive real weight per link.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightSetting {
    weights: Vec<f64>,
}

impl WeightSetting {
    /// Wraps a weight vector, validating positivity and length against the
    /// network.
    pub fn new(network: &Network, weights: Vec<f64>) -> Result<Self, TeError> {
        if weights.len() != network.edge_count() {
            return Err(TeError::DimensionMismatch {
                what: "weights",
                expected: network.edge_count(),
                actual: weights.len(),
            });
        }
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(TeError::InvalidWeight { edge: i, value: w });
            }
        }
        Ok(Self { weights })
    }

    /// The *unit* standard setting: weight 1 on every link.
    pub fn unit(network: &Network) -> Self {
        Self {
            weights: vec![1.0; network.edge_count()],
        }
    }

    /// The *inverse of capacities* standard setting (recommended by Cisco):
    /// `w(ℓ) = 1 / c(ℓ)`.
    pub fn inverse_capacity(network: &Network) -> Self {
        Self {
            weights: network.capacities().iter().map(|c| 1.0 / c).collect(),
        }
    }

    /// Weight of link `e`.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f64 {
        self.weights[e.index()]
    }

    /// Overwrites the weight of link `e`.
    ///
    /// # Panics
    /// Panics if the new weight is not a positive finite real.
    pub fn set(&mut self, e: EdgeId, w: f64) {
        assert!(w.is_finite() && w > 0.0, "weight must be positive finite");
        self.weights[e.index()] = w;
    }

    /// The raw weight vector, indexed by edge id.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Consumes the setting, returning the raw vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_graph::NodeId;

    fn two_link_net() -> Network {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 4.0);
        b.link(NodeId(1), NodeId(2), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn unit_weights() {
        let net = two_link_net();
        let w = WeightSetting::unit(&net);
        assert_eq!(w.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn inverse_capacity_weights() {
        let net = two_link_net();
        let w = WeightSetting::inverse_capacity(&net);
        assert_eq!(w.get(EdgeId(0)), 0.25);
        assert_eq!(w.get(EdgeId(1)), 2.0);
    }

    #[test]
    fn validation_rejects_bad_weights() {
        let net = two_link_net();
        assert!(WeightSetting::new(&net, vec![1.0]).is_err());
        assert!(WeightSetting::new(&net, vec![1.0, 0.0]).is_err());
        assert!(WeightSetting::new(&net, vec![1.0, f64::INFINITY]).is_err());
        assert!(WeightSetting::new(&net, vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn set_and_get() {
        let net = two_link_net();
        let mut w = WeightSetting::unit(&net);
        w.set(EdgeId(1), 7.0);
        assert_eq!(w.get(EdgeId(1)), 7.0);
        assert_eq!(w.into_vec(), vec![1.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn set_rejects_negative() {
        let net = two_link_net();
        WeightSetting::unit(&net).set(EdgeId(0), -3.0);
    }
}
