//! A compact directed multigraph with stable integer node and edge ids.
//!
//! Nodes are created up front (`Digraph::new(n)`); edges are appended and
//! receive consecutive [`EdgeId`]s. Edge ids are the universal index into the
//! per-edge attribute vectors used across the workspace (capacities, weights,
//! loads), which keeps all hot paths allocation-free and cache friendly.

use std::fmt;

/// Identifier of a node (router). Wraps a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge (link). Wraps a dense index in `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node id as a usable vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge id as a usable vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directed multigraph.
///
/// Parallel edges are allowed (several of the paper's constructions use
/// parallel two-hop paths, and SNDLib topologies occasionally carry parallel
/// links); self-loops are rejected because no TE flow ever uses one.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    /// `edges[e] = (src, dst)`.
    edges: Vec<(NodeId, NodeId)>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    inn: Vec<Vec<EdgeId>>,
}

impl Digraph {
    /// Creates a graph with `n` isolated nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        Self {
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Appends one more isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        NodeId((self.out.len() - 1) as u32)
    }

    /// Adds a directed edge `u -> v` and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range, if `u == v` (self-loop),
    /// or if the edge count would overflow the `u32` id/offset domain the
    /// CSR arenas index with.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(
            u.index() < self.node_count() && v.index() < self.node_count(),
            "edge endpoint out of range: ({u:?}, {v:?}) with {} nodes",
            self.node_count()
        );
        assert!(u != v, "self-loops are not allowed ({u:?})");
        assert!(
            self.edges.len() < u32::MAX as usize,
            "edge count overflows the u32 id domain"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((u, v));
        self.out[u.index()].push(id);
        self.inn[v.index()].push(id);
        id
    }

    /// Adds the pair of directed edges `u -> v` and `v -> u`, returning both
    /// ids. Convenience for the "bi-directed arc" convention of the paper's
    /// figures and of SNDLib topologies.
    pub fn add_bidirected(&mut self, u: NodeId, v: NodeId) -> (EdgeId, EdgeId) {
        (self.add_edge(u, v), self.add_edge(v, u))
    }

    /// The `(source, destination)` pair of an edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Source node of an edge.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].0
    }

    /// Destination node of an edge.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].1
    }

    /// Outgoing edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out[v.index()]
    }

    /// Incoming edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.inn[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inn[v.index()].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Iterator over `(edge, src, dst)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i as u32), u, v))
    }

    /// Looks up the first edge `u -> v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.out[u.index()]
            .iter()
            .copied()
            .find(|&e| self.dst(e) == v)
    }

    /// The largest out-degree over all nodes (the paper's `Δ*`).
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns the reverse graph (every edge flipped). Edge ids are preserved,
    /// i.e. edge `e` in the reverse graph is edge `e` of `self` with swapped
    /// endpoints.
    pub fn reversed(&self) -> Digraph {
        let mut g = Digraph::new(self.node_count());
        for &(u, v) in &self.edges {
            // preserves ids because edges are appended in order
            g.add_edge(v, u);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn endpoints_round_trip() {
        let g = diamond();
        for (e, u, v) in g.edges() {
            assert_eq!(g.endpoints(e), (u, v));
            assert_eq!(g.src(e), u);
            assert_eq!(g.dst(e), v);
            assert!(g.out_edges(u).contains(&e));
            assert!(g.in_edges(v).contains(&e));
        }
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Digraph::new(2);
        let a = g.add_edge(NodeId(0), NodeId(1));
        let b = g.add_edge(NodeId(0), NodeId(1));
        assert_ne!(a, b);
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Digraph::new(1);
        g.add_edge(NodeId(0), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Digraph::new(1);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn reversed_preserves_edge_ids() {
        let g = diamond();
        let r = g.reversed();
        for e in g.edge_ids() {
            assert_eq!(g.src(e), r.dst(e));
            assert_eq!(g.dst(e), r.src(e));
        }
    }

    #[test]
    fn find_edge_finds_first_match() {
        let g = diamond();
        assert_eq!(g.find_edge(NodeId(0), NodeId(1)), Some(EdgeId(0)));
        assert_eq!(g.find_edge(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = diamond();
        let v = g.add_node();
        assert_eq!(v, NodeId(4));
        assert_eq!(g.node_count(), 5);
        g.add_edge(NodeId(3), v);
        assert_eq!(g.in_degree(v), 1);
    }

    #[test]
    fn bidirected_adds_two_edges() {
        let mut g = Digraph::new(2);
        let (f, b) = g.add_bidirected(NodeId(0), NodeId(1));
        assert_eq!(g.endpoints(f), (NodeId(0), NodeId(1)));
        assert_eq!(g.endpoints(b), (NodeId(1), NodeId(0)));
    }
}
