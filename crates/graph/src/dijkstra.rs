//! Single-target shortest paths and the induced shortest-path DAG.
//!
//! ECMP routing is destination-driven: a router forwards a packet destined to
//! `t` over *all* outgoing links that lie on some shortest path to `t`
//! (paper §1.1). The natural primitive is therefore a Dijkstra run *towards* a
//! target over the reversed adjacency, yielding `dist(v, t)` for every `v`,
//! plus the subgraph of links `(u, v)` with `dist(u) = w(u,v) + dist(v)` —
//! the *shortest-path DAG* to `t`.

use crate::digraph::{Digraph, EdgeId, NodeId};
use crate::{approx_eq, EPS};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Distance value for unreachable nodes.
pub const INFINITY: f64 = f64::INFINITY;

/// The `dijkstra.relaxations` / `dijkstra.runs` counter handles, resolved
/// once: Dijkstra runs are frequent and short, so they must not pay a
/// registry lookup each time.
fn counters() -> &'static (
    std::sync::Arc<segrout_obs::Counter>,
    std::sync::Arc<segrout_obs::Counter>,
) {
    static HANDLES: std::sync::OnceLock<(
        std::sync::Arc<segrout_obs::Counter>,
        std::sync::Arc<segrout_obs::Counter>,
    )> = std::sync::OnceLock::new();
    HANDLES.get_or_init(|| {
        (
            segrout_obs::counter("dijkstra.relaxations"),
            segrout_obs::counter("dijkstra.runs"),
        )
    })
}

/// Min-heap entry: (distance, node), ordered by smallest distance first.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance.
        // Distances are never NaN (weights are validated positive finite).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Computes `dist(v, target)` for every node `v`, i.e. the cost of the
/// cheapest directed path from `v` to `target` under `weights`.
///
/// Unreachable nodes get [`INFINITY`].
///
/// # Panics
/// Panics if `weights.len() != g.edge_count()` or any weight is not a
/// strictly positive finite number (the paper's weight settings map every
/// link to a positive real).
pub fn single_target_distances(g: &Digraph, weights: &[f64], target: NodeId) -> Vec<f64> {
    assert_eq!(
        weights.len(),
        g.edge_count(),
        "weight vector length must match edge count"
    );
    debug_assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "link weights must be positive finite reals"
    );

    let n = g.node_count();
    let mut dist = vec![INFINITY; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[target.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: target,
    });

    // Relaxations are tallied locally and flushed with one atomic add per
    // run, so the inner loop stays free of shared-memory traffic.
    let mut relaxations: u64 = 0;
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        // Relax incoming edges: a path u -> v -> ... -> target.
        for &e in g.in_edges(v) {
            let u = g.src(e);
            let nd = d + weights[e.index()];
            relaxations += 1;
            if nd + EPS < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
    let (relax_counter, runs_counter) = counters();
    relax_counter.add(relaxations);
    runs_counter.inc();
    dist
}

/// The shortest-path DAG towards a fixed target node.
///
/// Produced by [`shortest_path_dag`]; consumed by the ECMP flow engine and by
/// the waypoint optimizer, which both propagate flow along `order`.
#[derive(Clone, Debug)]
pub struct SpDag {
    /// The destination all distances refer to.
    pub target: NodeId,
    /// `dist[v]` = cost of the cheapest `v -> target` path ([`INFINITY`] if
    /// none exists).
    pub dist: Vec<f64>,
    /// `edge_on_dag[e]` is `true` iff edge `e = (u, v)` satisfies
    /// `dist(u) = w(e) + dist(v)`, i.e. lies on some shortest path to the
    /// target.
    pub edge_on_dag: Vec<bool>,
    /// For each node, its outgoing DAG edges (the ECMP next-hop set).
    pub dag_out: Vec<Vec<EdgeId>>,
    /// Nodes with a finite distance, sorted by *decreasing* distance. Since
    /// weights are strictly positive this is a topological order of the DAG:
    /// every DAG edge goes from an earlier to a later element.
    pub order: Vec<NodeId>,
}

impl SpDag {
    /// ECMP split degree of `v` towards the target (number of shortest-path
    /// next hops).
    #[inline]
    pub fn split_degree(&self, v: NodeId) -> usize {
        self.dag_out[v.index()].len()
    }

    /// `true` if a shortest path from `v` to the target exists.
    #[inline]
    pub fn reaches_target(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }
}

/// Builds the shortest-path DAG towards `target` under `weights`.
///
/// Edge membership uses the scaled tolerance of [`approx_eq`], so weight
/// settings produced from exact integer arithmetic (all optimizers in this
/// workspace emit integral weights) classify ties exactly.
pub fn shortest_path_dag(g: &Digraph, weights: &[f64], target: NodeId) -> SpDag {
    let dist = single_target_distances(g, weights, target);
    let mut edge_on_dag = vec![false; g.edge_count()];
    let mut dag_out: Vec<Vec<EdgeId>> = vec![Vec::new(); g.node_count()];

    for (e, u, v) in g.edges() {
        let du = dist[u.index()];
        let dv = dist[v.index()];
        if du.is_finite() && dv.is_finite() && approx_eq(du, weights[e.index()] + dv) {
            edge_on_dag[e.index()] = true;
            dag_out[u.index()].push(e);
        }
    }

    let mut order: Vec<NodeId> = g.nodes().filter(|v| dist[v.index()].is_finite()).collect();
    order.sort_by(|a, b| {
        dist[b.index()]
            .partial_cmp(&dist[a.index()])
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });

    SpDag {
        target,
        dist,
        edge_on_dag,
        dag_out,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The diamond with asymmetric weights:
    /// 0 -> 1 (1), 1 -> 3 (1), 0 -> 2 (1), 2 -> 3 (2), 0 -> 3 (2)
    fn weighted_diamond() -> (Digraph, Vec<f64>) {
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(0), NodeId(3));
        (g, vec![1.0, 1.0, 1.0, 2.0, 2.0])
    }

    #[test]
    fn distances_to_target() {
        let (g, w) = weighted_diamond();
        let d = single_target_distances(&g, &w, NodeId(3));
        assert_eq!(d[3], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[0], 2.0); // via 1 or the direct edge
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        // node 2 cannot reach node 1
        let d = single_target_distances(&g, &[1.0], NodeId(1));
        assert!(d[2].is_infinite());
        assert_eq!(d[0], 1.0);
    }

    #[test]
    fn dag_contains_exactly_tight_edges() {
        let (g, w) = weighted_diamond();
        let dag = shortest_path_dag(&g, &w, NodeId(3));
        // shortest paths from 0: 0-1-3 (cost 2) and 0-3 (cost 2); 0-2-3 costs 3.
        assert!(dag.edge_on_dag[0]); // 0->1
        assert!(dag.edge_on_dag[1]); // 1->3
        assert!(!dag.edge_on_dag[2]); // 0->2 (not tight for node 0)
        assert!(dag.edge_on_dag[3]); // 2->3 is node 2's own shortest path
        assert!(dag.edge_on_dag[4]); // 0->3 direct
        assert_eq!(dag.split_degree(NodeId(0)), 2);
        assert_eq!(dag.split_degree(NodeId(1)), 1);
    }

    #[test]
    fn order_is_topological() {
        let (g, w) = weighted_diamond();
        let dag = shortest_path_dag(&g, &w, NodeId(3));
        let pos: Vec<usize> = {
            let mut p = vec![usize::MAX; g.node_count()];
            for (i, v) in dag.order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (e, u, v) in g.edges() {
            if dag.edge_on_dag[e.index()] {
                assert!(pos[u.index()] < pos[v.index()], "edge {e:?} violates order");
            }
        }
        assert_eq!(*dag.order.last().unwrap(), NodeId(3));
    }

    #[test]
    fn parallel_shortest_edges_both_on_dag() {
        let mut g = Digraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let dag = shortest_path_dag(&g, &[1.0, 1.0], NodeId(1));
        assert_eq!(dag.split_degree(NodeId(0)), 2);
    }

    #[test]
    fn tie_detection_with_integer_weights() {
        // Two equal-cost two-hop paths.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let dag = shortest_path_dag(&g, &[5.0, 7.0, 4.0, 8.0], NodeId(3));
        assert_eq!(dag.dist[0], 12.0);
        assert_eq!(dag.split_degree(NodeId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_weight_length_panics() {
        let (g, _) = weighted_diamond();
        single_target_distances(&g, &[1.0], NodeId(0));
    }

    #[test]
    fn reaches_target_reports_reachability() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let dag = shortest_path_dag(&g, &[1.0], NodeId(1));
        assert!(dag.reaches_target(NodeId(0)));
        assert!(!dag.reaches_target(NodeId(2)));
    }
}
