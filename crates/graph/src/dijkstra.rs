//! Single-target shortest paths and the induced shortest-path DAG.
//!
//! ECMP routing is destination-driven: a router forwards a packet destined to
//! `t` over *all* outgoing links that lie on some shortest path to `t`
//! (paper §1.1). The natural primitive is therefore a Dijkstra run *towards* a
//! target over the reversed adjacency, yielding `dist(v, t)` for every `v`,
//! plus the subgraph of links `(u, v)` with `dist(u) = w(u,v) + dist(v)` —
//! the *shortest-path DAG* to `t`.
//!
//! Two queue engines back [`single_target_distances`]:
//!
//! * a **monotone bucket queue** (Dial's algorithm) for the integer weight
//!   domain `[1, w_max]` every optimizer in this workspace emits — O(1)
//!   pushes into a ring of `w_max + 1` buckets instead of heap sifts;
//! * the classic `BinaryHeap`, kept verbatim as
//!   [`single_target_distances_heap`] — both the fallback for non-integral
//!   weights and the differential **oracle** the bucket queue is pinned
//!   against (see `tests/hotloop_differential.rs`).
//!
//! Integral weights make every finite distance an exact integer far below
//! 2^53, so both engines compute bit-identical `f64` distance vectors and —
//! through the shared [`dag_from_dist`] builder — bit-identical DAGs.
//!
//! Both engines, the DAG builder and the dynamic-repair path additionally
//! honor an optional **disabled-edge mask** (`_masked` entry points): a
//! disabled edge is skipped during relaxation and excluded from the
//! tight-edge scan, which is *exactly* the arithmetic of deleting the edge
//! and re-running from scratch — the remaining edges relax in the same order
//! with the same `f64` operations, so masked results are bit-identical to
//! the edge-deleted graph. This is how link failures are modelled: weights
//! stay finite (the bucket queue keeps its `[1, MAX_DIAL_WEIGHT]` domain)
//! and a failure is a mask bit, not a weight perturbation. Nodes cut off by
//! a failure end at [`INFINITY`], a classified outcome rather than an error.

use crate::digraph::{Digraph, EdgeId, NodeId};
use crate::{approx_eq, EPS};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};

/// Distance value for unreachable nodes.
pub const INFINITY: f64 = f64::INFINITY;

/// Largest integral weight the bucket queue accepts. Beyond this the ring
/// of `w_max + 1` buckets stops paying for itself and the heap engine takes
/// over. Fortz–Thorup weight search stays in `[1, ~20]`; this cap leaves two
/// orders of magnitude of headroom.
pub const MAX_DIAL_WEIGHT: u32 = 4096;

/// When set, [`single_target_distances`] always uses the `BinaryHeap`
/// engine. Used by benches for A/B timing and by differential tests.
static HEAP_ONLY: AtomicBool = AtomicBool::new(false);

/// Forces (`true`) or re-enables dispatch away from (`false`) the
/// `BinaryHeap` engine. Global: intended for benches and differential
/// harnesses, not concurrent toggling.
pub fn set_heap_only(on: bool) {
    HEAP_ONLY.store(on, AtomicOrdering::Relaxed);
}

/// `true` if bucket-queue dispatch is currently disabled.
pub fn heap_only() -> bool {
    HEAP_ONLY.load(AtomicOrdering::Relaxed)
}

/// The `dijkstra.*` counter handles, resolved once: Dijkstra runs are
/// frequent and short, so they must not pay a registry lookup each time.
/// Order: (relaxations, runs, bucket_ops).
fn counters() -> &'static (
    std::sync::Arc<segrout_obs::Counter>,
    std::sync::Arc<segrout_obs::Counter>,
    std::sync::Arc<segrout_obs::Counter>,
) {
    static HANDLES: std::sync::OnceLock<(
        std::sync::Arc<segrout_obs::Counter>,
        std::sync::Arc<segrout_obs::Counter>,
        std::sync::Arc<segrout_obs::Counter>,
    )> = std::sync::OnceLock::new();
    HANDLES.get_or_init(|| {
        (
            segrout_obs::counter("dijkstra.relaxations"),
            segrout_obs::counter("dijkstra.runs"),
            segrout_obs::counter("dijkstra.bucket_ops"),
        )
    })
}

/// Min-heap entry: (distance, node), ordered by smallest distance first.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance.
        // Distances are never NaN (weights are validated positive finite).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// `true` iff the mask marks edge `e` disabled. An empty mask (the common
/// intact-topology case) disables nothing and costs one length check.
#[inline]
pub fn edge_disabled(disabled: &[bool], e: EdgeId) -> bool {
    !disabled.is_empty() && disabled[e.index()]
}

/// A disabled-edge mask is either empty (nothing disabled) or one flag per
/// edge — any other length is a construction bug upstream.
fn check_mask(g: &Digraph, disabled: &[bool]) {
    assert!(
        disabled.is_empty() || disabled.len() == g.edge_count(),
        "disabled mask length {} must be empty or match edge count {}",
        disabled.len(),
        g.edge_count()
    );
}

/// Checks whether `weights` lies in the bucket-queue domain: every weight an
/// exact integer in `[1, MAX_DIAL_WEIGHT]`, with all shortest-path sums
/// (< `n` hops each) guaranteed to fit `u32`. Returns the maximum weight.
fn dial_weight_domain(n: usize, weights: &[f64]) -> Option<u32> {
    let mut wmax = 0u32;
    for &w in weights {
        if !(1.0..=MAX_DIAL_WEIGHT as f64).contains(&w) || w.fract() != 0.0 {
            return None;
        }
        wmax = wmax.max(w as u32);
    }
    if (n as u64) * (wmax as u64) >= u32::MAX as u64 {
        return None;
    }
    Some(wmax)
}

/// Reusable bucket-queue scratch. The ring buckets drain empty on every run
/// (each push is matched by a pop before termination), so only `dist_int`
/// and the integerized weights need re-filling per run — the bucket `Vec`s
/// keep their capacity across the millions of runs a weight search performs.
struct DialScratch {
    dist_int: Vec<u32>,
    wi: Vec<u32>,
    ring: Vec<Vec<u32>>,
}

thread_local! {
    static DIAL: RefCell<DialScratch> = const {
        RefCell::new(DialScratch {
            dist_int: Vec::new(),
            wi: Vec::new(),
            ring: Vec::new(),
        })
    };
}

/// Dial's algorithm: monotone Dijkstra over a ring of `wmax + 1` buckets.
/// Requires `dial_weight_domain` to have accepted `weights`. The `MASKED`
/// instantiation skips disabled edges during relaxation (monomorphized so
/// the intact-topology loop carries no mask branch).
fn dial_run<const MASKED: bool>(
    g: &Digraph,
    weights: &[f64],
    wmax: u32,
    target: NodeId,
    disabled: &[bool],
) -> Vec<f64> {
    let n = g.node_count();
    let ring_len = wmax as usize + 1;
    DIAL.with(|s| {
        let mut s = s.borrow_mut();
        let DialScratch { dist_int, wi, ring } = &mut *s;
        dist_int.clear();
        dist_int.resize(n, u32::MAX);
        wi.clear();
        wi.extend(weights.iter().map(|&w| w as u32));
        if ring.len() < ring_len {
            ring.resize_with(ring_len, Vec::new);
        }

        dist_int[target.index()] = 0;
        ring[0].push(target.0);
        let mut pending = 1usize;
        let mut cur: u64 = 0;
        let mut relaxations: u64 = 0;
        let mut bucket_ops: u64 = 1;
        while pending > 0 {
            let b = (cur % ring_len as u64) as usize;
            while let Some(vi) = ring[b].pop() {
                pending -= 1;
                if dist_int[vi as usize] as u64 != cur {
                    continue; // stale entry superseded by a later decrease
                }
                // Settled: monotonicity means no future relaxation can
                // produce a key < cur, and strict-improvement pushes mean at
                // most one live entry per (node, key) pair.
                for &e in g.in_edges(NodeId(vi)) {
                    if MASKED && disabled[e.index()] {
                        continue;
                    }
                    let u = g.src(e);
                    relaxations += 1;
                    let nd = cur as u32 + wi[e.index()];
                    if nd < dist_int[u.index()] {
                        dist_int[u.index()] = nd;
                        // nd ∈ [cur+1, cur+wmax] never aliases bucket b.
                        ring[nd as usize % ring_len].push(u.0);
                        pending += 1;
                        bucket_ops += 1;
                    }
                }
            }
            cur += 1;
        }

        let (relax_counter, runs_counter, bucket_counter) = counters();
        relax_counter.add(relaxations);
        runs_counter.inc();
        bucket_counter.add(bucket_ops);

        dist_int
            .iter()
            .map(|&d| if d == u32::MAX { INFINITY } else { d as f64 })
            .collect()
    })
}

/// The `BinaryHeap` engine, shared by both public entry points. As with
/// [`dial_run`], the `MASKED` instantiation skips disabled edges.
fn heap_run<const MASKED: bool>(
    g: &Digraph,
    weights: &[f64],
    target: NodeId,
    disabled: &[bool],
) -> Vec<f64> {
    let n = g.node_count();
    let mut dist = vec![INFINITY; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[target.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: target,
    });

    // Relaxations are tallied locally and flushed with one atomic add per
    // run, so the inner loop stays free of shared-memory traffic.
    let mut relaxations: u64 = 0;
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        // Relax incoming edges: a path u -> v -> ... -> target.
        for &e in g.in_edges(v) {
            if MASKED && disabled[e.index()] {
                continue;
            }
            let u = g.src(e);
            let nd = d + weights[e.index()];
            relaxations += 1;
            if nd + EPS < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
    let (relax_counter, runs_counter, _) = counters();
    relax_counter.add(relaxations);
    runs_counter.inc();
    dist
}

fn check_weights(g: &Digraph, weights: &[f64]) {
    assert_eq!(
        weights.len(),
        g.edge_count(),
        "weight vector length must match edge count"
    );
    debug_assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "link weights must be positive finite reals"
    );
}

/// Computes `dist(v, target)` for every node `v`, i.e. the cost of the
/// cheapest directed path from `v` to `target` under `weights`.
///
/// Unreachable nodes get [`INFINITY`]. Dispatches to the bucket-queue engine
/// when the weights are integral in `[1, MAX_DIAL_WEIGHT]` (bit-identical
/// result — see module docs), to the `BinaryHeap` engine otherwise.
///
/// # Panics
/// Panics if `weights.len() != g.edge_count()` or any weight is not a
/// strictly positive finite number (the paper's weight settings map every
/// link to a positive real).
pub fn single_target_distances(g: &Digraph, weights: &[f64], target: NodeId) -> Vec<f64> {
    check_weights(g, weights);
    run_engine(g, weights, target, &[])
}

/// [`single_target_distances`] under a disabled-edge mask: disabled edges
/// are skipped exactly as if deleted (bit-identical distances — see module
/// docs). An empty mask is the intact topology. Weights of disabled edges
/// must still be valid (they are never read into a path sum but keep the
/// bucket-queue weight domain decidable).
pub fn single_target_distances_masked(
    g: &Digraph,
    weights: &[f64],
    target: NodeId,
    disabled: &[bool],
) -> Vec<f64> {
    check_weights(g, weights);
    check_mask(g, disabled);
    run_engine(g, weights, target, disabled)
}

/// Engine dispatch shared by the masked and unmasked entry points.
fn run_engine(g: &Digraph, weights: &[f64], target: NodeId, disabled: &[bool]) -> Vec<f64> {
    if !heap_only() {
        if let Some(wmax) = dial_weight_domain(g.node_count(), weights) {
            return if disabled.is_empty() {
                dial_run::<false>(g, weights, wmax, target, disabled)
            } else {
                dial_run::<true>(g, weights, wmax, target, disabled)
            };
        }
    }
    if disabled.is_empty() {
        heap_run::<false>(g, weights, target, disabled)
    } else {
        heap_run::<true>(g, weights, target, disabled)
    }
}

/// The `BinaryHeap` reference engine, exposed as the differential oracle for
/// the bucket queue. Same contract as [`single_target_distances`].
pub fn single_target_distances_heap(g: &Digraph, weights: &[f64], target: NodeId) -> Vec<f64> {
    check_weights(g, weights);
    heap_run::<false>(g, weights, target, &[])
}

/// The `BinaryHeap` oracle under a disabled-edge mask. Same contract as
/// [`single_target_distances_masked`].
pub fn single_target_distances_heap_masked(
    g: &Digraph,
    weights: &[f64],
    target: NodeId,
    disabled: &[bool],
) -> Vec<f64> {
    check_weights(g, weights);
    check_mask(g, disabled);
    if disabled.is_empty() {
        heap_run::<false>(g, weights, target, disabled)
    } else {
        heap_run::<true>(g, weights, target, disabled)
    }
}

/// The shortest-path DAG towards a fixed target node, stored in flat
/// CSR-style arenas (an offset slab plus an edge-id slab) instead of
/// per-node `Vec`s — one contiguous allocation the evaluator hot loop can
/// walk without pointer chasing.
///
/// Produced by [`shortest_path_dag`]; consumed by the ECMP flow engine and by
/// the waypoint optimizer, which both propagate flow along `order`.
#[derive(Clone, Debug)]
pub struct SpDag {
    /// The destination all distances refer to.
    pub target: NodeId,
    /// `dist[v]` = cost of the cheapest `v -> target` path ([`INFINITY`] if
    /// none exists).
    pub dist: Vec<f64>,
    /// `edge_on_dag[e]` is `true` iff edge `e = (u, v)` satisfies
    /// `dist(u) = w(e) + dist(v)`, i.e. lies on some shortest path to the
    /// target.
    pub edge_on_dag: Vec<bool>,
    /// CSR row offsets into `dag_edges`, length `n + 1`: node `v`'s ECMP
    /// next-hop edges are `dag_edges[dag_start[v] .. dag_start[v + 1]]`.
    pub dag_start: Vec<u32>,
    /// Flat slab of on-DAG edges grouped by tail node, ascending edge id
    /// within each group.
    pub dag_edges: Vec<EdgeId>,
    /// Nodes with a finite distance, sorted by *decreasing* distance. Since
    /// weights are strictly positive this is a topological order of the DAG:
    /// every DAG edge goes from an earlier to a later element.
    pub order: Vec<NodeId>,
}

impl SpDag {
    /// The ECMP next-hop edge set of `v` towards the target.
    #[inline]
    pub fn dag_out(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.dag_start[v.index()] as usize;
        let hi = self.dag_start[v.index() + 1] as usize;
        &self.dag_edges[lo..hi]
    }

    /// ECMP split degree of `v` towards the target (number of shortest-path
    /// next hops).
    #[inline]
    pub fn split_degree(&self, v: NodeId) -> usize {
        (self.dag_start[v.index() + 1] - self.dag_start[v.index()]) as usize
    }

    /// `true` if a shortest path from `v` to the target exists.
    #[inline]
    pub fn reaches_target(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }
}

/// Exclusive prefix sum of per-row counts into `u32` CSR offsets (length
/// `counts.len() + 1`).
///
/// Guards the flat-arena representation: the running total must fit `u32`,
/// so a graph whose edge count would overflow the offset type is rejected
/// loudly instead of silently wrapping slab indices.
pub fn csr_offsets(counts: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut total: u64 = 0;
    offsets.push(0u32);
    for &c in counts {
        total += c as u64;
        assert!(
            total <= u32::MAX as u64,
            "CSR arena overflow: {total} edges exceed the u32 offset range"
        );
        offsets.push(total as u32);
    }
    offsets
}

/// Builds the shortest-path DAG towards `target` under `weights`.
///
/// Edge membership uses the scaled tolerance of [`approx_eq`], so weight
/// settings produced from exact integer arithmetic (all optimizers in this
/// workspace emit integral weights) classify ties exactly.
pub fn shortest_path_dag(g: &Digraph, weights: &[f64], target: NodeId) -> SpDag {
    let dist = single_target_distances(g, weights, target);
    dag_from_dist(g, weights, target, dist, &[])
}

/// [`shortest_path_dag`] under a disabled-edge mask: disabled edges are
/// excluded both from the distance computation and from the tight-edge scan
/// (a disabled edge can be numerically tight — e.g. one of two parallel
/// equal-weight links — but never carries flow). Bit-identical to building
/// the DAG on a copy of the graph with the masked edges deleted.
pub fn shortest_path_dag_masked(
    g: &Digraph,
    weights: &[f64],
    target: NodeId,
    disabled: &[bool],
) -> SpDag {
    let dist = single_target_distances_masked(g, weights, target, disabled);
    dag_from_dist(g, weights, target, dist, disabled)
}

/// Per-thread scratch for [`dag_from_dist`]: the tight-edge list and the
/// per-node counters are pure build intermediates, so they live in reusable
/// slabs instead of being reallocated on every probe repair.
struct DagScratch {
    /// `(tail, edge)` pairs of tight edges, in ascending edge-id order.
    tight: Vec<(u32, EdgeId)>,
    /// Out-degree counts, then reused as the CSR fill cursor.
    counts: Vec<u32>,
}

thread_local! {
    static DAG_SCRATCH: RefCell<DagScratch> = const {
        RefCell::new(DagScratch {
            tight: Vec::new(),
            counts: Vec::new(),
        })
    };
}

/// Materializes the DAG structure (`edge_on_dag`, the CSR slabs, `order`)
/// from an already-correct distance vector. Shared by the from-scratch
/// builder and the incremental repair path, so both produce byte-identical
/// `SpDag`s from equal distances.
///
/// One pass over `g.edges()` in ascending edge-id order collects the tight
/// edges; counting and CSR placement then walk that (much shorter) list in
/// the same order, which reproduces exactly the per-node edge order the old
/// `Vec<Vec<EdgeId>>` push loop produced. `prev_order` short-circuits the
/// topological sort when the caller knows the distance vector is unchanged
/// (structure-only repairs): equal keys sort to the same unique permutation,
/// so reusing the old order is exact, not an approximation.
fn dag_from_dist_cached(
    g: &Digraph,
    weights: &[f64],
    target: NodeId,
    dist: Vec<f64>,
    prev_order: Option<Vec<NodeId>>,
    disabled: &[bool],
) -> SpDag {
    let n = g.node_count();
    let mut edge_on_dag = vec![false; g.edge_count()];

    DAG_SCRATCH.with(|s| {
        let DagScratch { tight, counts } = &mut *s.borrow_mut();
        tight.clear();
        counts.clear();
        counts.resize(n, 0);
        for (e, u, v) in g.edges() {
            if edge_disabled(disabled, e) {
                continue;
            }
            let du = dist[u.index()];
            let dv = dist[v.index()];
            if du.is_finite() && dv.is_finite() && approx_eq(du, weights[e.index()] + dv) {
                edge_on_dag[e.index()] = true;
                tight.push((u.0, e));
                counts[u.index()] += 1;
            }
        }

        let dag_start = csr_offsets(counts);
        // Reuse `counts` as the fill cursor (the counts are consumed).
        counts.copy_from_slice(&dag_start[..n]);
        let mut dag_edges = vec![EdgeId(0); *dag_start.last().unwrap() as usize];
        for &(u, e) in tight.iter() {
            dag_edges[counts[u as usize] as usize] = e;
            counts[u as usize] += 1;
        }

        // The order is the unique permutation sorted by (dist desc, id asc) —
        // a strict total order over finite non-negative distances, where
        // `total_cmp` agrees bit-for-bit with the IEEE `partial_cmp`, so the
        // allocation-free unstable sort is exact.
        let order: Vec<NodeId> = match prev_order {
            Some(order) => order,
            None => {
                let mut order: Vec<NodeId> =
                    g.nodes().filter(|v| dist[v.index()].is_finite()).collect();
                order.sort_unstable_by(|a, b| {
                    dist[b.index()]
                        .total_cmp(&dist[a.index()])
                        .then_with(|| a.0.cmp(&b.0))
                });
                order
            }
        };

        SpDag {
            target,
            dist,
            edge_on_dag,
            dag_start,
            dag_edges,
            order,
        }
    })
}

fn dag_from_dist(
    g: &Digraph,
    weights: &[f64],
    target: NodeId,
    dist: Vec<f64>,
    disabled: &[bool],
) -> SpDag {
    dag_from_dist_cached(g, weights, target, dist, None, disabled)
}

/// Result of [`update_shortest_path_dag`]: how a single-edge weight change
/// was absorbed for one destination.
#[derive(Clone, Debug)]
pub enum SpDagUpdate {
    /// The change cannot alter this destination's DAG (clean destination).
    Unchanged,
    /// The DAG was repaired by a bounded dynamic-Dijkstra update touching
    /// the given number of nodes.
    Repaired(SpDag, usize),
    /// The repair frontier exceeded the threshold (or the change was too
    /// structural); a full per-destination Dijkstra rebuilt the DAG.
    Rebuilt(SpDag),
}

impl SpDagUpdate {
    /// The updated DAG, if the destination was dirty.
    pub fn into_dag(self) -> Option<SpDag> {
        match self {
            SpDagUpdate::Unchanged => None,
            SpDagUpdate::Repaired(d, _) | SpDagUpdate::Rebuilt(d) => Some(d),
        }
    }
}

/// Cheap dirty test: can changing edge `e` from `old_w` to `new_w` alter
/// `dag`'s shortest-path structure at all?
///
/// * Weight **increase**: only if `e` currently lies on the DAG — paths that
///   avoid `e` are untouched, and no path gets *shorter* when a weight grows.
/// * Weight **decrease**: only if the cheapened edge now matches or beats the
///   current distance at its tail, `new_w + dist(v) ≲ dist(u)` — otherwise
///   every shortest path keeps ignoring `e`.
///
/// A `false` answer is exact (the DAG provably cannot change); `true` means
/// "possibly dirty" and callers run the repair.
pub fn edge_change_affects_dag(dag: &SpDag, e: EdgeId, u: NodeId, v: NodeId, new_w: f64) -> bool {
    let dv = dag.dist[v.index()];
    if !dv.is_finite() {
        // `e` can never be on a shortest path towards this target.
        return false;
    }
    if dag.edge_on_dag[e.index()] {
        // Any change of an on-DAG edge weight moves dist(u) or drops a tie.
        return true;
    }
    // Off-DAG edge: only a decrease that reaches the current distance at `u`
    // can pull `e` (and possibly cheaper paths through it) onto the DAG.
    let cand = new_w + dv;
    let du = dag.dist[u.index()];
    cand + EPS < du || approx_eq(cand, du)
}

/// Repairs `prev` (the shortest-path DAG towards `prev.target` under the
/// *old* weights) after edge `e`'s weight changed from `old_w` to
/// `weights[e]`, where `weights` is the **new** full weight vector.
///
/// The repair follows Ramalingam–Reps: identify the affected node set (nodes
/// whose distance to the target changes), re-run Dijkstra restricted to that
/// set seeded from its unaffected fringe, then rebuild the DAG structure from
/// the patched distances. When the affected set exceeds `frontier_cap` nodes
/// the bounded repair is abandoned and a full per-destination Dijkstra runs
/// instead ([`SpDagUpdate::Rebuilt`]).
///
/// The restricted re-runs keep the `BinaryHeap`: repair frontiers are capped
/// at a few dozen nodes, where a heap beats allocating a distance-spanning
/// bucket ring. (Full rebuilds go through [`shortest_path_dag`] and get the
/// bucket queue.)
///
/// With tie-exact weights (e.g. the integral vectors every optimizer in this
/// workspace emits) the repaired DAG is **bit-identical** to
/// [`shortest_path_dag`] on the new weights: both paths compute the exact
/// distance minima and share [`dag_from_dist`].
pub fn update_shortest_path_dag(
    g: &Digraph,
    weights: &[f64],
    prev: &SpDag,
    e: EdgeId,
    old_w: f64,
    frontier_cap: usize,
) -> SpDagUpdate {
    update_shortest_path_dag_masked(g, weights, prev, e, old_w, frontier_cap, &[])
}

/// [`update_shortest_path_dag`] under a disabled-edge mask: `prev` must have
/// been built under the same mask, and the repair keeps honoring it (skipped
/// relaxations, masked tight-edge scan, masked fallback rebuild). A weight
/// change on a *disabled* edge is a provable no-op and returns
/// [`SpDagUpdate::Unchanged`].
pub fn update_shortest_path_dag_masked(
    g: &Digraph,
    weights: &[f64],
    prev: &SpDag,
    e: EdgeId,
    old_w: f64,
    frontier_cap: usize,
    disabled: &[bool],
) -> SpDagUpdate {
    check_mask(g, disabled);
    if edge_disabled(disabled, e) {
        // A failed link's weight is never read; the DAG cannot change.
        return SpDagUpdate::Unchanged;
    }
    let (u, v) = g.endpoints(e);
    let new_w = weights[e.index()];
    if new_w == old_w || !edge_change_affects_dag(prev, e, u, v, new_w) {
        return SpDagUpdate::Unchanged;
    }
    if new_w > old_w {
        repair_increase(g, weights, prev, u, frontier_cap, disabled)
    } else {
        repair_decrease(g, weights, prev, e, u, v, frontier_cap, disabled)
    }
}

/// Repairs `prev` (built with edge `e` still enabled) after `e` is disabled.
///
/// Removing an edge can only lengthen paths, so this is the weight-increase
/// repair pushed to its limit: if `e` is off the DAG the structure provably
/// cannot change ([`SpDagUpdate::Unchanged`]); if the tail keeps its old
/// distance through another tight edge only the structure is rebuilt
/// (distances and topological order carry over verbatim); otherwise the
/// affected set re-runs restricted Dijkstra under the mask. Nodes whose
/// every path to the target used `e` end at [`INFINITY`] — a disconnection
/// is a classified outcome, not an error.
///
/// `disabled` is the **new** mask and must have `disabled[e]` set; `prev`
/// must have been built under the mask *without* `e`. With tie-exact
/// weights the result is bit-identical to
/// [`shortest_path_dag_masked`] under the new mask.
pub fn disable_edge_update(
    g: &Digraph,
    weights: &[f64],
    prev: &SpDag,
    e: EdgeId,
    frontier_cap: usize,
    disabled: &[bool],
) -> SpDagUpdate {
    check_mask(g, disabled);
    assert!(
        edge_disabled(disabled, e),
        "mask must cover the newly disabled edge {e:?}"
    );
    if !prev.edge_on_dag[e.index()] {
        // Off-DAG removal: no path gets shorter, no tight edge appears.
        return SpDagUpdate::Unchanged;
    }
    repair_increase(g, weights, prev, g.src(e), frontier_cap, disabled)
}

/// Weight increase on an on-DAG edge `e = (u, v)`.
///
/// Phase 1 finds the affected set `A` — nodes *all* of whose shortest paths
/// used `e` — by support counting over the old DAG: `u` loses `e`'s support;
/// a node joins `A` when every one of its DAG out-edges leads into `A`.
/// Phase 2 re-runs Dijkstra restricted to `A`, seeded with the best detour
/// through unaffected neighbours. Nodes outside `A` keep their exact old
/// distances, so work is proportional to the damage, not the graph.
fn repair_increase(
    g: &Digraph,
    weights: &[f64],
    prev: &SpDag,
    u: NodeId,
    frontier_cap: usize,
    disabled: &[bool],
) -> SpDagUpdate {
    let n = g.node_count();
    // Remaining old-distance support per node: DAG out-edges still justified.
    // Read straight off the CSR offsets — row width = out-degree on the DAG.
    let mut support: Vec<usize> = prev
        .dag_start
        .windows(2)
        .map(|w| (w[1] - w[0]) as usize)
        .collect();
    let mut affected = vec![false; n];
    let mut queue = std::collections::VecDeque::new();

    // `e` no longer provides u's old distance (its weight strictly grew).
    support[u.index()] -= 1;
    if support[u.index()] == 0 {
        affected[u.index()] = true;
        queue.push_back(u);
    } else {
        // u keeps its distance through another tight edge; the DAG only
        // loses edge `e` — distances are unchanged, rebuild structure only
        // (and the topological order carries over verbatim).
        let repaired = dag_from_dist_cached(
            g,
            weights,
            prev.target,
            prev.dist.clone(),
            Some(prev.order.clone()),
            disabled,
        );
        return SpDagUpdate::Repaired(repaired, 0);
    }

    let mut affected_nodes: Vec<NodeId> = Vec::new();
    while let Some(x) = queue.pop_front() {
        affected_nodes.push(x);
        if affected_nodes.len() > frontier_cap {
            return SpDagUpdate::Rebuilt(shortest_path_dag_masked(
                g,
                weights,
                prev.target,
                disabled,
            ));
        }
        for &ein in g.in_edges(x) {
            if !prev.edge_on_dag[ein.index()] {
                continue;
            }
            let p = g.src(ein);
            if affected[p.index()] {
                continue;
            }
            support[p.index()] -= 1;
            if support[p.index()] == 0 {
                affected[p.index()] = true;
                queue.push_back(p);
            }
        }
    }

    // Phase 2: Dijkstra restricted to the affected set. Seeds are the best
    // candidates through *unaffected* out-neighbours (including `e` itself
    // at its new weight); edges between affected nodes relax as their heads
    // settle, exactly like the full algorithm.
    let mut dist = prev.dist.clone();
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(affected_nodes.len());
    for &a in &affected_nodes {
        dist[a.index()] = INFINITY;
    }
    for &a in &affected_nodes {
        let mut best = INFINITY;
        for &eo in g.out_edges(a) {
            if edge_disabled(disabled, eo) {
                continue;
            }
            let h = g.dst(eo);
            if affected[h.index()] || !dist[h.index()].is_finite() {
                continue;
            }
            let cand = weights[eo.index()] + dist[h.index()];
            if cand + EPS < best {
                best = cand;
            }
        }
        if best.is_finite() {
            dist[a.index()] = best;
            heap.push(HeapEntry {
                dist: best,
                node: a,
            });
        }
    }
    while let Some(HeapEntry { dist: d, node: x }) = heap.pop() {
        if done[x.index()] || !affected[x.index()] {
            continue;
        }
        if d > dist[x.index()] {
            continue; // stale entry
        }
        done[x.index()] = true;
        for &ein in g.in_edges(x) {
            if edge_disabled(disabled, ein) {
                continue;
            }
            let p = g.src(ein);
            if !affected[p.index()] || done[p.index()] {
                continue;
            }
            let nd = d + weights[ein.index()];
            if nd + EPS < dist[p.index()] {
                dist[p.index()] = nd;
                heap.push(HeapEntry { dist: nd, node: p });
            }
        }
    }

    let touched = affected_nodes.len();
    SpDagUpdate::Repaired(
        dag_from_dist(g, weights, prev.target, dist, disabled),
        touched,
    )
}

/// Weight decrease on `e = (u, v)` that reaches the current distance at `u`.
///
/// If the cheaper edge exactly ties `dist(u)` the distances are unchanged and
/// only the DAG structure is rebuilt. Otherwise the improvement propagates
/// backwards from `u` with a Dijkstra-like frontier over strictly improving
/// nodes — the classical decrease-only dynamic SSSP, whose work is bounded by
/// the set of nodes that actually get closer.
#[allow(clippy::too_many_arguments)] // internal repair kernel: one flat argument list keeps the hot path alloc-free
fn repair_decrease(
    g: &Digraph,
    weights: &[f64],
    prev: &SpDag,
    e: EdgeId,
    u: NodeId,
    v: NodeId,
    frontier_cap: usize,
    disabled: &[bool],
) -> SpDagUpdate {
    let cand = weights[e.index()] + prev.dist[v.index()];
    let du = prev.dist[u.index()];
    if cand + EPS >= du {
        // New tie at u: distances hold (so the order carries over), edge e
        // joins the DAG.
        let repaired = dag_from_dist_cached(
            g,
            weights,
            prev.target,
            prev.dist.clone(),
            Some(prev.order.clone()),
            disabled,
        );
        return SpDagUpdate::Repaired(repaired, 0);
    }

    let mut dist = prev.dist.clone();
    let mut improved = vec![false; g.node_count()];
    let mut touched = 0usize;
    let mut heap = BinaryHeap::new();
    dist[u.index()] = cand;
    improved[u.index()] = true;
    touched += 1;
    heap.push(HeapEntry {
        dist: cand,
        node: u,
    });
    while let Some(HeapEntry { dist: d, node: x }) = heap.pop() {
        if d > dist[x.index()] {
            continue; // superseded by a better improvement
        }
        for &ein in g.in_edges(x) {
            if edge_disabled(disabled, ein) {
                continue;
            }
            let p = g.src(ein);
            let nd = d + weights[ein.index()];
            if nd + EPS < dist[p.index()] {
                dist[p.index()] = nd;
                if !improved[p.index()] {
                    improved[p.index()] = true;
                    touched += 1;
                    if touched > frontier_cap {
                        return SpDagUpdate::Rebuilt(shortest_path_dag_masked(
                            g,
                            weights,
                            prev.target,
                            disabled,
                        ));
                    }
                }
                heap.push(HeapEntry { dist: nd, node: p });
            }
        }
    }
    SpDagUpdate::Repaired(
        dag_from_dist(g, weights, prev.target, dist, disabled),
        touched,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The diamond with asymmetric weights:
    /// 0 -> 1 (1), 1 -> 3 (1), 0 -> 2 (1), 2 -> 3 (2), 0 -> 3 (2)
    fn weighted_diamond() -> (Digraph, Vec<f64>) {
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(0), NodeId(3));
        (g, vec![1.0, 1.0, 1.0, 2.0, 2.0])
    }

    #[test]
    fn distances_to_target() {
        let (g, w) = weighted_diamond();
        let d = single_target_distances(&g, &w, NodeId(3));
        assert_eq!(d[3], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[0], 2.0); // via 1 or the direct edge
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        // node 2 cannot reach node 1
        let d = single_target_distances(&g, &[1.0], NodeId(1));
        assert!(d[2].is_infinite());
        assert_eq!(d[0], 1.0);
    }

    #[test]
    fn dag_contains_exactly_tight_edges() {
        let (g, w) = weighted_diamond();
        let dag = shortest_path_dag(&g, &w, NodeId(3));
        // shortest paths from 0: 0-1-3 (cost 2) and 0-3 (cost 2); 0-2-3 costs 3.
        assert!(dag.edge_on_dag[0]); // 0->1
        assert!(dag.edge_on_dag[1]); // 1->3
        assert!(!dag.edge_on_dag[2]); // 0->2 (not tight for node 0)
        assert!(dag.edge_on_dag[3]); // 2->3 is node 2's own shortest path
        assert!(dag.edge_on_dag[4]); // 0->3 direct
        assert_eq!(dag.split_degree(NodeId(0)), 2);
        assert_eq!(dag.split_degree(NodeId(1)), 1);
        assert_eq!(dag.dag_out(NodeId(0)), &[EdgeId(0), EdgeId(4)]);
    }

    #[test]
    fn order_is_topological() {
        let (g, w) = weighted_diamond();
        let dag = shortest_path_dag(&g, &w, NodeId(3));
        let pos: Vec<usize> = {
            let mut p = vec![usize::MAX; g.node_count()];
            for (i, v) in dag.order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (e, u, v) in g.edges() {
            if dag.edge_on_dag[e.index()] {
                assert!(pos[u.index()] < pos[v.index()], "edge {e:?} violates order");
            }
        }
        assert_eq!(*dag.order.last().unwrap(), NodeId(3));
    }

    #[test]
    fn parallel_shortest_edges_both_on_dag() {
        let mut g = Digraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        let dag = shortest_path_dag(&g, &[1.0, 1.0], NodeId(1));
        assert_eq!(dag.split_degree(NodeId(0)), 2);
    }

    #[test]
    fn tie_detection_with_integer_weights() {
        // Two equal-cost two-hop paths.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let dag = shortest_path_dag(&g, &[5.0, 7.0, 4.0, 8.0], NodeId(3));
        assert_eq!(dag.dist[0], 12.0);
        assert_eq!(dag.split_degree(NodeId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_weight_length_panics() {
        let (g, _) = weighted_diamond();
        single_target_distances(&g, &[1.0], NodeId(0));
    }

    #[test]
    fn reaches_target_reports_reachability() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let dag = shortest_path_dag(&g, &[1.0], NodeId(1));
        assert!(dag.reaches_target(NodeId(0)));
        assert!(!dag.reaches_target(NodeId(2)));
    }

    /// Deterministic xorshift generator shared by the randomized tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Ring-plus-chords random graph: always connected along the ring.
    fn random_graph(state: &mut u64, n: usize) -> Digraph {
        let mut g = Digraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
        }
        for _ in 0..n {
            let a = (xorshift(state) % n as u64) as u32;
            let b = (xorshift(state) % n as u64) as u32;
            if a != b {
                g.add_edge(NodeId(a), NodeId(b));
            }
        }
        g
    }

    #[test]
    fn bucket_and_heap_distances_bit_identical() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..40 {
            let n = 5 + (xorshift(&mut state) % 12) as usize;
            let g = random_graph(&mut state, n);
            let w: Vec<f64> = (0..g.edge_count())
                .map(|_| (1 + xorshift(&mut state) % 20) as f64)
                .collect();
            assert!(dial_weight_domain(n, &w).is_some());
            for t in 0..n {
                let target = NodeId(t as u32);
                let dial = single_target_distances(&g, &w, target);
                let heap = single_target_distances_heap(&g, &w, target);
                let bits = |d: &[f64]| d.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&dial), bits(&heap), "target {target:?}");
            }
        }
    }

    #[test]
    fn dial_domain_rejects_out_of_range_weights() {
        assert_eq!(dial_weight_domain(10, &[1.0, 20.0]), Some(20));
        assert!(dial_weight_domain(10, &[1.5]).is_none()); // fractional
        assert!(dial_weight_domain(10, &[0.5]).is_none()); // below 1
        assert!(dial_weight_domain(10, &[MAX_DIAL_WEIGHT as f64 + 1.0]).is_none());
        // n * wmax must fit u32: a billion-node graph with wmax 4096 cannot.
        assert!(dial_weight_domain(1 << 30, &[MAX_DIAL_WEIGHT as f64]).is_none());
    }

    #[test]
    fn non_integral_weights_fall_back_to_heap() {
        let (g, _) = weighted_diamond();
        let w = vec![1.5, 1.5, 1.0, 2.5, 4.5];
        let d = single_target_distances(&g, &w, NodeId(3));
        let h = single_target_distances_heap(&g, &w, NodeId(3));
        assert_eq!(d, h);
        assert_eq!(d[0], 3.0); // 0->1->3 at 1.5 + 1.5
    }

    #[test]
    fn csr_offsets_prefix_sums() {
        assert_eq!(csr_offsets(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(csr_offsets(&[]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "CSR arena overflow")]
    fn csr_offsets_reject_u32_overflow() {
        // Two rows whose total (2^32) exceeds the u32 offset range. The
        // counts themselves fit u32; only the running sum overflows.
        csr_offsets(&[u32::MAX, 1]);
    }

    /// Bitwise structural equality of two DAGs (dist via `to_bits`).
    fn assert_same_dag(a: &SpDag, b: &SpDag, ctx: &str) {
        let bits = |d: &SpDag| d.dist.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b), "{ctx}: dist diverged");
        assert_eq!(a.edge_on_dag, b.edge_on_dag, "{ctx}: edge set diverged");
        assert_eq!(a.dag_start, b.dag_start, "{ctx}: CSR offsets diverged");
        assert_eq!(a.dag_edges, b.dag_edges, "{ctx}: CSR edge slab diverged");
        assert_eq!(a.order, b.order, "{ctx}: order diverged");
    }

    /// Applies one weight change both incrementally and from scratch and
    /// checks the results match bit-for-bit.
    fn check_update(g: &Digraph, w_old: &[f64], e: EdgeId, new_w: f64, target: NodeId, cap: usize) {
        let prev = shortest_path_dag(g, w_old, target);
        let mut w_new = w_old.to_vec();
        w_new[e.index()] = new_w;
        let scratch = shortest_path_dag(g, &w_new, target);
        let upd = update_shortest_path_dag(g, &w_new, &prev, e, w_old[e.index()], cap);
        let got = match upd {
            SpDagUpdate::Unchanged => prev,
            SpDagUpdate::Repaired(d, _) | SpDagUpdate::Rebuilt(d) => d,
        };
        assert_same_dag(
            &got,
            &scratch,
            &format!("e={e:?} {}->{} target={target:?}", w_old[e.index()], new_w),
        );
    }

    #[test]
    fn increase_on_dag_edge_matches_scratch() {
        let (g, w) = weighted_diamond();
        // 1->3 is on the DAG towards 3; pushing it to 5 reroutes node 0.
        check_update(&g, &w, EdgeId(1), 5.0, NodeId(3), usize::MAX);
    }

    #[test]
    fn decrease_pulls_edge_onto_dag() {
        let (g, w) = weighted_diamond();
        // 2->3 at weight 2 is off node 0's shortest paths; dropping it to 1
        // creates a new tie through node 2.
        check_update(&g, &w, EdgeId(3), 1.0, NodeId(3), usize::MAX);
        // Dropping further makes the path through 2 strictly shortest.
        check_update(&g, &w, EdgeId(2), 0.5, NodeId(3), usize::MAX);
    }

    #[test]
    fn off_dag_increase_is_clean() {
        let (g, w) = weighted_diamond();
        // 0->2 is not on the DAG towards 3; making it longer changes nothing.
        let prev = shortest_path_dag(&g, &w, NodeId(3));
        let mut w_new = w.clone();
        w_new[2] = 9.0;
        assert!(matches!(
            update_shortest_path_dag(&g, &w_new, &prev, EdgeId(2), w[2], usize::MAX),
            SpDagUpdate::Unchanged
        ));
    }

    #[test]
    fn tiny_frontier_cap_falls_back_to_rebuild() {
        // Chain 0 -> 1 -> 2 -> 3: increasing the last hop moves every node,
        // so the affected set (3 nodes) exceeds a cap of 1.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let w = vec![1.0, 1.0, 1.0];
        let prev = shortest_path_dag(&g, &w, NodeId(3));
        let mut w_new = w.clone();
        w_new[2] = 5.0;
        let upd = update_shortest_path_dag(&g, &w_new, &prev, EdgeId(2), w[2], 1);
        assert!(matches!(upd, SpDagUpdate::Rebuilt(_)));
        let scratch = shortest_path_dag(&g, &w_new, NodeId(3));
        assert_same_dag(&upd.into_dag().unwrap(), &scratch, "fallback rebuild");
    }

    /// A copy of `g` with the masked edges actually deleted, plus the map
    /// from old edge ids to the ids in the copy (`None` for deleted edges).
    fn delete_masked(g: &Digraph, disabled: &[bool]) -> (Digraph, Vec<Option<EdgeId>>) {
        let mut h = Digraph::new(g.node_count());
        let mut map = vec![None; g.edge_count()];
        for (e, u, v) in g.edges() {
            if !disabled[e.index()] {
                map[e.index()] = Some(h.add_edge(u, v));
            }
        }
        (h, map)
    }

    /// Masked DAG on `g` vs scratch DAG on the edge-deleted copy: dist,
    /// order and CSR offsets compare directly (node ids are stable), edge
    /// structures compare through the id map.
    fn assert_masked_matches_deleted(
        g: &Digraph,
        w: &[f64],
        disabled: &[bool],
        target: NodeId,
        ctx: &str,
    ) {
        let (h, map) = delete_masked(g, disabled);
        let wh: Vec<f64> = (0..g.edge_count())
            .filter(|&i| map[i].is_some())
            .map(|i| w[i])
            .collect();
        let masked = shortest_path_dag_masked(g, w, target, disabled);
        let deleted = shortest_path_dag(&h, &wh, target);
        let bits = |d: &[f64]| d.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&masked.dist), bits(&deleted.dist), "{ctx}: dist");
        assert_eq!(masked.order, deleted.order, "{ctx}: order");
        assert_eq!(masked.dag_start, deleted.dag_start, "{ctx}: CSR offsets");
        let mapped: Vec<EdgeId> = masked
            .dag_edges
            .iter()
            .map(|&e| map[e.index()].expect("disabled edge on masked DAG"))
            .collect();
        assert_eq!(mapped, deleted.dag_edges, "{ctx}: CSR edge slab");
        for (e, on) in masked.edge_on_dag.iter().enumerate() {
            match map[e] {
                Some(ne) => assert_eq!(*on, deleted.edge_on_dag[ne.index()], "{ctx}: edge {e}"),
                None => assert!(!on, "{ctx}: disabled edge {e} flagged on-DAG"),
            }
        }
        // Both engines agree under the mask, bit for bit.
        let heap = single_target_distances_heap_masked(g, w, target, disabled);
        assert_eq!(bits(&masked.dist), bits(&heap), "{ctx}: dial vs heap");
    }

    #[test]
    fn masked_matches_deleted_graph_randomized() {
        let mut state = 0x5eed_f00d_dead_beefu64;
        for _ in 0..25 {
            let n = 5 + (xorshift(&mut state) % 10) as usize;
            let g = random_graph(&mut state, n);
            let m = g.edge_count();
            let w: Vec<f64> = (0..m)
                .map(|_| (1 + xorshift(&mut state) % 10) as f64)
                .collect();
            // Single and double failures, including disconnecting ones.
            let mut disabled = vec![false; m];
            disabled[(xorshift(&mut state) % m as u64) as usize] = true;
            let target = NodeId((xorshift(&mut state) % n as u64) as u32);
            assert_masked_matches_deleted(&g, &w, &disabled, target, "single");
            disabled[(xorshift(&mut state) % m as u64) as usize] = true;
            assert_masked_matches_deleted(&g, &w, &disabled, target, "double");
        }
    }

    #[test]
    fn masked_disconnection_is_infinity_not_error() {
        // Chain 0 -> 1 -> 2: disabling the middle edge cuts 0 and 1 off.
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let w = vec![1.0, 1.0];
        let dag = shortest_path_dag_masked(&g, &w, NodeId(2), &[false, true]);
        assert!(!dag.reaches_target(NodeId(0)));
        assert!(!dag.reaches_target(NodeId(1)));
        assert!(dag.reaches_target(NodeId(2)));
        assert_eq!(dag.order, vec![NodeId(2)]);
    }

    /// Disables one edge both via [`disable_edge_update`] and from scratch
    /// under the mask and checks the repaired DAG matches bit-for-bit.
    fn check_disable(g: &Digraph, w: &[f64], e: EdgeId, target: NodeId, cap: usize) {
        let prev = shortest_path_dag(g, w, target);
        let mut disabled = vec![false; g.edge_count()];
        disabled[e.index()] = true;
        let scratch = shortest_path_dag_masked(g, w, target, &disabled);
        let got = match disable_edge_update(g, w, &prev, e, cap, &disabled) {
            SpDagUpdate::Unchanged => prev,
            SpDagUpdate::Repaired(d, _) | SpDagUpdate::Rebuilt(d) => d,
        };
        assert_same_dag(
            &got,
            &scratch,
            &format!("disable e={e:?} target={target:?}"),
        );
    }

    #[test]
    fn disable_update_matches_scratch_randomized() {
        let mut state = 0x000f_aded_cafe_1234_u64;
        for _ in 0..25 {
            let n = 5 + (xorshift(&mut state) % 10) as usize;
            let g = random_graph(&mut state, n);
            let m = g.edge_count();
            let w: Vec<f64> = (0..m)
                .map(|_| (1 + xorshift(&mut state) % 10) as f64)
                .collect();
            let target = NodeId((xorshift(&mut state) % n as u64) as u32);
            for _ in 0..6 {
                let e = EdgeId((xorshift(&mut state) % m as u64) as u32);
                check_disable(&g, &w, e, target, usize::MAX);
                check_disable(&g, &w, e, target, 2); // bounded-cap fallback
            }
        }
    }

    #[test]
    fn disable_disconnecting_edge_repairs_to_infinity() {
        // Chain 0 -> 1 -> 2 -> 3 plus a chord 1 -> 3: killing 2 -> 3 leaves
        // node 2 disconnected while 0 and 1 reroute over the chord.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(1), NodeId(3));
        let w = vec![1.0, 1.0, 1.0, 5.0];
        check_disable(&g, &w, EdgeId(2), NodeId(3), usize::MAX);
        let prev = shortest_path_dag(&g, &w, NodeId(3));
        let disabled = vec![false, false, true, false];
        let upd = disable_edge_update(&g, &w, &prev, EdgeId(2), usize::MAX, &disabled);
        let dag = upd.into_dag().expect("on-DAG edge must dirty the DAG");
        assert!(!dag.reaches_target(NodeId(2)));
        assert_eq!(dag.dist[1], 5.0); // rerouted over the chord
    }

    #[test]
    fn masked_weight_update_matches_masked_scratch() {
        // A weight change under a base failure mask must repair to the same
        // DAG a masked scratch build produces.
        let mut state = 0xabcd_ef01_2345u64;
        for _ in 0..20 {
            let n = 6 + (xorshift(&mut state) % 6) as usize;
            let g = random_graph(&mut state, n);
            let m = g.edge_count();
            let mut w: Vec<f64> = (0..m)
                .map(|_| (1 + xorshift(&mut state) % 10) as f64)
                .collect();
            let mut disabled = vec![false; m];
            disabled[(xorshift(&mut state) % m as u64) as usize] = true;
            let target = NodeId((xorshift(&mut state) % n as u64) as u32);
            for _ in 0..5 {
                let e = EdgeId((xorshift(&mut state) % m as u64) as u32);
                let new_w = (1 + xorshift(&mut state) % 10) as f64;
                let prev = shortest_path_dag_masked(&g, &w, target, &disabled);
                let old_w = w[e.index()];
                w[e.index()] = new_w;
                let scratch = shortest_path_dag_masked(&g, &w, target, &disabled);
                let upd =
                    update_shortest_path_dag_masked(&g, &w, &prev, e, old_w, usize::MAX, &disabled);
                let got = match upd {
                    SpDagUpdate::Unchanged => prev,
                    SpDagUpdate::Repaired(d, _) | SpDagUpdate::Rebuilt(d) => d,
                };
                assert_same_dag(&got, &scratch, &format!("masked update e={e:?}"));
            }
        }
    }

    #[test]
    fn randomized_single_edge_changes_match_scratch() {
        // Deterministic xorshift; integral weights in [1, 10] so tie
        // classification is exact — the regime every optimizer works in.
        let mut state = 0x9e3779b97f4a7c15u64;
        for trial in 0..30 {
            let n = 6 + (xorshift(&mut state) % 5) as usize;
            let g = random_graph(&mut state, n);
            let m = g.edge_count();
            let mut w: Vec<f64> = (0..m)
                .map(|_| (1 + xorshift(&mut state) % 10) as f64)
                .collect();
            let target = NodeId((xorshift(&mut state) % n as u64) as u32);
            for _ in 0..8 {
                let e = EdgeId((xorshift(&mut state) % m as u64) as u32);
                let new_w = (1 + xorshift(&mut state) % 10) as f64;
                check_update(&g, &w, e, new_w, target, usize::MAX);
                // Also exercise the bounded-cap path on every other step.
                check_update(&g, &w, e, new_w, target, 2);
                w[e.index()] = new_w;
                let _ = trial;
            }
        }
    }
}
