//! Edge-disjoint paths via Menger's theorem.
//!
//! Paper Theorem 4.2 ("uniform capacities") builds its optimal weight setting
//! on a maximum family of pairwise edge-disjoint `(s,t)`-paths — the "basic
//! paths" `P` with `C · |P| = cut(s, t)`. With unit capacities, an integral
//! maximum flow *is* such a family, so we reuse the Dinic solver with all
//! capacities set to one and decompose the (acyclic) result.

use crate::digraph::{Digraph, NodeId};
use crate::maxflow::{acyclic_max_flow, decompose_into_paths, FlowPath};

/// Computes a maximum-cardinality family of pairwise edge-disjoint directed
/// paths from `s` to `t` (Menger's theorem). Each returned [`FlowPath`]
/// carries `amount == 1.0`.
pub fn edge_disjoint_paths(g: &Digraph, s: NodeId, t: NodeId) -> Vec<FlowPath> {
    let unit = vec![1.0; g.edge_count()];
    let flow = acyclic_max_flow(g, &unit, s, t);
    // Dinic on unit (integral) capacities yields integral flows, so every
    // support edge carries exactly one unit and the decomposition consists of
    // edge-disjoint unit paths.
    decompose_into_paths(g, &flow)
}

/// The edge connectivity from `s` to `t` — the value of a minimum `(s,t)`
/// edge cut, equal to the number of edge-disjoint paths.
pub fn edge_connectivity(g: &Digraph, s: NodeId, t: NodeId) -> usize {
    edge_disjoint_paths(g, s, t).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn two_disjoint_paths_in_diamond() {
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let paths = edge_disjoint_paths(&g, NodeId(0), NodeId(3));
        assert_eq!(paths.len(), 2);
        let mut used = HashSet::new();
        for p in &paths {
            for e in &p.edges {
                assert!(used.insert(*e), "paths share edge {e:?}");
            }
        }
    }

    #[test]
    fn connectivity_bounded_by_degree() {
        // Star-in: three parallel 2-hop routes but only one edge into t.
        let mut g = Digraph::new(5);
        for i in 1..=3u32 {
            g.add_edge(NodeId(0), NodeId(i));
            g.add_edge(NodeId(i), NodeId(4));
        }
        assert_eq!(edge_connectivity(&g, NodeId(0), NodeId(4)), 3);
        // Restrict to a single middle node: connectivity 1.
        let mut g2 = Digraph::new(3);
        g2.add_edge(NodeId(0), NodeId(1));
        g2.add_edge(NodeId(0), NodeId(1));
        g2.add_edge(NodeId(1), NodeId(2));
        assert_eq!(edge_connectivity(&g2, NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn disconnected_pair_has_no_paths() {
        let g = Digraph::new(2);
        assert!(edge_disjoint_paths(&g, NodeId(0), NodeId(1)).is_empty());
    }

    #[test]
    fn paths_are_simple_and_terminate() {
        // Grid-ish graph with a shortcut.
        let mut g = Digraph::new(6);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(5));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(3), NodeId(4));
        g.add_edge(NodeId(4), NodeId(5));
        g.add_edge(NodeId(1), NodeId(4));
        let paths = edge_disjoint_paths(&g, NodeId(0), NodeId(5));
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let nodes = p.nodes(&g);
            let set: HashSet<_> = nodes.iter().collect();
            assert_eq!(set.len(), nodes.len(), "path revisits a node");
        }
    }
}
