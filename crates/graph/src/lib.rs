//! # segrout-graph
//!
//! Directed-graph substrate for the `segrout` traffic-engineering workspace.
//!
//! This crate provides every graph primitive the paper
//! *Traffic Engineering with Joint Link Weight and Segment Optimization*
//! (CoNEXT'21) relies on, implemented from scratch:
//!
//! * [`Digraph`] — a compact directed multigraph with stable node/edge ids,
//! * [`dijkstra`] — single-target shortest-path distances and the induced
//!   shortest-path DAG used by ECMP routing,
//! * [`topo`] — topological orderings and cycle detection,
//! * [`maxflow`] — Dinic maximum flow on real-valued capacities, cycle
//!   cancellation to obtain *acyclic* maximum flows (paper §2, "Acyclic
//!   Maximum Flow"), and flow decomposition into paths (paper Theorem 4.3),
//! * [`traversal`] — BFS/DFS reachability helpers,
//! * [`disjoint`] — edge-disjoint path extraction (Menger's theorem,
//!   paper Theorem 4.2).
//!
//! The graphs here are small (ISP backbones, tens to hundreds of nodes), so
//! the implementations favour clarity and robustness over asymptotic heroics,
//! in line with the repository's networking style guides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digraph;
pub mod dijkstra;
pub mod disjoint;
pub mod maxflow;
pub mod metrics;
pub mod mincut;
pub mod topo;
pub mod traversal;

pub use digraph::{Digraph, EdgeId, NodeId};
pub use dijkstra::{
    csr_offsets, disable_edge_update, edge_change_affects_dag, edge_disabled, heap_only,
    set_heap_only, shortest_path_dag, shortest_path_dag_masked, single_target_distances,
    single_target_distances_heap, single_target_distances_heap_masked,
    single_target_distances_masked, update_shortest_path_dag, update_shortest_path_dag_masked,
    SpDag, SpDagUpdate, INFINITY, MAX_DIAL_WEIGHT,
};
pub use maxflow::{acyclic_max_flow, decompose_into_paths, max_flow, Flow, FlowPath};
pub use metrics::{metrics, strongly_connected_components, GraphMetrics};
pub use mincut::{min_cut, MinCut};
pub use topo::{is_acyclic, topological_order};

/// Absolute tolerance used when comparing real-valued weights, capacities and
/// flow amounts throughout the workspace.
///
/// All inputs in the paper's evaluation are "human scale" (capacities in
/// Mbit/s, weights in `[1, 2 * max-degree * n]`), so an absolute epsilon is
/// appropriate; callers working at wildly different magnitudes should
/// normalise first.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal within [`EPS`] scaled by the
/// magnitude of the operands (so that comparisons stay meaningful for values
/// far from 1.0).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= EPS * scale
}

/// Returns `true` when `a` is strictly less than `b` beyond the scaled
/// tolerance of [`approx_eq`].
#[inline]
pub fn approx_lt(a: f64, b: f64) -> bool {
    !approx_eq(a, b) && a < b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_tiny_differences() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(0.0, 1e-10));
        assert!(!approx_eq(1.0, 1.001));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1e12, 1e12 + 1.0));
        assert!(!approx_eq(1e12, 1.1e12));
    }

    #[test]
    fn approx_lt_is_strict() {
        assert!(approx_lt(1.0, 2.0));
        assert!(!approx_lt(1.0, 1.0 + 1e-12));
        assert!(!approx_lt(2.0, 1.0));
    }
}
