//! Maximum flows, acyclic maximum flows, and path decompositions.
//!
//! The paper's weight-approximation algorithm LWO-APX (§5) starts from an
//! *acyclic* maximum `(s,t)`-flow `f*` and its support DAG `G*`; the upper
//! bound of Theorem 4.3 uses a *flow decomposition* of `f*` into paths.
//! This module provides all three primitives on real-valued capacities:
//!
//! 1. [`max_flow`] — Dinic's algorithm (BFS level graph + blocking DFS),
//! 2. [`acyclic_max_flow`] — cycle cancellation exactly as described in
//!    paper §2 ("Acyclic Maximum Flow"): repeatedly find a cycle in the flow
//!    support, subtract the smallest flow value on it,
//! 3. [`decompose_into_paths`] — peel source→target paths off an acyclic
//!    flow; by the flow-decomposition theorem at most `|E|` paths result.

use crate::digraph::{Digraph, EdgeId, NodeId};
use crate::topo::find_cycle;
use crate::EPS;
use std::collections::VecDeque;

/// A feasible `(s, t)`-flow: per-edge amounts plus its total value.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Flow source.
    pub source: NodeId,
    /// Flow target.
    pub target: NodeId,
    /// `on_edge[e]` = amount of flow routed over edge `e` (≥ 0).
    pub on_edge: Vec<f64>,
    /// Total flow value `|f|` leaving the source.
    pub value: f64,
}

impl Flow {
    /// Boolean support mask: `true` where the edge carries positive flow.
    pub fn support_mask(&self) -> Vec<bool> {
        self.on_edge.iter().map(|&f| f > EPS).collect()
    }

    /// Verifies flow conservation at every node other than `source`/`target`
    /// and non-negativity everywhere; `capacities`, when provided, is also
    /// checked. Intended for tests and debug assertions.
    pub fn validate(&self, g: &Digraph, capacities: Option<&[f64]>) -> Result<(), String> {
        if self.on_edge.len() != g.edge_count() {
            return Err("flow vector length mismatch".into());
        }
        for (e, amount) in self.on_edge.iter().enumerate() {
            if *amount < -EPS {
                return Err(format!("negative flow {amount} on edge {e}"));
            }
            if let Some(c) = capacities {
                if *amount > c[e] + EPS * (1.0 + c[e].abs()) {
                    return Err(format!("edge {e} overloaded: {amount} > {}", c[e]));
                }
            }
        }
        for v in g.nodes() {
            if v == self.source || v == self.target {
                continue;
            }
            let inflow: f64 = g.in_edges(v).iter().map(|e| self.on_edge[e.index()]).sum();
            let outflow: f64 = g.out_edges(v).iter().map(|e| self.on_edge[e.index()]).sum();
            let scale = 1.0_f64.max(inflow.abs()).max(outflow.abs());
            if (inflow - outflow).abs() > 1e-6 * scale {
                return Err(format!(
                    "conservation violated at {v:?}: in={inflow} out={outflow}"
                ));
            }
        }
        Ok(())
    }
}

/// Internal residual-network representation for Dinic's algorithm.
struct Dinic<'g> {
    g: &'g Digraph,
    /// Residual capacity of the forward copy of each edge.
    fwd: Vec<f64>,
    /// Residual capacity of the backward copy of each edge (== flow pushed).
    bwd: Vec<f64>,
    level: Vec<i32>,
    /// Per-node iterator positions: (out index, in index).
    it_out: Vec<usize>,
    it_in: Vec<usize>,
}

impl<'g> Dinic<'g> {
    fn new(g: &'g Digraph, capacities: &[f64]) -> Self {
        Self {
            g,
            fwd: capacities.to_vec(),
            bwd: vec![0.0; g.edge_count()],
            level: vec![-1; g.node_count()],
            it_out: vec![0; g.node_count()],
            it_in: vec![0; g.node_count()],
        }
    }

    /// BFS over the residual graph; returns true when `t` is reachable.
    fn bfs(&mut self, s: NodeId, t: NodeId) -> bool {
        self.level.fill(-1);
        self.level[s.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            let next_level = self.level[v.index()] + 1;
            for &e in self.g.out_edges(v) {
                let w = self.g.dst(e);
                if self.fwd[e.index()] > EPS && self.level[w.index()] < 0 {
                    self.level[w.index()] = next_level;
                    q.push_back(w);
                }
            }
            for &e in self.g.in_edges(v) {
                let w = self.g.src(e);
                if self.bwd[e.index()] > EPS && self.level[w.index()] < 0 {
                    self.level[w.index()] = next_level;
                    q.push_back(w);
                }
            }
        }
        self.level[t.index()] >= 0
    }

    /// Blocking-flow DFS from `v` pushing at most `limit`.
    fn dfs(&mut self, v: NodeId, t: NodeId, limit: f64) -> f64 {
        if v == t {
            return limit;
        }
        // Forward residual arcs.
        while self.it_out[v.index()] < self.g.out_edges(v).len() {
            let e = self.g.out_edges(v)[self.it_out[v.index()]];
            let w = self.g.dst(e);
            if self.fwd[e.index()] > EPS && self.level[w.index()] == self.level[v.index()] + 1 {
                let pushed = self.dfs(w, t, limit.min(self.fwd[e.index()]));
                if pushed > EPS {
                    self.fwd[e.index()] -= pushed;
                    self.bwd[e.index()] += pushed;
                    return pushed;
                }
            }
            self.it_out[v.index()] += 1;
        }
        // Backward residual arcs (undo previously pushed flow).
        while self.it_in[v.index()] < self.g.in_edges(v).len() {
            let e = self.g.in_edges(v)[self.it_in[v.index()]];
            let w = self.g.src(e);
            if self.bwd[e.index()] > EPS && self.level[w.index()] == self.level[v.index()] + 1 {
                let pushed = self.dfs(w, t, limit.min(self.bwd[e.index()]));
                if pushed > EPS {
                    self.bwd[e.index()] -= pushed;
                    self.fwd[e.index()] += pushed;
                    return pushed;
                }
            }
            self.it_in[v.index()] += 1;
        }
        0.0
    }
}

/// Computes a maximum `(s, t)`-flow with Dinic's algorithm.
///
/// ```
/// use segrout_graph::{max_flow, Digraph, NodeId};
///
/// let mut g = Digraph::new(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// let flow = max_flow(&g, &[5.0, 3.0], NodeId(0), NodeId(2));
/// assert!((flow.value - 3.0).abs() < 1e-9);
/// ```
///
/// # Panics
/// Panics if `capacities.len() != g.edge_count()`, any capacity is negative
/// or non-finite, or `s == t`.
pub fn max_flow(g: &Digraph, capacities: &[f64], s: NodeId, t: NodeId) -> Flow {
    assert_eq!(
        capacities.len(),
        g.edge_count(),
        "capacity vector length must match edge count"
    );
    assert!(s != t, "source and target must differ");
    assert!(
        capacities.iter().all(|c| c.is_finite() && *c >= 0.0),
        "capacities must be non-negative finite reals"
    );

    let mut dinic = Dinic::new(g, capacities);
    let mut value = 0.0;
    while dinic.bfs(s, t) {
        dinic.it_out.fill(0);
        dinic.it_in.fill(0);
        loop {
            let pushed = dinic.dfs(s, t, f64::INFINITY);
            if pushed <= EPS {
                break;
            }
            value += pushed;
        }
    }
    let on_edge: Vec<f64> = dinic
        .bwd
        .iter()
        .map(|&f| if f > EPS { f } else { 0.0 })
        .collect();
    Flow {
        source: s,
        target: t,
        on_edge,
        value,
    }
}

/// Turns any feasible flow into an acyclic one of equal value by cycle
/// cancellation (paper §2): while the support contains a directed cycle,
/// subtract the minimum flow value along that cycle from all of its edges.
pub fn cancel_cycles(g: &Digraph, flow: &mut Flow) {
    loop {
        let mask = flow.support_mask();
        let Some(cycle) = find_cycle(g, &mask) else {
            return;
        };
        let min_on_cycle = cycle
            .iter()
            .map(|e| flow.on_edge[e.index()])
            .fold(f64::INFINITY, f64::min);
        for e in cycle {
            let val = &mut flow.on_edge[e.index()];
            *val -= min_on_cycle;
            if *val < EPS {
                *val = 0.0; // snap to zero so the support strictly shrinks
            }
        }
    }
}

/// Computes an acyclic maximum `(s, t)`-flow: [`max_flow`] followed by
/// [`cancel_cycles`]. This is the flow `f*` that seeds LWO-APX (paper §5).
pub fn acyclic_max_flow(g: &Digraph, capacities: &[f64], s: NodeId, t: NodeId) -> Flow {
    let mut flow = max_flow(g, capacities, s, t);
    cancel_cycles(g, &mut flow);
    debug_assert!(crate::topo::is_acyclic(g, &flow.support_mask()));
    flow
}

/// One path of a flow decomposition: the edges from source to target plus the
/// amount of flow carried along them.
#[derive(Clone, Debug)]
pub struct FlowPath {
    /// Edge ids from source to target, in order.
    pub edges: Vec<EdgeId>,
    /// The amount of flow this path carries (the paper's `c(p)`, the capacity
    /// of the weakest link of the path within the decomposition).
    pub amount: f64,
}

impl FlowPath {
    /// The node sequence of the path, source first.
    pub fn nodes(&self, g: &Digraph) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.edges.len() + 1);
        if let Some(&first) = self.edges.first() {
            nodes.push(g.src(first));
        }
        for &e in &self.edges {
            nodes.push(g.dst(e));
        }
        nodes
    }
}

/// Decomposes an *acyclic* flow into at most `|E|` source→target paths whose
/// amounts sum to the flow value (flow-decomposition theorem, used in paper
/// Theorem 4.3).
///
/// # Panics
/// Panics (in debug builds) if the flow support is cyclic; call
/// [`cancel_cycles`] first.
pub fn decompose_into_paths(g: &Digraph, flow: &Flow) -> Vec<FlowPath> {
    debug_assert!(
        crate::topo::is_acyclic(g, &flow.support_mask()),
        "decompose_into_paths requires an acyclic flow"
    );
    let mut residual = flow.on_edge.clone();
    let mut paths = Vec::new();
    // Tolerance for "still carries flow": relative to the flow value so that
    // tiny numerical residue does not generate spurious paths.
    let tol = EPS * (1.0 + flow.value.abs());
    loop {
        // Greedy walk from source following positive-residual edges.
        let mut v = flow.source;
        let mut edges = Vec::new();
        while v != flow.target {
            let Some(&e) = g.out_edges(v).iter().find(|e| residual[e.index()] > tol) else {
                break;
            };
            edges.push(e);
            v = g.dst(e);
        }
        if v != flow.target || edges.is_empty() {
            return paths;
        }
        let amount = edges
            .iter()
            .map(|e| residual[e.index()])
            .fold(f64::INFINITY, f64::min);
        for &e in &edges {
            residual[e.index()] -= amount;
        }
        paths.push(FlowPath { edges, amount });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic max-flow example: value 2 through a diamond with a cross edge.
    fn cross_diamond() -> (Digraph, Vec<f64>) {
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1)); // cap 1
        g.add_edge(NodeId(0), NodeId(2)); // cap 1
        g.add_edge(NodeId(1), NodeId(2)); // cap 1 (cross)
        g.add_edge(NodeId(1), NodeId(3)); // cap 1
        g.add_edge(NodeId(2), NodeId(3)); // cap 1
        (g, vec![1.0, 1.0, 1.0, 1.0, 1.0])
    }

    #[test]
    fn max_flow_on_diamond() {
        let (g, c) = cross_diamond();
        let f = max_flow(&g, &c, NodeId(0), NodeId(3));
        assert!((f.value - 2.0).abs() < 1e-9);
        f.validate(&g, Some(&c)).unwrap();
    }

    #[test]
    fn max_flow_respects_bottleneck() {
        // s -> a -> t with caps 5 and 3: value 3.
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let f = max_flow(&g, &[5.0, 3.0], NodeId(0), NodeId(2));
        assert!((f.value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_flow_uses_augmenting_through_back_edges() {
        // The classic example where the greedy path must be partially undone.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1)); // 1
        g.add_edge(NodeId(0), NodeId(2)); // 1
        g.add_edge(NodeId(1), NodeId(2)); // 1
        g.add_edge(NodeId(2), NodeId(3)); // 1
        g.add_edge(NodeId(1), NodeId(3)); // 1
        let f = max_flow(&g, &[1.0; 5], NodeId(0), NodeId(3));
        assert!((f.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_target_gives_zero_flow() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let f = max_flow(&g, &[1.0], NodeId(0), NodeId(2));
        assert_eq!(f.value, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        // Harmonic parallel paths, as in paper TE-Instance 2 with m = 4:
        // max flow = 1 + 1/2 + 1/3 + 1/4.
        let mut g = Digraph::new(6);
        let (s, t) = (NodeId(0), NodeId(5));
        let mut caps = Vec::new();
        for j in 1..=4u32 {
            let w = NodeId(j);
            g.add_edge(s, w);
            caps.push(1.0 / j as f64);
            g.add_edge(w, t);
            caps.push(1.0 / j as f64);
        }
        let f = max_flow(&g, &caps, s, t);
        let expected = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((f.value - expected).abs() < 1e-9);
    }

    #[test]
    fn cancel_cycles_removes_circulation() {
        // Feasible flow with a superfluous 3-cycle on top of an s->t path.
        let mut g = Digraph::new(4);
        let p1 = g.add_edge(NodeId(0), NodeId(1));
        let p2 = g.add_edge(NodeId(1), NodeId(3));
        let c1 = g.add_edge(NodeId(1), NodeId(2));
        let c2 = g.add_edge(NodeId(2), NodeId(1));
        let mut flow = Flow {
            source: NodeId(0),
            target: NodeId(3),
            on_edge: {
                let mut v = vec![0.0; g.edge_count()];
                v[p1.index()] = 1.0;
                v[p2.index()] = 1.0;
                v[c1.index()] = 0.5;
                v[c2.index()] = 0.5;
                v
            },
            value: 1.0,
        };
        cancel_cycles(&g, &mut flow);
        assert_eq!(flow.on_edge[c1.index()], 0.0);
        assert_eq!(flow.on_edge[c2.index()], 0.0);
        assert_eq!(flow.on_edge[p1.index()], 1.0);
        assert!((flow.value - 1.0).abs() < 1e-9);
        flow.validate(&g, None).unwrap();
    }

    #[test]
    fn acyclic_max_flow_has_acyclic_support() {
        let (g, c) = cross_diamond();
        let f = acyclic_max_flow(&g, &c, NodeId(0), NodeId(3));
        assert!(crate::topo::is_acyclic(&g, &f.support_mask()));
        assert!((f.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_amounts_sum_to_value() {
        let (g, c) = cross_diamond();
        let f = acyclic_max_flow(&g, &c, NodeId(0), NodeId(3));
        let paths = decompose_into_paths(&g, &f);
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!((total - f.value).abs() < 1e-6);
        assert!(paths.len() <= g.edge_count());
        for p in &paths {
            let nodes = p.nodes(&g);
            assert_eq!(nodes.first().copied(), Some(NodeId(0)));
            assert_eq!(nodes.last().copied(), Some(NodeId(3)));
        }
    }

    #[test]
    fn decomposition_of_harmonic_paths() {
        let mut g = Digraph::new(5);
        let (s, t) = (NodeId(0), NodeId(4));
        let mut caps = Vec::new();
        for j in 1..=3u32 {
            let w = NodeId(j);
            g.add_edge(s, w);
            caps.push(1.0 / j as f64);
            g.add_edge(w, t);
            caps.push(1.0 / j as f64);
        }
        let f = acyclic_max_flow(&g, &caps, s, t);
        let paths = decompose_into_paths(&g, &f);
        assert_eq!(paths.len(), 3);
        let mut amounts: Vec<f64> = paths.iter().map(|p| p.amount).collect();
        amounts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((amounts[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((amounts[1] - 0.5).abs() < 1e-9);
        assert!((amounts[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_conservation_violation() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let bogus = Flow {
            source: NodeId(0),
            target: NodeId(2),
            on_edge: vec![1.0, 0.5],
            value: 1.0,
        };
        assert!(bogus.validate(&g, None).is_err());
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_target_panics() {
        let g = Digraph::new(2);
        max_flow(&g, &[], NodeId(0), NodeId(0));
    }
}
