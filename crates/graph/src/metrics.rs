//! Structural metrics of a directed graph: SCCs, diameter, degree
//! statistics. Used by the topology suite to sanity-check generated and
//! parsed networks against the published properties of their real
//! counterparts.

use crate::digraph::{Digraph, NodeId};
use crate::traversal::bfs_hops;

/// Strongly connected components via Tarjan's algorithm (iterative).
/// Returns a component id per node; ids are dense in `0..count`.
pub fn strongly_connected_components(g: &Digraph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_count = 0usize;

    // Iterative Tarjan: call stack of (node, next-out-edge position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let outs = g.out_edges(NodeId(v as u32));
            if *ei < outs.len() {
                let w = g.dst(outs[*ei]).index();
                *ei += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    // v is a component root: pop its members.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    (comp, comp_count)
}

/// Summary metrics of a directed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Smallest out-degree.
    pub min_out_degree: usize,
    /// Largest out-degree (the paper's `Δ*`).
    pub max_out_degree: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Hop diameter (longest shortest hop-path); `None` when not strongly
    /// connected.
    pub diameter: Option<usize>,
    /// Number of strongly connected components.
    pub scc_count: usize,
}

/// Computes [`GraphMetrics`]. Diameter is exact (all-pairs BFS), fine for
/// the backbone sizes in this workspace.
pub fn metrics(g: &Digraph) -> GraphMetrics {
    let n = g.node_count();
    let (_, scc_count) = strongly_connected_components(g);
    let degrees: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
    let diameter = if scc_count == 1 && n > 0 {
        let mut d = 0usize;
        for v in g.nodes() {
            let hops = bfs_hops(g, v);
            d = d.max(
                hops.into_iter()
                    .filter(|&h| h != usize::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        Some(d)
    } else {
        None
    };
    GraphMetrics {
        nodes: n,
        edges: g.edge_count(),
        min_out_degree: degrees.iter().copied().min().unwrap_or(0),
        max_out_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_out_degree: if n == 0 {
            0.0
        } else {
            g.edge_count() as f64 / n as f64
        },
        diameter,
        scc_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_of_a_cycle_is_one() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn scc_of_a_dag_is_per_node() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 3);
        // DAG edges go from later to earlier Tarjan components.
        assert!(comp[0] > comp[1] && comp[1] > comp[2]);
    }

    #[test]
    fn scc_mixed_structure() {
        // Two 2-cycles joined by a one-way edge: 2 components.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(3), NodeId(2));
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn metrics_of_a_ring() {
        let mut g = Digraph::new(6);
        for i in 0..6u32 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 6));
            g.add_edge(NodeId((i + 1) % 6), NodeId(i));
        }
        let m = metrics(&g);
        assert_eq!(m.nodes, 6);
        assert_eq!(m.edges, 12);
        assert_eq!(m.min_out_degree, 2);
        assert_eq!(m.max_out_degree, 2);
        assert_eq!(m.scc_count, 1);
        assert_eq!(m.diameter, Some(3));
    }

    #[test]
    fn metrics_of_disconnected_graph_has_no_diameter() {
        let g = Digraph::new(4);
        let m = metrics(&g);
        assert_eq!(m.diameter, None);
        assert_eq!(m.scc_count, 4);
    }
}
