//! Minimum `(s,t)` edge cuts, extracted from a maximum flow.
//!
//! Theorem 4.2 of the paper reasons about `cut(s, t)` — the capacity of a
//! minimum edge cut — via Menger's theorem. This module recovers the cut
//! itself: after a max-flow computation, the source side of the cut is the
//! set of nodes reachable from `s` in the residual network, and the cut
//! edges are those leaving that set.

use crate::digraph::{Digraph, EdgeId, NodeId};
use crate::maxflow::max_flow;
use crate::EPS;
use std::collections::VecDeque;

/// A minimum `(s, t)` edge cut.
#[derive(Clone, Debug)]
pub struct MinCut {
    /// Total capacity of the cut (equals the max-flow value).
    pub capacity: f64,
    /// The cut edges: every `s → t` path crosses one of them.
    pub edges: Vec<EdgeId>,
    /// Membership of the source side `S` (with `s ∈ S`, `t ∉ S`).
    pub source_side: Vec<bool>,
}

/// Computes a minimum `(s, t)` edge cut via max-flow / min-cut duality.
///
/// # Panics
/// Inherits the preconditions of [`max_flow`].
pub fn min_cut(g: &Digraph, capacities: &[f64], s: NodeId, t: NodeId) -> MinCut {
    let flow = max_flow(g, capacities, s, t);
    // Residual BFS from s: forward edges with slack, backward edges with flow.
    let mut side = vec![false; g.node_count()];
    side[s.index()] = true;
    let mut q = VecDeque::new();
    q.push_back(s);
    while let Some(v) = q.pop_front() {
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            let slack = capacities[e.index()] - flow.on_edge[e.index()];
            if slack > EPS && !side[w.index()] {
                side[w.index()] = true;
                q.push_back(w);
            }
        }
        for &e in g.in_edges(v) {
            let w = g.src(e);
            if flow.on_edge[e.index()] > EPS && !side[w.index()] {
                side[w.index()] = true;
                q.push_back(w);
            }
        }
    }
    debug_assert!(!side[t.index()], "t must lie outside the source side");
    let edges: Vec<EdgeId> = g
        .edges()
        .filter(|&(_, u, v)| side[u.index()] && !side[v.index()])
        .map(|(e, _, _)| e)
        .collect();
    MinCut {
        capacity: flow.value,
        edges,
        source_side: side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_on_a_bottleneck_chain() {
        // 0 -5-> 1 -2-> 2 -7-> 3: the cut is the middle edge.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        let mid = g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let cut = min_cut(&g, &[5.0, 2.0, 7.0], NodeId(0), NodeId(3));
        assert!((cut.capacity - 2.0).abs() < 1e-9);
        assert_eq!(cut.edges, vec![mid]);
        assert!(cut.source_side[0] && cut.source_side[1]);
        assert!(!cut.source_side[2] && !cut.source_side[3]);
    }

    #[test]
    fn cut_capacity_equals_sum_of_cut_edges() {
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let caps = [3.0, 1.0, 2.0, 5.0];
        let cut = min_cut(&g, &caps, NodeId(0), NodeId(3));
        let total: f64 = cut.edges.iter().map(|e| caps[e.index()]).sum();
        assert!((total - cut.capacity).abs() < 1e-9);
        // max flow = min(3,2) + min(1,5) = 3.
        assert!((cut.capacity - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_cut_is_empty() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let cut = min_cut(&g, &[1.0], NodeId(0), NodeId(2));
        assert_eq!(cut.capacity, 0.0);
        assert!(cut.edges.is_empty());
    }

    #[test]
    fn every_path_crosses_the_cut() {
        // Verify the defining property on a denser graph.
        let mut g = Digraph::new(5);
        let caps = vec![2.0, 2.0, 1.0, 1.0, 2.0, 3.0];
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(1), NodeId(4));
        g.add_edge(NodeId(3), NodeId(4));
        let cut = min_cut(&g, &caps, NodeId(0), NodeId(4));
        // Removing the cut edges must disconnect 0 from 4.
        let mut mask = vec![true; g.edge_count()];
        for e in &cut.edges {
            mask[e.index()] = false;
        }
        // BFS over surviving edges.
        let mut seen = [false; 5];
        seen[0] = true;
        let mut q = vec![NodeId(0)];
        while let Some(v) = q.pop() {
            for &e in g.out_edges(v) {
                if mask[e.index()] && !seen[g.dst(e).index()] {
                    seen[g.dst(e).index()] = true;
                    q.push(g.dst(e));
                }
            }
        }
        assert!(!seen[4], "cut must disconnect s from t");
    }
}
