//! Topological orderings and acyclicity checks for edge-masked subgraphs.
//!
//! Both the effective-capacity computation (paper Definition 5.1) and the
//! even-split flow engine process nodes "in the reverse topological ordering"
//! of a DAG that is given as a *subset of edges* of the full network (the
//! support of an acyclic maximum flow, or a pruned copy of it). We therefore
//! expose Kahn's algorithm over a boolean edge mask rather than over a
//! separate graph value.

use crate::digraph::{Digraph, NodeId};

/// Computes a topological order of the subgraph of `g` induced by the edges
/// with `mask[e] == true`. All nodes of `g` appear in the output (isolated
/// nodes are emitted too).
///
/// Returns `None` when the masked subgraph contains a directed cycle.
pub fn topological_order(g: &Digraph, mask: &[bool]) -> Option<Vec<NodeId>> {
    assert_eq!(
        mask.len(),
        g.edge_count(),
        "mask length must match edge count"
    );
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for (e, _, v) in g.edges() {
        if mask[e.index()] {
            indeg[v.index()] += 1;
        }
    }
    let mut stack: Vec<NodeId> = g.nodes().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        order.push(v);
        for &e in g.out_edges(v) {
            if mask[e.index()] {
                let w = g.dst(e);
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    stack.push(w);
                }
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// `true` iff the masked subgraph is acyclic.
pub fn is_acyclic(g: &Digraph, mask: &[bool]) -> bool {
    topological_order(g, mask).is_some()
}

/// Finds a directed cycle in the masked subgraph, returned as the list of
/// edge ids along the cycle, or `None` if the subgraph is acyclic.
///
/// Used by the acyclic-maximum-flow routine (paper §2): "find a cycle and a
/// link with the smallest flow value on this cycle".
pub fn find_cycle(g: &Digraph, mask: &[bool]) -> Option<Vec<crate::EdgeId>> {
    assert_eq!(
        mask.len(),
        g.edge_count(),
        "mask length must match edge count"
    );
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    // For each gray node, the edge we took to enter it (None for DFS roots).
    let mut entry_edge: Vec<Option<crate::EdgeId>> = vec![None; n];

    for root in g.nodes() {
        if color[root.index()] != Color::White {
            continue;
        }
        // Iterative DFS: stack of (node, next out-edge index to try).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        color[root.index()] = Color::Gray;
        entry_edge[root.index()] = None;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let outs = g.out_edges(v);
            let mut advanced = false;
            while *idx < outs.len() {
                let e = outs[*idx];
                *idx += 1;
                if !mask[e.index()] {
                    continue;
                }
                let w = g.dst(e);
                match color[w.index()] {
                    Color::White => {
                        color[w.index()] = Color::Gray;
                        entry_edge[w.index()] = Some(e);
                        stack.push((w, 0));
                        advanced = true;
                        break;
                    }
                    Color::Gray => {
                        // Found a cycle: walk entry edges back from v to w.
                        let mut cycle = vec![e];
                        let mut cur = v;
                        while cur != w {
                            let pe = entry_edge[cur.index()]
                                .expect("gray non-root node must have an entry edge");
                            cycle.push(pe);
                            cur = g.src(pe);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            }
            if !advanced {
                color[v.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Digraph;

    fn full_mask(g: &Digraph) -> Vec<bool> {
        vec![true; g.edge_count()]
    }

    #[test]
    fn orders_a_chain() {
        let mut g = Digraph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        let order = topological_order(&g, &full_mask(&g)).unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn detects_cycle() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        assert!(topological_order(&g, &full_mask(&g)).is_none());
        assert!(!is_acyclic(&g, &full_mask(&g)));
        let cycle = find_cycle(&g, &full_mask(&g)).unwrap();
        assert_eq!(cycle.len(), 3);
        // The cycle edges must chain: dst of each == src of the next.
        for i in 0..cycle.len() {
            let next = cycle[(i + 1) % cycle.len()];
            assert_eq!(g.dst(cycle[i]), g.src(next));
        }
    }

    #[test]
    fn masking_breaks_the_cycle() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let back = g.add_edge(NodeId(2), NodeId(0));
        let mut mask = full_mask(&g);
        mask[back.index()] = false;
        assert!(is_acyclic(&g, &mask));
        assert!(find_cycle(&g, &mask).is_none());
    }

    #[test]
    fn isolated_nodes_are_included() {
        let g = Digraph::new(5);
        let order = topological_order(&g, &[]).unwrap();
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn finds_cycle_beyond_first_component() {
        // Component A: 0 -> 1 (acyclic); component B: 2 <-> 3 (cycle).
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(3), NodeId(2));
        let cycle = find_cycle(&g, &full_mask(&g)).unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn self_contained_two_cycles() {
        // Two disjoint 2-cycles; the finder returns one of them.
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(3), NodeId(2));
        let cycle = find_cycle(&g, &full_mask(&g)).unwrap();
        assert_eq!(cycle.len(), 2);
    }
}
