//! Reachability helpers: BFS over forward or reverse adjacency.

use crate::digraph::{Digraph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable *from* `start` following edge directions (including
/// `start` itself), as a boolean membership vector.
pub fn reachable_from(g: &Digraph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut q = VecDeque::new();
    seen[start.index()] = true;
    q.push_back(start);
    while let Some(v) = q.pop_front() {
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                q.push_back(w);
            }
        }
    }
    seen
}

/// Nodes that can reach `goal` following edge directions (including `goal`
/// itself), as a boolean membership vector.
pub fn can_reach(g: &Digraph, goal: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut q = VecDeque::new();
    seen[goal.index()] = true;
    q.push_back(goal);
    while let Some(v) = q.pop_front() {
        for &e in g.in_edges(v) {
            let u = g.src(e);
            if !seen[u.index()] {
                seen[u.index()] = true;
                q.push_back(u);
            }
        }
    }
    seen
}

/// `true` iff every ordered pair of nodes is connected by a directed path
/// (strong connectivity). ISP backbone topologies are expected to satisfy
/// this; the demand generators assert it.
pub fn is_strongly_connected(g: &Digraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let root = NodeId(0);
    reachable_from(g, root).iter().all(|&b| b) && can_reach(g, root).iter().all(|&b| b)
}

/// Minimum number of hops from `start` to every node (`usize::MAX` when
/// unreachable). Used by topology generators to measure diameters.
pub fn bfs_hops(g: &Digraph, start: NodeId) -> Vec<usize> {
    let mut hops = vec![usize::MAX; g.node_count()];
    let mut q = VecDeque::new();
    hops[start.index()] = 0;
    q.push_back(start);
    while let Some(v) = q.pop_front() {
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            if hops[w.index()] == usize::MAX {
                hops[w.index()] = hops[v.index()] + 1;
                q.push_back(w);
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_on_a_path() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let r = reachable_from(&g, NodeId(1));
        assert_eq!(r, vec![false, true, true]);
        let c = can_reach(&g, NodeId(1));
        assert_eq!(c, vec![true, true, false]);
    }

    #[test]
    fn strong_connectivity_of_a_cycle() {
        let mut g = Digraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn path_is_not_strongly_connected() {
        let mut g = Digraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn singleton_graph_is_strongly_connected() {
        assert!(is_strongly_connected(&Digraph::new(1)));
        assert!(is_strongly_connected(&Digraph::new(0)));
    }

    #[test]
    fn hop_counts() {
        let mut g = Digraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        let h = bfs_hops(&g, NodeId(0));
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h[3], usize::MAX);
    }
}
