//! The two worked examples of paper Figure 3, illustrating effective
//! capacities (Definition 5.1). Exposed so the `fig3` experiment binary and
//! the documentation examples can reproduce the figure's numbers.

use segrout_core::{Network, NodeId};

/// Figure 3a: `ec(s) = 3/2 = |f*|` — the even split at `s` is lossless.
///
/// Node ids: `s = 0`, `v1..v3 = 1..3`, `t = 4`. Returns the network and the
/// `(s, t)` pair.
/// Note on capacities: the figure's headline identity is
/// `ec(s) = 3 · ec((s,v1)) = 3/2 = |f*|`. We set `c(s,v3) = 1/2` (rather
/// than `3/4`) so the maximum flow is exactly `3/2`; with `3/4` it would be
/// `7/4`, contradicting the printed `|f*|`.
pub fn figure3a() -> (Network, NodeId, NodeId) {
    let mut b = Network::builder(5);
    b.link(NodeId(0), NodeId(1), 0.5);
    b.link(NodeId(0), NodeId(2), 0.5);
    b.link(NodeId(0), NodeId(3), 0.5);
    b.link(NodeId(1), NodeId(4), 0.5);
    b.link(NodeId(2), NodeId(4), 0.25);
    b.link(NodeId(2), NodeId(4), 0.25); // parallel second link
    b.link(NodeId(3), NodeId(4), 0.75);
    (b.build().expect("valid construction"), NodeId(0), NodeId(4))
}

/// Figure 3b: `ec(s) = 2/3 < |f*| = 3/2` — naive everywhere-splitting loses
/// a factor 2.25; LWO-APX prunes to recover the best even split.
///
/// Node ids: `s = 0`, `v1..v4 = 1..4`, `t = 5`.
pub fn figure3b() -> (Network, NodeId, NodeId) {
    let mut b = Network::builder(6);
    b.link(NodeId(0), NodeId(1), 0.5);
    b.link(NodeId(0), NodeId(2), 1.0);
    b.link(NodeId(1), NodeId(3), 1.0 / 6.0);
    b.link(NodeId(1), NodeId(4), 1.0 / 3.0);
    b.link(NodeId(2), NodeId(3), 1.0 / 3.0);
    b.link(NodeId(2), NodeId(4), 2.0 / 3.0);
    b.link(NodeId(3), NodeId(5), 0.5);
    b.link(NodeId(4), NodeId(5), 1.0);
    (b.build().expect("valid construction"), NodeId(0), NodeId(5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::esflow::effective_capacities;
    use segrout_graph::acyclic_max_flow;

    #[test]
    fn figure_3a_numbers() {
        let (net, s, t) = figure3a();
        let f = acyclic_max_flow(net.graph(), net.capacities(), s, t);
        assert!((f.value - 1.5).abs() < 1e-9);
        let mask = vec![true; net.edge_count()];
        let (ec, _) = effective_capacities(net.graph(), net.capacities(), &mask, t).unwrap();
        assert!((ec[s.index()] - 1.5).abs() < 1e-9, "ec(s) = |f*| in 3a");
    }

    #[test]
    fn figure_3b_numbers() {
        let (net, s, t) = figure3b();
        let f = acyclic_max_flow(net.graph(), net.capacities(), s, t);
        assert!((f.value - 1.5).abs() < 1e-9);
        let mask = vec![true; net.edge_count()];
        let (ec, _) = effective_capacities(net.graph(), net.capacities(), &mask, t).unwrap();
        assert!((ec[s.index()] - 2.0 / 3.0).abs() < 1e-9);
        // |f*| = 2.25 * ec(s), as printed in the figure.
        assert!((f.value / ec[s.index()] - 2.25).abs() < 1e-9);
    }
}
