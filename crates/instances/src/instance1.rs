//! TE-Instance 1 (paper Figure 1) and its variants.
//!
//! A chain `s = v₁ → v₂ → … → v_m` of thick links (capacity `m`) with a thin
//! bi-directed link (capacity 1) from every chain node to the extra target
//! `t`; `m = n − 1` unit demands from `s` to `t`.
//!
//! * `OPT = Joint = 1` with one waypoint per demand (Lemma 3.5),
//! * `LWO ≥ (n−1)/2` (Lemma 3.6),
//! * `WPO ≥ (n−1)/3` under all standard weight settings (Lemma 3.7),
//!
//! giving the linear TE gap of Theorem 3.4.

use crate::PaperInstance;
use segrout_core::{DemandList, Network, NodeId, WaypointSetting, WeightSetting};

/// Node ids: chain nodes `v_1..v_m` are `0..m-1`, the target `t` is `m`.
///
/// ```
/// use segrout_core::Router;
/// let inst = segrout_instances::instance1(8);
/// let router = Router::new(&inst.network, &inst.joint_weights);
/// let mlu = router.evaluate(&inst.demands, &inst.joint_waypoints).unwrap().mlu;
/// assert!((mlu - 1.0).abs() < 1e-9); // Lemma 3.5
/// ```
pub fn instance1(m: usize) -> PaperInstance {
    assert!(m >= 2, "instance 1 needs m >= 2");
    let mf = m as f64;
    let t = NodeId(m as u32);
    let mut b = Network::builder(m + 1);
    // Horizontal chain, capacity m.
    for i in 0..m - 1 {
        b.link(NodeId(i as u32), NodeId(i as u32 + 1), mf);
    }
    // Thin bi-directed links to t, capacity 1.
    for i in 0..m {
        b.bilink(NodeId(i as u32), t, 1.0);
    }
    let network = b.build().expect("valid construction");

    let mut demands = DemandList::new();
    for _ in 0..m {
        demands.push(NodeId(0), t, 1.0);
    }

    // Lemma 3.5 joint setting: waypoint v_i for the i-th demand; weight m on
    // every link touching t, weight 1 on the chain.
    let g = network.graph();
    let mut w = vec![1.0; g.edge_count()];
    for (e, u, v) in g.edges() {
        if u == t || v == t {
            w[e.index()] = mf;
        }
    }
    let joint_weights = WeightSetting::new(&network, w).expect("positive weights");
    let mut joint_waypoints = WaypointSetting::none(m);
    for i in 0..m {
        // v_1 = s: the first demand routes directly (degenerate waypoint).
        joint_waypoints.set(i, vec![NodeId(i as u32)]);
    }

    PaperInstance {
        network,
        demands,
        source: NodeId(0),
        target: t,
        joint_weights,
        joint_waypoints,
        joint_mlu: 1.0,
    }
}

/// The optimal LWO weight setting of Lemma 3.6: weight 2 on the direct link
/// `(s, t)`, weight 1 elsewhere. The induced ECMP flow splits evenly at `s`
/// over `(s,t)` and `(s,v₂,t)`, achieving the best possible even-split MLU
/// of `m/2`.
pub fn lwo_optimal_weights(inst: &PaperInstance) -> WeightSetting {
    let g = inst.network.graph();
    let mut w = vec![1.0; g.edge_count()];
    let direct = g
        .find_edge(inst.source, inst.target)
        .expect("instance 1 has a direct (s,t) link");
    w[direct.index()] = 2.0;
    WeightSetting::new(&inst.network, w).expect("positive weights")
}

/// The adversarial "arbitrary" weight setting of Lemma 3.7: weight `1/3` on
/// every link touching `t`, weight 1 elsewhere. All shortest paths from `s`
/// then leave through `(s, t)`, making waypoints useless.
pub fn arbitrary_adversarial_weights(inst: &PaperInstance) -> WeightSetting {
    let g = inst.network.graph();
    let t = inst.target;
    let mut w = vec![1.0; g.edge_count()];
    for (e, u, v) in g.edges() {
        if u == t || v == t {
            w[e.index()] = 1.0 / 3.0;
        }
    }
    WeightSetting::new(&inst.network, w).expect("positive weights")
}

/// Theorem 3.8's uniform-capacity variant: all capacities raised to `m`,
/// with one extra saturating demand `(u, v, m − c(u,v))` per original thin
/// link. The TE gaps of Instance 1 survive under uniform capacities once
/// these filler demands occupy the added headroom.
pub fn instance1_uniform(m: usize) -> (Network, DemandList, NodeId, NodeId) {
    let base = instance1(m);
    let mf = m as f64;
    let g = base.network.graph();
    let mut b = Network::builder(g.node_count());
    for (_, u, v) in g.edges() {
        b.link(u, v, mf);
    }
    let network = b.build().expect("valid construction");
    let mut demands = base.demands.clone();
    for (e, u, v) in g.edges() {
        let c = base.network.capacities()[e.index()];
        if c < mf {
            demands.push(u, v, mf - c);
        }
    }
    (network, demands, base.source, base.target)
}

/// Lemma 3.7's inverse-of-capacities variant `I'₁`: the links `(s, v₂)` and
/// `(v₂, v₃)` are replaced by `m` parallel unit-capacity 3-hop paths
/// `s → u_j → z_j → v₃`, so that under `w = 1/c` the detour through `t`
/// becomes the unique shortest path to every `v_i`.
///
/// Nodes: `v_1..v_m` are `0..m-1`, `t` is `m`, `u_j` is `m+1+j`, `z_j` is
/// `m+1+m+j` for `j in 0..m`.
pub fn instance1_invcap_variant(m: usize) -> (Network, DemandList, NodeId, NodeId) {
    assert!(m >= 3, "the variant needs m >= 3");
    let mf = m as f64;
    let t = NodeId(m as u32);
    let mut b = Network::builder(m + 1 + 2 * m);
    // Chain links except (s,v2) and (v2,v3).
    for i in 2..m - 1 {
        b.link(NodeId(i as u32), NodeId(i as u32 + 1), mf);
    }
    // Thin bi-directed links to t.
    for i in 0..m {
        b.bilink(NodeId(i as u32), t, 1.0);
    }
    // Parallel replacement paths s -> u_j -> z_j -> v3.
    for j in 0..m {
        let u = NodeId((m + 1 + j) as u32);
        let z = NodeId((m + 1 + m + j) as u32);
        b.link(NodeId(0), u, 1.0);
        b.link(u, z, 1.0);
        b.link(z, NodeId(2), 1.0);
    }
    let network = b.build().expect("valid construction");
    let mut demands = DemandList::new();
    for _ in 0..m {
        demands.push(NodeId(0), t, 1.0);
    }
    (network, demands, NodeId(0), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::Router;

    #[test]
    fn lemma_3_5_joint_is_opt() {
        for m in [3usize, 5, 9, 16] {
            let inst = instance1(m);
            let router = Router::new(&inst.network, &inst.joint_weights);
            let report = router
                .evaluate(&inst.demands, &inst.joint_waypoints)
                .unwrap();
            assert!(
                (report.mlu - 1.0).abs() < 1e-9,
                "Joint must achieve MLU 1 at m={m}, got {}",
                report.mlu
            );
        }
    }

    #[test]
    fn joint_waypoint_budget_is_one() {
        let inst = instance1(6);
        assert!(inst.joint_waypoints.max_used() <= 1);
    }

    #[test]
    fn lemma_3_6_lwo_optimal_weights_give_m_over_2() {
        for m in [4usize, 8] {
            let inst = instance1(m);
            let w = lwo_optimal_weights(&inst);
            let router = Router::new(&inst.network, &w);
            let mlu = router.mlu(&inst.demands).unwrap();
            assert!(
                (mlu - m as f64 / 2.0).abs() < 1e-9,
                "LWO-optimal weights yield m/2 at m={m}, got {mlu}"
            );
        }
    }

    #[test]
    fn lemma_3_7_adversarial_weights_route_everything_via_st() {
        let m = 6;
        let inst = instance1(m);
        let w = arbitrary_adversarial_weights(&inst);
        let router = Router::new(&inst.network, &w);
        // Even with ANY single waypoint the flow crosses (s,t): check a few.
        let mlu_direct = router.mlu(&inst.demands).unwrap();
        assert!((mlu_direct - m as f64).abs() < 1e-9);
        // Shortest path from s to every v_i goes through t.
        for i in 1..m {
            let dag = router.dag(NodeId(i as u32));
            let dist_via_t = 1.0 / 3.0 + 1.0 / 3.0;
            assert!(
                (dag.dist[0] - dist_via_t).abs() < 1e-9,
                "s reaches v_{} through t",
                i + 1
            );
        }
    }

    #[test]
    fn uniform_variant_has_uniform_capacities() {
        let (net, demands, s, t) = instance1_uniform(5);
        assert!(net.has_uniform_capacities());
        assert_eq!(s, NodeId(0));
        assert_eq!(t, NodeId(5));
        // Demands: m unit (s,t) + one per thin link (2 per chain node).
        assert_eq!(demands.len(), 5 + 10);
    }

    #[test]
    fn invcap_variant_detour_dominates() {
        let m = 5;
        let (net, _, s, t) = instance1_invcap_variant(m);
        let w = WeightSetting::inverse_capacity(&net);
        let router = Router::new(&net, &w);
        // Shortest path s -> v_i (i >= 3) must cost 2 (via t), cheaper than
        // any 3-hop unit path (cost 3).
        for i in 2..m {
            let dag = router.dag(NodeId(i as u32));
            assert!(
                (dag.dist[s.index()] - 2.0).abs() < 1e-9,
                "s -> v_{} should cost 2 via t",
                i + 1
            );
        }
        let _ = t;
    }

    #[test]
    fn max_flow_is_m() {
        // m disjoint unit paths exist (one per chain node).
        let inst = instance1(7);
        let f = segrout_graph::acyclic_max_flow(
            inst.network.graph(),
            inst.network.capacities(),
            inst.source,
            inst.target,
        );
        assert!((f.value - 7.0).abs() < 1e-9);
    }
}
