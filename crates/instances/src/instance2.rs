//! TE-Instance 2 (paper Figure 2a): the harmonic parallel-path gadget.
//!
//! `m = n − 2` parallel two-hop paths `s → w_j → t` with capacity `1/j`, and
//! `m` demands from `s` to `t` with harmonic sizes `1, 1/2, …, 1/m`.
//!
//! * The maximum flow is `H_m ≈ ln m`,
//! * every maximum even-split flow uses a harmonic *prefix* of the paths and
//!   has size exactly 1 (Lemmas 3.9 / 3.10),
//!
//! so pure link-weight optimization loses a `Θ(log n)` factor here — the
//! gadget that upgrades the linear gap of Instance 1 to `Ω(n log n)`.

use crate::PaperInstance;
use segrout_core::{DemandList, Network, NodeId, WaypointSetting, WeightSetting};

/// Node ids: `s = 0`, `w_j = j` for `j in 1..=m`, `t = m + 1`.
pub fn instance2(m: usize) -> PaperInstance {
    assert!(m >= 1, "instance 2 needs m >= 1");
    let s = NodeId(0);
    let t = NodeId((m + 1) as u32);
    let mut b = Network::builder(m + 2);
    for j in 1..=m {
        let w = NodeId(j as u32);
        let c = 1.0 / j as f64;
        b.link(s, w, c);
        b.link(w, t, c);
    }
    let network = b.build().expect("valid construction");

    let mut demands = DemandList::new();
    for j in 1..=m {
        demands.push(s, t, 1.0 / j as f64);
    }

    // Joint can route each demand along its matching-capacity path with one
    // waypoint w_j and any weight setting that keeps each (s, w_j, t) path
    // the unique shortest to/from w_j — unit weights do (each w_j has a
    // unique in/out link).
    let joint_weights = WeightSetting::unit(&network);
    let mut joint_waypoints = WaypointSetting::none(m);
    for j in 1..=m {
        joint_waypoints.set(j - 1, vec![NodeId(j as u32)]);
    }

    PaperInstance {
        network,
        demands,
        source: s,
        target: t,
        joint_weights,
        joint_waypoints,
        joint_mlu: 1.0,
    }
}

/// The exact maximum even-split `(s,t)`-flow value on Instance 2, computed
/// by brute force over harmonic prefixes (Lemma 3.9 proves prefixes are
/// optimal): `max_j j · (1/j) = 1`.
pub fn max_es_flow_value(m: usize) -> f64 {
    (1..=m)
        .map(|j| j as f64 * (1.0 / j as f64))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonic;
    use segrout_core::Router;

    #[test]
    fn joint_setting_achieves_mlu_one() {
        for m in [1usize, 3, 8, 20] {
            let inst = instance2(m);
            let router = Router::new(&inst.network, &inst.joint_weights);
            let r = router
                .evaluate(&inst.demands, &inst.joint_waypoints)
                .unwrap();
            assert!(
                (r.mlu - 1.0).abs() < 1e-9,
                "m={m}: joint MLU should be 1, got {}",
                r.mlu
            );
        }
    }

    #[test]
    fn max_flow_is_harmonic() {
        let m = 12;
        let inst = instance2(m);
        let f = segrout_graph::max_flow(
            inst.network.graph(),
            inst.network.capacities(),
            inst.source,
            inst.target,
        );
        assert!((f.value - harmonic(m)).abs() < 1e-9);
    }

    #[test]
    fn lemma_3_10_max_es_flow_is_one() {
        // Every even-split flow splits over a prefix (Lemma 3.9); all
        // prefixes deliver exactly 1.
        for m in [1usize, 5, 17] {
            assert!((max_es_flow_value(m) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn es_flow_over_any_prefix_is_one() {
        // Realize the ES-flow over the first k paths with ECMP weights and
        // measure: k * 1/k = 1 unit saturates the k-th path exactly.
        let m = 6;
        let inst = instance2(m);
        let g = inst.network.graph();
        for k in 1..=m {
            // Weight 1 on the first k paths, big on the rest.
            let mut w = vec![1000.0; g.edge_count()];
            for j in 0..k {
                w[2 * j] = 1.0;
                w[2 * j + 1] = 1.0;
            }
            let ws = WeightSetting::new(&inst.network, w).unwrap();
            let router = Router::new(&inst.network, &ws);
            let mut d = DemandList::new();
            d.push(inst.source, inst.target, 1.0);
            let r = router.evaluate(&d, &WaypointSetting::none(1)).unwrap();
            // The k-th path (capacity 1/k) carries 1/k: utilization 1.
            assert!(
                (r.mlu - 1.0).abs() < 1e-9,
                "prefix k={k} should saturate at MLU 1, got {}",
                r.mlu
            );
        }
    }

    #[test]
    fn lwo_gap_is_logarithmic() {
        // Demands H_m over a max ES-flow of 1: even the best weight setting
        // has MLU >= H_m / 1 while Joint = 1.
        let m = 32;
        let inst = instance2(m);
        // Any ECMP flow splits evenly at s over some subset of the parallel
        // paths; verify a few settings never beat H_m (total/1).
        let router = Router::new(&inst.network, &inst.joint_weights);
        let direct = router.mlu(&inst.demands).unwrap();
        assert!(direct >= harmonic(m) - 1e-9);
    }
}
