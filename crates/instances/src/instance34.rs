//! TE-Instances 3 and 4 (paper Figures 2b and 2c): the `Ω(n log n)` gap
//! constructions.
//!
//! Both share the same graph: an upper chain `s = v₁ → … → v_m`, a lower
//! chain `w₁ → … → w_m` ending in the target `t = w_m`, both with capacity
//! `D` (the total demand size), and a complete bi-directed bipartite layer of
//! thin links between the chains. They differ only in the thin capacities:
//!
//! * Instance 3: `c(v_i, w_j) = 1/j` (harmonic in the *column*),
//! * Instance 4: `c(v_i, w_j) = 1/(m − i + 1)` (harmonic in the *row*).
//!
//! The demand list consists of `m²` demands from `s` to `t` partitioned into
//! `m` harmonic sets `H_m`. With two waypoints `v_i, w_j` per demand, Joint
//! routes every demand over the thin link matching its size exactly
//! (Lemmas 3.11 / 3.13), while LWO (I3) and WPO (I4) lose `Ω(n log n)`.

use crate::PaperInstance;
use segrout_core::{DemandList, Network, NodeId, WaypointSetting, WeightSetting};

/// Which thin-capacity pattern to build.
enum Variant {
    Instance3,
    Instance4,
}

/// Node ids: `v_i = i - 1` (so `s = 0`), `w_j = m + j - 1` (so `t = 2m - 1`).
fn build(m: usize, variant: Variant) -> PaperInstance {
    assert!(m >= 2, "instances 3/4 need m >= 2");
    let d_total = m as f64 * crate::harmonic(m);
    let v = |i: usize| NodeId((i - 1) as u32); // 1-based
    let w = |j: usize| NodeId((m + j - 1) as u32); // 1-based
    let s = v(1);
    let t = w(m);

    let mut b = Network::builder(2 * m);
    // Upper and lower chains, capacity D.
    for i in 1..m {
        b.link(v(i), v(i + 1), d_total);
        b.link(w(i), w(i + 1), d_total);
    }
    // Thin bipartite layer, bi-directed.
    for i in 1..=m {
        for j in 1..=m {
            let c = match variant {
                Variant::Instance3 => 1.0 / j as f64,
                Variant::Instance4 => 1.0 / (m - i + 1) as f64,
            };
            b.bilink(v(i), w(j), c);
        }
    }
    let network = b.build().expect("valid construction");

    // m harmonic demand groups; demand (g, j) has size 1/j.
    let mut demands = DemandList::new();
    for _group in 1..=m {
        for j in 1..=m {
            demands.push(s, t, 1.0 / j as f64);
        }
    }

    // Lemmas 3.11 / 3.13 joint setting: weight m on every thin link, weight
    // 1 on the chains; waypoints [v_i, w_j] so that the flow of each demand
    // crosses the thin link with matching capacity.
    let g = network.graph();
    let mut weights = vec![m as f64; g.edge_count()];
    for (e, a, bb) in g.edges() {
        let upper = |x: NodeId| (x.0 as usize) < m;
        if upper(a) == upper(bb) {
            weights[e.index()] = 1.0; // chain link
        }
    }
    let joint_weights = WeightSetting::new(&network, weights).expect("positive weights");

    let mut joint_waypoints = WaypointSetting::none(demands.len());
    let mut idx = 0usize;
    for group in 1..=m {
        for j in 1..=m {
            let i = match variant {
                // I3: group g uses row v_g; demand of size 1/j crosses
                // (v_g, w_j) with capacity 1/j.
                Variant::Instance3 => group,
                // I4: demand of size 1/j must cross a link of capacity
                // 1/(m - i + 1) = 1/j, i.e. row i = m - j + 1; the group
                // index spreads demands over columns w_group.
                Variant::Instance4 => m - j + 1,
            };
            let col = match variant {
                Variant::Instance3 => j,
                Variant::Instance4 => group,
            };
            joint_waypoints.set(idx, vec![v(i), w(col)]);
            idx += 1;
        }
    }

    PaperInstance {
        network,
        demands,
        source: s,
        target: t,
        joint_weights,
        joint_waypoints,
        joint_mlu: 1.0,
    }
}

/// TE-Instance 3 (Figure 2b): thin capacities harmonic per column.
pub fn instance3(m: usize) -> PaperInstance {
    build(m, Variant::Instance3)
}

/// TE-Instance 4 (Figure 2c): thin capacities harmonic per row.
pub fn instance4(m: usize) -> PaperInstance {
    build(m, Variant::Instance4)
}

/// The optimal-LWO weight setting for Instance 3 from the proof of
/// Lemma 3.14.ii: `ε = 1/(2(m+1))`,
/// weight `2ε` on `(s, w₁)`, `ε` on `(v₂, w₁)`, on all chain links and on
/// `(w₁, v_i)`, and weight 1 elsewhere. It realizes the maximum even-split
/// flow of 2 units over the two unit-capacity shortest paths.
pub fn instance3_lwo_optimal_weights(inst: &PaperInstance) -> WeightSetting {
    let g = inst.network.graph();
    let n = g.node_count();
    let m = n / 2;
    let v = |i: usize| NodeId((i - 1) as u32);
    let w = |j: usize| NodeId((m + j - 1) as u32);
    let eps = 1.0 / (2.0 * (m as f64 + 1.0));
    let mut weights = vec![1.0; g.edge_count()];
    let mut set = |u: NodeId, x: NodeId, val: f64| {
        if let Some(e) = g.find_edge(u, x) {
            weights[e.index()] = val;
        }
    };
    set(v(1), w(1), 2.0 * eps); // (s, w1)
    set(v(2), w(1), eps);
    for i in 1..m {
        set(v(i), v(i + 1), eps);
        set(w(i), w(i + 1), eps);
    }
    for i in 1..=m {
        set(w(1), v(i), eps);
    }
    WeightSetting::new(&inst.network, weights).expect("positive weights")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonic;
    use segrout_core::Router;

    #[test]
    fn lemma_3_11_joint_is_one_on_i3() {
        for m in [2usize, 4, 7] {
            let inst = instance3(m);
            let router = Router::new(&inst.network, &inst.joint_weights);
            let r = router
                .evaluate(&inst.demands, &inst.joint_waypoints)
                .unwrap();
            assert!(
                (r.mlu - 1.0).abs() < 1e-9,
                "I3 m={m}: joint MLU should be 1, got {}",
                r.mlu
            );
        }
    }

    #[test]
    fn lemma_3_13_joint_is_one_on_i4() {
        for m in [2usize, 4, 7] {
            let inst = instance4(m);
            let router = Router::new(&inst.network, &inst.joint_weights);
            let r = router
                .evaluate(&inst.demands, &inst.joint_waypoints)
                .unwrap();
            assert!(
                (r.mlu - 1.0).abs() < 1e-9,
                "I4 m={m}: joint MLU should be 1, got {}",
                r.mlu
            );
        }
    }

    #[test]
    fn demand_totals_match_the_paper() {
        let m = 5;
        let inst = instance3(m);
        assert_eq!(inst.demands.len(), m * m);
        assert!((inst.demands.total_size() - m as f64 * harmonic(m)).abs() < 1e-9);
    }

    #[test]
    fn joint_uses_at_most_two_waypoints() {
        assert!(instance3(4).joint_waypoints.max_used() <= 2);
        assert!(instance4(4).joint_waypoints.max_used() <= 2);
    }

    #[test]
    fn lemma_3_12_lwo_optimal_weights_deliver_two_units() {
        // Under the Lemma 3.14.ii weight setting, the max even-split flow is
        // 2 (two disjoint unit-capacity shortest paths): MLU = D / 2.
        let m = 5;
        let inst = instance3(m);
        let weights = instance3_lwo_optimal_weights(&inst);
        let router = Router::new(&inst.network, &weights);
        let mlu = router.mlu(&inst.demands).unwrap();
        let d_total = m as f64 * harmonic(m);
        assert!(
            (mlu - d_total / 2.0).abs() < 1e-6,
            "expected D/2 = {}, got {mlu}",
            d_total / 2.0
        );
    }

    #[test]
    fn node_count_is_2m() {
        assert_eq!(instance3(6).network.node_count(), 12);
        assert_eq!(instance4(6).network.node_count(), 12);
    }
}
