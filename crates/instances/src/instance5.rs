//! TE-Instance 5 (paper §3.5): the concatenation of Instances 3 and 4.
//!
//! `N₅ = N₃ ∪ N₄ ∪ {(t₃, s₄)}` with the connecting link of capacity `D`.
//! Every `(s, t)` flow must traverse `N₃` first and then `N₄`, so the
//! instance simultaneously inherits the `R_LWO` gap of Instance 3 and the
//! `R_WPO` gap of Instance 4 (Theorem 3.15), yielding the combined TE gap
//! `R* ∈ Ω(n log n / W)`.
//!
//! The constructive joint configuration uses the per-half lemma settings;
//! chaining them takes four waypoints per demand (`v_i, w_j` in each half).
//! The paper's Theorem 3.15 counts `W = 2` for Joint because each half's
//! optimal routing needs only two; the explicit witness below is what the
//! evaluation uses to certify `Joint = 1` end to end.

use crate::instance34::{instance3, instance4};
use crate::PaperInstance;
use segrout_core::{DemandList, Network, NodeId, WaypointSetting, WeightSetting};

/// Builds Instance 5 with parameter `m` per half (total `4m` nodes).
///
/// Node ids: Instance 3's nodes keep their ids (`0..2m`); Instance 4's nodes
/// are shifted by `2m`.
pub fn instance5(m: usize) -> PaperInstance {
    let i3 = instance3(m);
    let i4 = instance4(m);
    let off = i3.network.node_count() as u32;
    let shift = |v: NodeId| NodeId(v.0 + off);

    let d_total = i3.demands.total_size();
    let mut b = Network::builder(i3.network.node_count() + i4.network.node_count());
    // Copy I3 links (ids preserved), then I4 links shifted, then the bridge.
    for (e, u, v) in i3.network.graph().edges() {
        b.link(u, v, i3.network.capacities()[e.index()]);
    }
    for (e, u, v) in i4.network.graph().edges() {
        b.link(shift(u), shift(v), i4.network.capacities()[e.index()]);
    }
    b.link(i3.target, shift(i4.source), d_total);
    let network = b.build().expect("valid construction");

    let s = i3.source;
    let t = shift(i4.target);
    let mut demands = DemandList::new();
    for d in &i3.demands {
        demands.push(s, t, d.size);
    }

    // Joint weights: each half keeps its lemma weights; the bridge gets 1.
    let mut weights = Vec::with_capacity(network.edge_count());
    weights.extend_from_slice(i3.joint_weights.as_slice());
    weights.extend_from_slice(i4.joint_weights.as_slice());
    weights.push(1.0);
    let joint_weights = WeightSetting::new(&network, weights).expect("positive weights");

    // Joint waypoints: the I3 pair, then the I4 pair shifted.
    let mut joint_waypoints = WaypointSetting::none(demands.len());
    for i in 0..demands.len() {
        let mut wps: Vec<NodeId> = i3.joint_waypoints.get(i).to_vec();
        wps.extend(i4.joint_waypoints.get(i).iter().map(|&v| shift(v)));
        joint_waypoints.set(i, wps);
    }

    PaperInstance {
        network,
        demands,
        source: s,
        target: t,
        joint_weights,
        joint_waypoints,
        joint_mlu: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::Router;

    #[test]
    fn joint_achieves_one_end_to_end() {
        for m in [2usize, 4] {
            let inst = instance5(m);
            let router = Router::new(&inst.network, &inst.joint_weights);
            let r = router
                .evaluate(&inst.demands, &inst.joint_waypoints)
                .unwrap();
            assert!(
                (r.mlu - 1.0).abs() < 1e-9,
                "I5 m={m}: joint MLU should be 1, got {}",
                r.mlu
            );
        }
    }

    #[test]
    fn node_count_is_4m() {
        let inst = instance5(3);
        assert_eq!(inst.network.node_count(), 12);
    }

    #[test]
    fn all_flow_crosses_the_bridge() {
        let inst = instance5(3);
        let router = Router::new(&inst.network, &inst.joint_weights);
        let r = router
            .evaluate(&inst.demands, &inst.joint_waypoints)
            .unwrap();
        let bridge = inst.network.edge_count() - 1;
        assert!(
            (r.loads[bridge] - inst.demands.total_size()).abs() < 1e-9,
            "the bridge carries the whole demand"
        );
    }

    #[test]
    fn bridge_makes_the_graph_one_way() {
        // No edge returns from the I4 half to the I3 half.
        let inst = instance5(3);
        let off = 6u32; // 2m nodes in the first half
        for (_, u, v) in inst.network.graph().edges() {
            assert!(
                !(u.0 >= off && v.0 < off),
                "edge {u:?}->{v:?} must not cross back into the first half"
            );
        }
    }
}
