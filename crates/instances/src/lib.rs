//! # segrout-instances
//!
//! Generators for every worst-case construction of the paper's gap analysis
//! (§3), parameterized by the instance size, together with the
//! *constructive joint settings* from the lemmas (the weight + waypoint
//! configurations witnessing `Joint = OPT = 1`) and the adversarial weight
//! settings used in the WPO lower bounds.
//!
//! | Paper object | Here |
//! |---|---|
//! | TE-Instance 1 (Fig. 1) | [`fn@instance1`] |
//! | TE-Instance 2 (Fig. 2a) | [`fn@instance2`] |
//! | TE-Instance 3 (Fig. 2b) | [`instance3`] |
//! | TE-Instance 4 (Fig. 2c) | [`instance4`] |
//! | TE-Instance 5 (§3.5) | [`fn@instance5`] |
//! | uniform-capacity variant (Thm. 3.8) | [`instance1_uniform`] |
//! | Figure 3a/3b effective-capacity examples | [`figure3a`], [`figure3b`] |
//! | Lemma 3.6 optimal-LWO weights | [`instance1::lwo_optimal_weights`] |
//! | Lemma 3.7 adversarial weights | [`instance1::arbitrary_adversarial_weights`] |
//! | Lemma 3.14.ii optimal-LWO weights for I3 | [`instance34::instance3_lwo_optimal_weights`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig3;
pub mod instance1;
pub mod instance2;
pub mod instance34;
pub mod instance5;

pub use fig3::{figure3a, figure3b};
pub use instance1::{instance1, instance1_invcap_variant, instance1_uniform};
pub use instance2::instance2;
pub use instance34::{instance3, instance4};
pub use instance5::instance5;

use segrout_core::{DemandList, Network, NodeId, WaypointSetting, WeightSetting};

/// A generated paper instance: the network and demands, plus the
/// constructive joint configuration from the corresponding lemma (which
/// witnesses the instance's optimal `Joint` MLU).
#[derive(Clone, Debug)]
pub struct PaperInstance {
    /// The network.
    pub network: Network,
    /// The demand list (single source–target).
    pub demands: DemandList,
    /// Demand source `s`.
    pub source: NodeId,
    /// Demand target `t`.
    pub target: NodeId,
    /// The lemma's joint weight setting.
    pub joint_weights: WeightSetting,
    /// The lemma's joint waypoint setting.
    pub joint_waypoints: WaypointSetting,
    /// The MLU the lemma proves for this joint configuration (1.0 for all
    /// instances in the paper).
    pub joint_mlu: f64,
}

/// The harmonic number `H_m = 1 + 1/2 + … + 1/m`.
pub fn harmonic(m: usize) -> f64 {
    (1..=m).map(|j| 1.0 / j as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        assert!(harmonic(100) > (100.0_f64).ln());
        assert!(harmonic(100) < (100.0_f64).ln() + 1.0);
    }
}
