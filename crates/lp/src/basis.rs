//! Product-form (eta-file) basis representation for the revised simplex.
//!
//! The basis inverse is kept as an ordered product of *eta matrices*
//! `B⁻¹ = Eₖ⁻¹ ⋯ E₂⁻¹ E₁⁻¹`, where each `Eᵢ` is an identity matrix with one
//! column replaced by a (sparse) eta vector. A simplex pivot appends one eta;
//! a *refactorization* rebuilds the whole file from the basic columns,
//! bounding both floating-point drift and the cost of FTRAN/BTRAN sweeps.
//!
//! [`EtaFile`] stores every eta in one flat arena so a solve performs zero
//! per-pivot allocations beyond the arena growth itself. [`Basis`] is the
//! compact, cloneable snapshot of a basis (basic column per row plus the
//! at-upper flags of the nonbasic columns) that the branch-and-bound driver
//! hands from a parent node to its children for warm starts.

/// Compact snapshot of a simplex basis, used to warm-start later solves of
/// the same problem (typically with tightened variable bounds, as in
/// branch-and-bound). Obtain one from
/// [`solve_lp_revised`](crate::simplex::solve_lp_revised) and feed it to
/// [`solve_lp_from_basis`](crate::simplex::solve_lp_from_basis).
#[derive(Clone, Debug)]
pub struct Basis {
    /// Basic column per row (columns index structurals then slacks).
    pub(crate) basic: Vec<u32>,
    /// Per-column flag: nonbasic at its upper bound (`false` for basic
    /// columns and columns at their lower bound).
    pub(crate) at_upper: Vec<bool>,
    /// Number of structural variables of the problem this basis belongs to.
    pub(crate) n_struct: usize,
}

impl Basis {
    /// Number of rows (constraints) of the owning problem.
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }

    /// Number of structural variables of the owning problem.
    pub fn num_vars(&self) -> usize {
        self.n_struct
    }
}

/// Flat-arena eta file: the ordered sequence of eta vectors making up the
/// product-form basis inverse.
#[derive(Debug, Default)]
pub(crate) struct EtaFile {
    /// `(row, value)` entries of every eta, concatenated.
    entries: Vec<(u32, f64)>,
    /// Per eta: `(pivot_row, start, end)` into `entries`.
    etas: Vec<(u32, u32, u32)>,
}

impl EtaFile {
    /// Drops every eta (used at refactorization).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.etas.clear();
    }

    /// Number of etas currently in the file.
    pub fn len(&self) -> usize {
        self.etas.len()
    }

    /// Total stored entries (a proxy for FTRAN/BTRAN cost).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends an eta with the given pivot row; `column` holds the dense
    /// transformed column (only entries above `drop_tol` are stored, except
    /// the pivot entry which is always kept).
    pub fn push(&mut self, pivot_row: usize, column: &[f64], drop_tol: f64) {
        let start = self.entries.len() as u32;
        for (i, &v) in column.iter().enumerate() {
            if i == pivot_row || v.abs() > drop_tol {
                self.entries.push((i as u32, v));
            }
        }
        let end = self.entries.len() as u32;
        self.etas.push((pivot_row as u32, start, end));
    }

    /// FTRAN: solves `B x = w` in place by applying every eta in order.
    ///
    /// For an eta `E` with pivot row `r` and column `v`, solving `E x = w`
    /// gives `x_r = w_r / v_r` and `x_i = w_i − v_i x_r` for `i ≠ r`.
    pub fn ftran(&self, w: &mut [f64]) {
        for &(r, start, end) in &self.etas {
            let r = r as usize;
            let entries = &self.entries[start as usize..end as usize];
            let piv = entries
                .iter()
                .find(|&&(i, _)| i as usize == r)
                .map(|&(_, v)| v)
                .unwrap_or(1.0);
            let xr = w[r] / piv;
            if xr != 0.0 {
                for &(i, v) in entries {
                    let i = i as usize;
                    if i != r {
                        w[i] -= v * xr;
                    }
                }
            }
            w[r] = xr;
        }
    }

    /// BTRAN: solves `Bᵀ y = w` in place by applying every eta transposed in
    /// reverse order.
    ///
    /// For an eta `E` with pivot row `r` and column `v`, solving `Eᵀ y = w`
    /// leaves `y_i = w_i` for `i ≠ r` and sets
    /// `y_r = (w_r − Σ_{i≠r} v_i w_i) / v_r`.
    pub fn btran(&self, w: &mut [f64]) {
        for &(r, start, end) in self.etas.iter().rev() {
            let r = r as usize;
            let entries = &self.entries[start as usize..end as usize];
            let mut piv = 1.0;
            let mut dot = 0.0;
            for &(i, v) in entries {
                let i = i as usize;
                if i == r {
                    piv = v;
                } else {
                    dot += v * w[i];
                }
            }
            w[r] = (w[r] - dot) / piv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense 3x3 sanity check: factorize B column by column as the
    /// refactorization loop does, then verify FTRAN/BTRAN against direct
    /// substitution.
    #[test]
    fn ftran_btran_invert_a_dense_basis() {
        // B = [[2,1,0],[0,1,1],[1,0,2]] (nonsingular).
        let b_cols: [[f64; 3]; 3] = [[2.0, 0.0, 1.0], [1.0, 1.0, 0.0], [0.0, 1.0, 2.0]];
        let mut eta = EtaFile::default();
        let mut assigned = [false; 3];
        for col in &b_cols {
            let mut w = *col;
            eta.ftran(&mut w);
            // Pivot on the largest unassigned entry.
            let r = (0..3)
                .filter(|&i| !assigned[i])
                .max_by(|&a, &b| w[a].abs().partial_cmp(&w[b].abs()).unwrap())
                .unwrap();
            assigned[r] = true;
            eta.push(r, &w, 1e-12);
        }

        // FTRAN: B x = rhs.
        let rhs = [1.0, 2.0, 3.0];
        let mut x = rhs;
        eta.ftran(&mut x);
        for i in 0..3 {
            let got: f64 = (0..3).map(|j| b_cols[j][i] * x[j]).sum();
            assert!((got - rhs[i]).abs() < 1e-9, "FTRAN row {i}: {got}");
        }

        // BTRAN: Bᵀ y = c.
        let c = [3.0, -1.0, 0.5];
        let mut y = c;
        eta.btran(&mut y);
        for (j, col) in b_cols.iter().enumerate() {
            let got: f64 = (0..3).map(|i| col[i] * y[i]).sum();
            assert!((got - c[j]).abs() < 1e-9, "BTRAN col {j}: {got}");
        }
    }

    #[test]
    fn clear_resets_the_file() {
        let mut eta = EtaFile::default();
        eta.push(0, &[2.0, 1.0], 1e-12);
        assert_eq!(eta.len(), 1);
        assert!(eta.nnz() >= 1);
        eta.clear();
        assert_eq!(eta.len(), 0);
        let mut w = [5.0, 7.0];
        eta.ftran(&mut w);
        assert_eq!(w, [5.0, 7.0], "empty file is the identity");
    }
}
