//! # segrout-lp
//!
//! A self-contained linear-programming and mixed-integer-programming solver,
//! standing in for the Gurobi solver the paper used for its OPT / LWO / WPO /
//! Joint formulations.
//!
//! * [`problem`] — model builder: bounded (optionally integer) variables,
//!   sparse linear constraints, min/max objective.
//! * [`simplex`] — dense two-phase primal simplex with Dantzig pricing and a
//!   Bland anti-cycling fallback. Exact (up to floating tolerance) on the
//!   small/medium instances where the paper itself resorted to a MILP.
//! * [`milp`] — branch-and-bound over the simplex relaxation with
//!   most-fractional branching, incumbent warm starts, and node/time limits
//!   (mirroring how a commercial solver is used with a time limit on the
//!   paper's Abilene-scale Joint MILP).
//!
//! The solver is deliberately dense and simple: the formulations in
//! `segrout-milp` produce at most a few thousand variables, where a dense
//! tableau is both fast enough and much easier to make robust than a sparse
//! revised simplex.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lpwrite;
pub mod milp;
pub mod problem;
pub mod simplex;

pub use lpwrite::to_lp_format;
pub use milp::{solve_milp, MilpOptions, MilpResult, MilpStatus};
pub use problem::{Cmp, Problem, Sense, VarId};
pub use simplex::{solve_lp, LpResult, LpStatus};
