//! # segrout-lp
//!
//! A self-contained linear-programming and mixed-integer-programming solver,
//! standing in for the Gurobi solver the paper used for its OPT / LWO / WPO /
//! Joint formulations.
//!
//! * [`problem`] — model builder: bounded (optionally integer) variables,
//!   sparse linear constraints, min/max objective.
//! * [`simplex`] — solve entry points and engine selection. The default
//!   engine is a **bounded-variable revised simplex** ([`revised`]): both
//!   variable bounds are handled implicitly (nonbasic-at-lower /
//!   nonbasic-at-upper), the basis inverse is a product-form eta file with
//!   periodic refactorization ([`basis`]), pricing is Dantzig with a Bland
//!   anti-cycling fallback, and the ratio test is a Harris-style two-pass.
//!   A warm-start API ([`simplex::solve_lp_from_basis`]) re-solves from a
//!   previous basis snapshot — the branch-and-bound driver uses it to start
//!   each child from its parent's basis.
//! * [`reference`] — the original dense two-phase tableau, kept as a
//!   correctness oracle (select it with [`LpEngine::Tableau`]); the
//!   differential suite in `crates/lp/tests/` asserts both engines agree.
//! * [`milp`] — best-bound branch-and-bound over the LP relaxation with
//!   closest-to-half branching, feasibility-verified incumbents, parent-basis
//!   warm starts, and node/time limits (mirroring how a commercial solver is
//!   used with a time limit on the paper's Abilene-scale Joint MILP).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod lpwrite;
pub mod milp;
pub mod problem;
pub mod reference;
pub mod revised;
pub mod simplex;

pub use basis::Basis;
pub use lpwrite::to_lp_format;
pub use milp::{solve_milp, MilpOptions, MilpResult, MilpStatus};
pub use problem::{Cmp, Problem, Sense, VarId};
pub use simplex::{
    solve_lp, solve_lp_from_basis, solve_lp_revised, solve_lp_with_bounds, solve_lp_with_deadline,
    solve_lp_with_engine, LpEngine, LpResult, LpStatus,
};
