//! CPLEX-LP-format export of models.
//!
//! Lets any formulation built here be dumped to the standard `.lp` text
//! format and cross-checked in an external solver (Gurobi, CBC, HiGHS, …) —
//! the natural validation path for the MILP substitution documented in
//! DESIGN.md.

use crate::problem::{Cmp, Problem, Sense};
use std::fmt::Write;

/// Renders a problem in CPLEX LP format.
pub fn to_lp_format(p: &Problem) -> String {
    let mut out = String::new();
    out.push_str(match p.sense() {
        Sense::Minimize => "Minimize\n obj:",
        Sense::Maximize => "Maximize\n obj:",
    });
    let mut any = false;
    for (j, &c) in p.objective().iter().enumerate() {
        if c != 0.0 {
            let _ = write!(out, " {} {}", signed(c, any), var(p, j));
            any = true;
        }
    }
    if !any {
        out.push_str(" 0 x0");
    }
    out.push_str("\nSubject To\n");
    for (i, con) in p.constraints().iter().enumerate() {
        let _ = write!(out, " c{i}:");
        // Accumulate duplicate terms, as the solver does.
        let mut coeffs = std::collections::BTreeMap::new();
        for &(v, a) in &con.terms {
            *coeffs.entry(v.0).or_insert(0.0) += a;
        }
        let mut first = true;
        for (j, a) in coeffs {
            if a != 0.0 {
                let _ = write!(out, " {} {}", signed(a, !first), var(p, j));
                first = false;
            }
        }
        if first {
            out.push_str(" 0 x0");
        }
        let op = match con.cmp {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", con.rhs);
    }
    out.push_str("Bounds\n");
    for j in 0..p.num_vars() {
        let lo = p.lower_bounds()[j];
        let hi = p.upper_bounds()[j];
        if hi.is_finite() {
            let _ = writeln!(out, " {lo} <= {} <= {hi}", var(p, j));
        } else {
            let _ = writeln!(out, " {} >= {lo}", var(p, j));
        }
    }
    let ints: Vec<String> = (0..p.num_vars())
        .filter(|&j| p.integrality()[j])
        .map(|j| var(p, j))
        .collect();
    if !ints.is_empty() {
        out.push_str("General\n ");
        out.push_str(&ints.join(" "));
        out.push('\n');
    }
    out.push_str("End\n");
    out
}

/// LP-format-safe variable name: the user name when it is plain
/// alphanumeric, otherwise a positional `x<j>`.
fn var(p: &Problem, j: usize) -> String {
    let name = p.var_name(crate::problem::VarId(j));
    if !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        name.to_string()
    } else {
        format!("x{j}")
    }
}

fn signed(c: f64, with_plus: bool) -> String {
    if c < 0.0 {
        format!("- {}", -c)
    } else if with_plus {
        format!("+ {c}")
    } else {
        format!("{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    #[test]
    fn renders_a_small_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 4.0, 3.0);
        let y = p.add_int_var("y", 0.0, 10.0, -2.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.5)], Cmp::Le, 7.0);
        p.add_constraint(vec![(x, 2.0)], Cmp::Ge, 1.0);
        p.add_constraint(vec![(y, 1.0)], Cmp::Eq, 3.0);
        let lp = to_lp_format(&p);
        assert!(lp.contains("Maximize"));
        assert!(lp.contains("3 x - 2 y"));
        assert!(lp.contains("c0: 1 x - 1.5 y <= 7"));
        assert!(lp.contains("c1: 2 x >= 1"));
        assert!(lp.contains("c2: 1 y = 3"));
        assert!(lp.contains("0 <= x <= 4"));
        assert!(lp.contains("General\n y"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn weird_names_are_sanitized() {
        let mut p = Problem::new(Sense::Minimize);
        let v = p.add_var("f[t][e0]", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(v, 1.0)], Cmp::Ge, 0.5);
        let lp = to_lp_format(&p);
        assert!(lp.contains("x0"), "bracketed names must be sanitized: {lp}");
        assert!(!lp.contains('['));
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Le, 9.0);
        let lp = to_lp_format(&p);
        assert!(lp.contains("3 x <= 9"), "{lp}");
    }

    #[test]
    fn empty_objective_still_valid() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        let lp = to_lp_format(&p);
        assert!(lp.contains("obj: 0 x0"));
    }
}
