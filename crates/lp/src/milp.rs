//! Branch-and-bound mixed-integer solver over the simplex relaxation.
//!
//! Strategy: best-bound node selection, most-fractional branching, optional
//! warm incumbent (the TE heuristics provide excellent starting solutions for
//! the Joint MILP), and node/time limits. With the limits disabled the solver
//! is exact; with limits it reports the best incumbent plus a global dual
//! bound — exactly how the paper's Gurobi runs on Abilene-scale Joint
//! instances behave in practice.

use crate::problem::{Problem, Sense};
use crate::simplex::{solve_lp_with_deadline, LpStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Integrality tolerance: a relaxation value within this distance of an
/// integer counts as integral.
const INT_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Clone, Debug)]
pub struct MilpOptions {
    /// Maximum number of explored nodes (LP solves).
    pub node_limit: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Optional warm-start incumbent (a feasible point of the problem); its
    /// objective is used for pruning from the first node on.
    pub warm_start: Option<Vec<f64>>,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            node_limit: 100_000,
            time_limit: Duration::from_secs(60),
            warm_start: None,
            rel_gap: 1e-6,
        }
    }
}

/// Termination status of the MILP search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MilpStatus {
    /// Search tree exhausted (or gap closed): the incumbent is optimal.
    Optimal,
    /// No feasible integer point exists.
    Infeasible,
    /// A limit was hit; the incumbent (if any) is feasible but possibly
    /// suboptimal.
    LimitReached,
    /// The relaxation is unbounded.
    Unbounded,
}

/// Result of a MILP solve.
#[derive(Clone, Debug)]
pub struct MilpResult {
    /// Termination status.
    pub status: MilpStatus,
    /// Best integer-feasible objective found (in the problem's sense).
    pub objective: Option<f64>,
    /// Best integer-feasible point found.
    pub values: Option<Vec<f64>>,
    /// Global dual bound on the optimum.
    pub bound: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

struct Node {
    /// Priority: relaxation bound converted so that "larger is better".
    priority: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
    }
}

/// Solves a mixed-integer program by branch-and-bound.
pub fn solve_milp(p: &Problem, options: &MilpOptions) -> MilpResult {
    let start = Instant::now();
    // Every LP solve (including the root) respects the overall time budget,
    // so one huge relaxation cannot overshoot it.
    let deadline = start.checked_add(options.time_limit);
    let minimize = p.sense() == Sense::Minimize;
    // `better(a, b)`: objective a strictly improves on b.
    let better = |a: f64, b: f64| {
        if minimize {
            a < b - 1e-12
        } else {
            a > b + 1e-12
        }
    };

    let mut incumbent_obj: Option<f64> = None;
    let mut incumbent: Option<Vec<f64>> = None;
    if let Some(ws) = &options.warm_start {
        if p.is_feasible(ws, 1e-6) {
            incumbent_obj = Some(p.objective_value(ws));
            incumbent = Some(ws.clone());
        }
    }

    let root = solve_lp_with_deadline(p, p.lower_bounds(), p.upper_bounds(), deadline);
    match root.status {
        LpStatus::IterLimit => {
            // Could not even bound the root in time: report the warm-start
            // incumbent (if any) with a trivial bound.
            return MilpResult {
                status: MilpStatus::LimitReached,
                objective: incumbent_obj,
                values: incumbent,
                bound: if minimize {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                nodes: 1,
            };
        }
        LpStatus::Infeasible => {
            return MilpResult {
                status: if incumbent.is_some() {
                    // A warm start cannot be feasible for an infeasible
                    // problem (is_feasible checked), so this is defensive.
                    MilpStatus::Optimal
                } else {
                    MilpStatus::Infeasible
                },
                objective: incumbent_obj,
                values: incumbent,
                bound: if minimize {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                },
                nodes: 1,
            };
        }
        LpStatus::Unbounded => {
            return MilpResult {
                status: MilpStatus::Unbounded,
                objective: incumbent_obj,
                values: incumbent,
                bound: if minimize {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                nodes: 1,
            };
        }
        _ => {}
    }

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let prio = |obj: f64| if minimize { -obj } else { obj };
    heap.push(Node {
        priority: prio(root.objective),
        lower: p.lower_bounds().to_vec(),
        upper: p.upper_bounds().to_vec(),
    });

    let mut nodes = 0usize;
    let mut limit_hit = false;
    let mut bound = root.objective;

    while let Some(node) = heap.pop() {
        // The heap is ordered best-bound-first, so the popped node's bound is
        // the global dual bound.
        bound = if minimize {
            -node.priority
        } else {
            node.priority
        };
        if let Some(inc) = incumbent_obj {
            // Prune: node cannot improve the incumbent.
            if !better(bound, inc) {
                // Best-bound search: nothing further can improve either.
                return MilpResult {
                    status: MilpStatus::Optimal,
                    objective: incumbent_obj,
                    values: incumbent,
                    bound: inc,
                    nodes,
                };
            }
            let gap = (inc - bound).abs() / (1e-9 + inc.abs());
            if gap <= options.rel_gap {
                return MilpResult {
                    status: MilpStatus::Optimal,
                    objective: incumbent_obj,
                    values: incumbent,
                    bound,
                    nodes,
                };
            }
        }
        if nodes >= options.node_limit || start.elapsed() >= options.time_limit {
            limit_hit = true;
            break;
        }
        nodes += 1;

        let relax = solve_lp_with_deadline(p, &node.lower, &node.upper, deadline);
        match relax.status {
            LpStatus::Infeasible => continue,
            LpStatus::IterLimit => {
                // Treat as unexplorable: drop the node (keeps soundness of
                // the incumbent; the bound becomes heuristic). Extremely
                // rare given the generous iteration limits.
                limit_hit = true;
                continue;
            }
            LpStatus::Unbounded => {
                return MilpResult {
                    status: MilpStatus::Unbounded,
                    objective: incumbent_obj,
                    values: incumbent,
                    bound: if minimize {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    },
                    nodes,
                };
            }
            LpStatus::Optimal => {}
        }
        if let Some(inc) = incumbent_obj {
            if !better(relax.objective, inc) {
                continue; // pruned by bound
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = INT_TOL;
        for (j, &is_int) in p.integrality().iter().enumerate() {
            if !is_int {
                continue;
            }
            let v = relax.values[j];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                let dist_to_half = (frac - 0.5).abs();
                let cur_best_dist = (best_frac - 0.5).abs();
                if branch_var.is_none() || dist_to_half < cur_best_dist {
                    best_frac = frac;
                    branch_var = Some((j, v));
                }
            }
        }

        match branch_var {
            None => {
                // Integer feasible: candidate incumbent.
                let rounded: Vec<f64> = relax
                    .values
                    .iter()
                    .zip(p.integrality())
                    .map(|(&v, &is_int)| if is_int { v.round() } else { v })
                    .collect();
                let obj = p.objective_value(&rounded);
                if incumbent_obj.is_none_or(|inc| better(obj, inc)) {
                    incumbent_obj = Some(obj);
                    incumbent = Some(rounded);
                }
            }
            Some((j, v)) => {
                // Down branch: x_j <= floor(v).
                let mut up = node.upper.clone();
                up[j] = v.floor();
                heap.push(Node {
                    priority: prio(relax.objective),
                    lower: node.lower.clone(),
                    upper: up,
                });
                // Up branch: x_j >= ceil(v).
                let mut lo = node.lower.clone();
                lo[j] = v.ceil();
                heap.push(Node {
                    priority: prio(relax.objective),
                    lower: lo,
                    upper: node.upper.clone(),
                });
            }
        }
    }

    let status = if limit_hit || !heap.is_empty() {
        MilpStatus::LimitReached
    } else if incumbent.is_some() {
        MilpStatus::Optimal
    } else {
        MilpStatus::Infeasible
    };
    if status == MilpStatus::Optimal {
        bound = incumbent_obj.unwrap_or(bound);
    }
    MilpResult {
        status,
        objective: incumbent_obj,
        values: incumbent,
        bound,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 8a + 11b + 6c + 4d st 5a + 7b + 4c + 3d <= 14, binary.
        // Optimum: b + c + d = 21 (weight 14).
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_bin_var("a", 8.0);
        let b = p.add_bin_var("b", 11.0);
        let c = p.add_bin_var("c", 6.0);
        let d = p.add_bin_var("d", 4.0);
        p.add_constraint(vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], Cmp::Le, 14.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective.unwrap(), 21.0);
        let v = r.values.unwrap();
        assert_close(v[0], 0.0);
        assert_close(v[1], 1.0);
    }

    #[test]
    fn integer_rounding_is_not_lp_rounding() {
        // max y st 2y <= 7 -> LP gives 3.5, MILP must give 3.
        let mut p = Problem::new(Sense::Maximize);
        let y = p.add_int_var("y", 0.0, 100.0, 1.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 7.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective.unwrap(), 3.0);
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6 has no integer point.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.4);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.6);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
        assert!(r.values.is_none());
    }

    #[test]
    fn mixed_integer_continuous() {
        // min x + y, x integer, x + 2y >= 5.5, y <= 1.5:
        // x = 3, y = 1.25 -> obj 4.25 (x = 2 forces y > 1.5, infeasible).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var("x", 0.0, 100.0, 1.0);
        let y = p.add_var("y", 0.0, 1.5, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 5.5);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective.unwrap(), 4.25);
    }

    #[test]
    fn warm_start_is_used_and_optimality_still_proven() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_bin_var("a", 5.0);
        let b = p.add_bin_var("b", 4.0);
        p.add_constraint(vec![(a, 3.0), (b, 2.0)], Cmp::Le, 4.0);
        let opts = MilpOptions {
            warm_start: Some(vec![0.0, 1.0]), // feasible, obj 4
            ..Default::default()
        };
        let r = solve_milp(&p, &opts);
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective.unwrap(), 5.0); // a=1 beats the warm start
    }

    #[test]
    fn infeasible_warm_start_is_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_bin_var("a", 1.0);
        p.add_constraint(vec![(a, 1.0)], Cmp::Le, 0.0);
        let opts = MilpOptions {
            warm_start: Some(vec![1.0]), // violates the constraint
            ..Default::default()
        };
        let r = solve_milp(&p, &opts);
        assert_close(r.objective.unwrap(), 0.0);
    }

    #[test]
    fn node_limit_returns_incumbent() {
        // A problem needing some branching; with node_limit 1 we may only
        // have the root: status LimitReached but sound output.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| p.add_bin_var(format!("v{i}"), (i + 1) as f64))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        p.add_constraint(terms, Cmp::Le, 7.0);
        let opts = MilpOptions {
            node_limit: 1,
            ..Default::default()
        };
        let r = solve_milp(&p, &opts);
        assert_eq!(r.status, MilpStatus::LimitReached);
        // Dual bound must be valid: >= any feasible objective (maximize).
        assert!(r.bound >= 15.0 - 1e-6);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0, 3.0, 2.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective.unwrap(), 4.0);
    }

    #[test]
    fn equality_milp() {
        // x + y = 5, x,y integer, min 3x + y -> x = 0, y = 5, obj 5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var("x", 0.0, 10.0, 3.0);
        let y = p.add_int_var("y", 0.0, 10.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_close(r.objective.unwrap(), 5.0);
        let v = r.values.unwrap();
        assert_close(v[0], 0.0);
        assert_close(v[1], 5.0);
    }
}
