//! Branch-and-bound mixed-integer solver over the LP relaxation.
//!
//! Strategy: best-bound node selection, closest-to-half fractional
//! branching, feasibility-verified incumbents, optional warm incumbent (the
//! TE heuristics provide excellent starting solutions for the Joint MILP),
//! parent-basis warm starts for the child relaxations, and node/time limits.
//! With the limits disabled the solver is exact; with limits it reports the
//! best incumbent plus a global dual bound — exactly how the paper's Gurobi
//! runs on Abilene-scale Joint instances behave in practice.
//!
//! Every candidate incumbent is re-verified with [`Problem::is_feasible`]
//! before acceptance: the relaxation is integral only up to [`INT_TOL`], and
//! rounding each integer variable individually can violate a tight equality
//! row. A rounded point that fails verification is never accepted (and never
//! prunes); instead the node is split around the offending near-integral
//! variable so both children exclude the current relaxation point.

use crate::basis::Basis;
use crate::problem::{Problem, Sense};
use crate::simplex::{
    solve_lp_from_basis, solve_lp_revised, solve_lp_with_engine, LpEngine, LpResult, LpStatus,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Integrality tolerance: a relaxation value within this distance of an
/// integer counts as integral.
const INT_TOL: f64 = 1e-6;

/// Feasibility tolerance for accepting incumbents (warm starts and rounded
/// relaxation points alike).
const INC_FEAS_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Clone, Debug)]
pub struct MilpOptions {
    /// Maximum number of explored nodes (LP solves).
    pub node_limit: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Optional warm-start incumbent (a feasible point of the problem); its
    /// objective is used for pruning from the first node on.
    pub warm_start: Option<Vec<f64>>,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
    /// LP engine used for the node relaxations. The default revised engine
    /// warm-starts every child from its parent's final basis; the tableau
    /// engine always solves from scratch (kept for differential testing).
    pub engine: LpEngine,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            node_limit: 100_000,
            time_limit: Duration::from_secs(60),
            warm_start: None,
            rel_gap: 1e-6,
            engine: LpEngine::default(),
        }
    }
}

/// Termination status of the MILP search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MilpStatus {
    /// Search tree exhausted (or gap closed): the incumbent is optimal.
    Optimal,
    /// No feasible integer point exists.
    Infeasible,
    /// A limit was hit; the incumbent (if any) is feasible but possibly
    /// suboptimal.
    LimitReached,
    /// The relaxation is unbounded.
    Unbounded,
}

/// Result of a MILP solve.
#[derive(Clone, Debug)]
pub struct MilpResult {
    /// Termination status.
    pub status: MilpStatus,
    /// Best integer-feasible objective found (in the problem's sense).
    pub objective: Option<f64>,
    /// Best integer-feasible point found.
    pub values: Option<Vec<f64>>,
    /// Global dual bound on the optimum.
    pub bound: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

struct Node {
    /// Priority: relaxation bound converted so that "larger is better".
    priority: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Final basis of the parent relaxation, shared by both children: the
    /// child differs from the parent by a single bound, so the revised
    /// engine restores feasibility from it in a handful of pivots.
    basis: Option<Rc<Basis>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
    }
}

/// Selects the branch variable: the integer variable whose fractional part
/// is closest to one half (most "undecided"), ties broken by lowest index.
/// Returns `None` when every integer variable is integral within
/// [`INT_TOL`].
fn select_branch_var(values: &[f64], integrality: &[bool]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (index, value, |frac - 0.5|)
    for (j, &is_int) in integrality.iter().enumerate() {
        if !is_int {
            continue;
        }
        let v = values[j];
        let frac = (v - v.round()).abs();
        if frac <= INT_TOL {
            continue;
        }
        let dist = (frac - 0.5).abs();
        if best.is_none_or(|(_, _, d)| dist < d) {
            best = Some((j, v, dist));
        }
    }
    best.map(|(j, v, _)| (j, v))
}

/// Dispatches a node relaxation to the configured engine, warm-starting the
/// revised engine from `basis` when available.
fn solve_relaxation(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
    engine: LpEngine,
    basis: Option<&Basis>,
) -> (LpResult, Option<Basis>) {
    match engine {
        LpEngine::Revised => match basis {
            Some(b) => {
                segrout_obs::counter("milp.nodes_warm_started").inc();
                solve_lp_from_basis(p, lower, upper, deadline, b)
            }
            None => solve_lp_revised(p, lower, upper, deadline),
        },
        LpEngine::Tableau => (
            solve_lp_with_engine(p, lower, upper, deadline, LpEngine::Tableau),
            None,
        ),
    }
}

/// Solves a mixed-integer program by branch-and-bound.
pub fn solve_milp(p: &Problem, options: &MilpOptions) -> MilpResult {
    let start = Instant::now();
    // Every LP solve (including the root) respects the overall time budget,
    // so one huge relaxation cannot overshoot it.
    let deadline = start.checked_add(options.time_limit);
    let minimize = p.sense() == Sense::Minimize;
    // `better(a, b)`: objective a strictly improves on b.
    let better = |a: f64, b: f64| {
        if minimize {
            a < b - 1e-12
        } else {
            a > b + 1e-12
        }
    };

    let mut incumbent_obj: Option<f64> = None;
    let mut incumbent: Option<Vec<f64>> = None;
    if let Some(ws) = &options.warm_start {
        if p.is_feasible(ws, INC_FEAS_TOL) {
            incumbent_obj = Some(p.objective_value(ws));
            incumbent = Some(ws.clone());
            // Flight recorder: for milp.* points (phi, mlu) carries
            // (global dual bound, incumbent objective).
            segrout_obs::trace_point(
                "milp.incumbent",
                0,
                f64::NAN,
                incumbent_obj.expect("just set"),
            );
        }
    }

    let (root, root_basis) = solve_relaxation(
        p,
        p.lower_bounds(),
        p.upper_bounds(),
        deadline,
        options.engine,
        None,
    );
    match root.status {
        LpStatus::IterLimit => {
            // Could not even bound the root in time: report the warm-start
            // incumbent (if any) with a trivial bound.
            return MilpResult {
                status: MilpStatus::LimitReached,
                objective: incumbent_obj,
                values: incumbent,
                bound: if minimize {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                nodes: 1,
            };
        }
        LpStatus::Infeasible => {
            return MilpResult {
                status: if incumbent.is_some() {
                    // A warm start cannot be feasible for an infeasible
                    // problem (is_feasible checked), so this is defensive.
                    MilpStatus::Optimal
                } else {
                    MilpStatus::Infeasible
                },
                objective: incumbent_obj,
                values: incumbent,
                bound: if minimize {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                },
                nodes: 1,
            };
        }
        LpStatus::Unbounded => {
            return MilpResult {
                status: MilpStatus::Unbounded,
                objective: incumbent_obj,
                values: incumbent,
                bound: if minimize {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                nodes: 1,
            };
        }
        LpStatus::Optimal => {}
    }

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let prio = |obj: f64| if minimize { -obj } else { obj };
    heap.push(Node {
        priority: prio(root.objective),
        lower: p.lower_bounds().to_vec(),
        upper: p.upper_bounds().to_vec(),
        basis: root_basis.map(Rc::new),
    });

    let mut nodes = 0usize;
    let mut limit_hit = false;
    let mut bound = root.objective;
    let node_counter = segrout_obs::counter("milp.nodes");

    while let Some(node) = heap.pop() {
        // The heap is ordered best-bound-first, so the popped node's bound is
        // the global dual bound.
        bound = if minimize {
            -node.priority
        } else {
            node.priority
        };
        // Node milestone for the flight recorder: the (bound, incumbent)
        // pair every 64 explored nodes bounds the trace-buffer growth on
        // large searches.
        if nodes.is_multiple_of(64) {
            segrout_obs::trace_point(
                "milp.node",
                nodes as u64,
                bound,
                incumbent_obj.unwrap_or(f64::NAN),
            );
        }
        if let Some(inc) = incumbent_obj {
            // Prune: node cannot improve the incumbent.
            if !better(bound, inc) {
                // Best-bound search: nothing further can improve either.
                return MilpResult {
                    status: MilpStatus::Optimal,
                    objective: incumbent_obj,
                    values: incumbent,
                    bound: inc,
                    nodes,
                };
            }
            let gap = (inc - bound).abs() / (1e-9 + inc.abs());
            if gap <= options.rel_gap {
                return MilpResult {
                    status: MilpStatus::Optimal,
                    objective: incumbent_obj,
                    values: incumbent,
                    bound,
                    nodes,
                };
            }
        }
        if nodes >= options.node_limit || start.elapsed() >= options.time_limit {
            limit_hit = true;
            break;
        }
        nodes += 1;
        node_counter.inc();

        let (relax, relax_basis) = solve_relaxation(
            p,
            &node.lower,
            &node.upper,
            deadline,
            options.engine,
            node.basis.as_deref(),
        );
        match relax.status {
            LpStatus::Infeasible => continue,
            LpStatus::IterLimit => {
                // Treat as unexplorable: drop the node (keeps soundness of
                // the incumbent; the bound becomes heuristic). Extremely
                // rare given the generous iteration limits.
                limit_hit = true;
                continue;
            }
            LpStatus::Unbounded => {
                return MilpResult {
                    status: MilpStatus::Unbounded,
                    objective: incumbent_obj,
                    values: incumbent,
                    bound: if minimize {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    },
                    nodes,
                };
            }
            LpStatus::Optimal => {}
        }
        if let Some(inc) = incumbent_obj {
            if !better(relax.objective, inc) {
                continue; // pruned by bound
            }
        }

        let branch = select_branch_var(&relax.values, p.integrality());
        let (j, v) = match branch {
            Some(jv) => jv,
            None => {
                // Integer feasible up to INT_TOL: candidate incumbent —
                // but only after rounding AND re-verifying. Rounding each
                // integer variable by up to INT_TOL can break a tight
                // equality row, and an unverified incumbent would both
                // prune the true optimum and be returned as Optimal.
                let rounded: Vec<f64> = relax
                    .values
                    .iter()
                    .zip(p.integrality())
                    .map(|(&v, &is_int)| if is_int { v.round() } else { v })
                    .collect();
                if p.is_feasible(&rounded, INC_FEAS_TOL) {
                    let obj = p.objective_value(&rounded);
                    if incumbent_obj.is_none_or(|inc| better(obj, inc)) {
                        incumbent_obj = Some(obj);
                        incumbent = Some(rounded);
                        segrout_obs::trace_point("milp.incumbent", nodes as u64, bound, obj);
                    }
                    continue;
                }
                // Rounding broke a constraint. Split the node around a
                // near-integral variable so both children exclude the
                // current relaxation point; the continuous variables then
                // re-optimize against the pinned integer side.
                match fallback_branch_var(&relax.values, p.integrality(), &node.lower, &node.upper)
                {
                    Some(jv) => jv,
                    None => {
                        // Every integer variable is fixed: no split can
                        // make progress. Dropping the node silently would
                        // let the search claim optimality, so record the
                        // limit instead.
                        limit_hit = true;
                        continue;
                    }
                }
            }
        };

        // Split at (floor(v), ceil(v)) for a fractional v; for the
        // near-integral fallback (v ≈ k) split at (k-1, k) or (k, k+1),
        // whichever keeps both children inside the node's bounds.
        let k = v.round();
        let frac = (v - k).abs();
        let (down_ub, up_lb) = if frac > INT_TOL {
            (v.floor(), v.ceil())
        } else if v < k || (v == k && node.lower[j] < k - INT_TOL) {
            (k - 1.0, k)
        } else {
            (k, k + 1.0)
        };
        let parent_basis = relax_basis.map(Rc::new);
        if down_ub >= node.lower[j] - INT_TOL {
            let mut up = node.upper.clone();
            up[j] = down_ub;
            heap.push(Node {
                priority: prio(relax.objective),
                lower: node.lower.clone(),
                upper: up,
                basis: parent_basis.clone(),
            });
        }
        if up_lb <= node.upper[j] + INT_TOL {
            let mut lo = node.lower.clone();
            lo[j] = up_lb;
            heap.push(Node {
                priority: prio(relax.objective),
                lower: lo,
                upper: node.upper.clone(),
                basis: parent_basis,
            });
        }
    }

    let status = if limit_hit || !heap.is_empty() {
        MilpStatus::LimitReached
    } else if incumbent.is_some() {
        MilpStatus::Optimal
    } else {
        MilpStatus::Infeasible
    };
    if status == MilpStatus::Optimal {
        bound = incumbent_obj.unwrap_or(bound);
    }
    MilpResult {
        status,
        objective: incumbent_obj,
        values: incumbent,
        bound,
        nodes,
    }
}

/// Picks the variable to split on when the relaxation is integral within
/// [`INT_TOL`] but its rounding is infeasible: the not-yet-fixed integer
/// variable with the largest residual fractionality (ties: lowest index).
/// Returns `None` when every integer variable is already fixed.
fn fallback_branch_var(
    values: &[f64],
    integrality: &[bool],
    lower: &[f64],
    upper: &[f64],
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (index, value, frac)
    for (j, &is_int) in integrality.iter().enumerate() {
        if !is_int || upper[j] - lower[j] <= INT_TOL {
            continue;
        }
        let v = values[j];
        let frac = (v - v.round()).abs();
        if best.is_none_or(|(_, _, f)| frac > f) {
            best = Some((j, v, frac));
        }
    }
    best.map(|(j, v, _)| (j, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Runs a case against B&B over both LP engines.
    fn for_both(f: impl Fn(LpEngine)) {
        for engine in [LpEngine::Revised, LpEngine::Tableau] {
            f(engine);
        }
    }

    fn opts(engine: LpEngine) -> MilpOptions {
        MilpOptions {
            engine,
            ..Default::default()
        }
    }

    #[test]
    fn knapsack() {
        // max 8a + 11b + 6c + 4d st 5a + 7b + 4c + 3d <= 14, binary.
        // Optimum: b + c + d = 21 (weight 14).
        for_both(|engine| {
            let mut p = Problem::new(Sense::Maximize);
            let a = p.add_bin_var("a", 8.0);
            let b = p.add_bin_var("b", 11.0);
            let c = p.add_bin_var("c", 6.0);
            let d = p.add_bin_var("d", 4.0);
            p.add_constraint(vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], Cmp::Le, 14.0);
            let r = solve_milp(&p, &opts(engine));
            assert_eq!(r.status, MilpStatus::Optimal, "{engine:?}");
            assert_close(r.objective.unwrap(), 21.0);
            let v = r.values.unwrap();
            assert_close(v[0], 0.0);
            assert_close(v[1], 1.0);
        });
    }

    #[test]
    fn integer_rounding_is_not_lp_rounding() {
        // max y st 2y <= 7 -> LP gives 3.5, MILP must give 3.
        for_both(|engine| {
            let mut p = Problem::new(Sense::Maximize);
            let y = p.add_int_var("y", 0.0, 100.0, 1.0);
            p.add_constraint(vec![(y, 2.0)], Cmp::Le, 7.0);
            let r = solve_milp(&p, &opts(engine));
            assert_eq!(r.status, MilpStatus::Optimal, "{engine:?}");
            assert_close(r.objective.unwrap(), 3.0);
        });
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6 has no integer point.
        for_both(|engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_int_var("x", 0.0, 1.0, 1.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.4);
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.6);
            let r = solve_milp(&p, &opts(engine));
            assert_eq!(r.status, MilpStatus::Infeasible, "{engine:?}");
            assert!(r.values.is_none());
        });
    }

    #[test]
    fn mixed_integer_continuous() {
        // min x + y, x integer, x + 2y >= 5.5, y <= 1.5:
        // x = 3, y = 1.25 -> obj 4.25 (x = 2 forces y > 1.5, infeasible).
        for_both(|engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_int_var("x", 0.0, 100.0, 1.0);
            let y = p.add_var("y", 0.0, 1.5, 1.0);
            p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 5.5);
            let r = solve_milp(&p, &opts(engine));
            assert_eq!(r.status, MilpStatus::Optimal, "{engine:?}");
            assert_close(r.objective.unwrap(), 4.25);
        });
    }

    #[test]
    fn warm_start_is_used_and_optimality_still_proven() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_bin_var("a", 5.0);
        let b = p.add_bin_var("b", 4.0);
        p.add_constraint(vec![(a, 3.0), (b, 2.0)], Cmp::Le, 4.0);
        let opts = MilpOptions {
            warm_start: Some(vec![0.0, 1.0]), // feasible, obj 4
            ..Default::default()
        };
        let r = solve_milp(&p, &opts);
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_close(r.objective.unwrap(), 5.0); // a=1 beats the warm start
    }

    #[test]
    fn infeasible_warm_start_is_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_bin_var("a", 1.0);
        p.add_constraint(vec![(a, 1.0)], Cmp::Le, 0.0);
        let opts = MilpOptions {
            warm_start: Some(vec![1.0]), // violates the constraint
            ..Default::default()
        };
        let r = solve_milp(&p, &opts);
        assert_close(r.objective.unwrap(), 0.0);
    }

    #[test]
    fn node_limit_returns_incumbent() {
        // A problem needing some branching; with node_limit 1 we may only
        // have the root: status LimitReached but sound output.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| p.add_bin_var(format!("v{i}"), (i + 1) as f64))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        p.add_constraint(terms, Cmp::Le, 7.0);
        let opts = MilpOptions {
            node_limit: 1,
            ..Default::default()
        };
        let r = solve_milp(&p, &opts);
        assert_eq!(r.status, MilpStatus::LimitReached);
        // Dual bound must be valid: >= any feasible objective (maximize).
        assert!(r.bound >= 15.0 - 1e-6);
    }

    #[test]
    fn pure_lp_passes_through() {
        for_both(|engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", 1.0, 3.0, 2.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
            let r = solve_milp(&p, &opts(engine));
            assert_eq!(r.status, MilpStatus::Optimal, "{engine:?}");
            assert_close(r.objective.unwrap(), 4.0);
        });
    }

    #[test]
    fn equality_milp() {
        // x + y = 5, x,y integer, min 3x + y -> x = 0, y = 5, obj 5.
        for_both(|engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_int_var("x", 0.0, 10.0, 3.0);
            let y = p.add_int_var("y", 0.0, 10.0, 1.0);
            p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
            let r = solve_milp(&p, &opts(engine));
            assert_close(r.objective.unwrap(), 5.0);
            let v = r.values.unwrap();
            assert_close(v[0], 0.0);
            assert_close(v[1], 5.0);
        });
    }

    /// Regression (unsound incumbent): the relaxation optimum is integral
    /// within `INT_TOL`, but rounding it violates a tight `Eq` row by more
    /// than the feasibility tolerance. The old driver accepted the rounded
    /// point as an `Optimal` incumbent; the fixed driver must re-verify with
    /// `is_feasible`, reject it, and prove the program `Infeasible`.
    #[test]
    fn rounded_incumbent_violating_tight_eq_row_is_rejected() {
        const DELTA: f64 = 9e-7; // below INT_TOL, but 2*DELTA > INC_FEAS_TOL
        for_both(|engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_int_var("x", 0.0, 1.0, 0.0);
            let z = p.add_int_var("z", 0.0, 1.0, 0.0);
            // x + z = 1 and x - z = 1 - 2*DELTA intersect only at the
            // fractional point (1 - DELTA, DELTA): no integer point exists.
            p.add_constraint(vec![(x, 1.0), (z, 1.0)], Cmp::Eq, 1.0);
            p.add_constraint(vec![(x, 1.0), (z, -1.0)], Cmp::Eq, 1.0 - 2.0 * DELTA);
            let r = solve_milp(&p, &opts(engine));
            // The LP point (1-DELTA, DELTA) is integral within INT_TOL, and
            // its rounding (1, 0) violates row 2 by 2*DELTA > 1e-6. Any
            // returned incumbent must satisfy the problem; here none can.
            if let Some(v) = &r.values {
                assert!(
                    p.is_feasible(v, INC_FEAS_TOL),
                    "{engine:?}: returned an infeasible incumbent {v:?}"
                );
            }
            assert_ne!(
                r.status,
                MilpStatus::Optimal,
                "{engine:?}: claimed optimality of an infeasible program"
            );
        });
    }

    /// Regression (broken branching rule): the old selector required
    /// `frac > best_frac` before comparing distance to one half, so after
    /// seeing frac 0.9 the most fractional variable (frac 0.5) was never
    /// selected. Pin the pure closest-to-half rule.
    #[test]
    fn branching_picks_closest_to_half() {
        let integrality = [true, true, true];
        // Fractional parts 0.9, 0.5, 0.2 -> must pick index 1.
        let values = [3.9, 2.5, 7.2];
        let (j, v) = select_branch_var(&values, &integrality).expect("fractional");
        assert_eq!(j, 1);
        assert_close(v, 2.5);

        // Continuous variables are never selected even when fractional.
        let (j, _) = select_branch_var(&[0.5, 0.49], &[false, true]).expect("fractional");
        assert_eq!(j, 1);

        // Ties go to the lowest index.
        let (j, _) = select_branch_var(&[1.7, 2.3], &[true, true]).expect("fractional");
        assert_eq!(j, 0);

        // Integral vectors yield no branch variable.
        assert!(select_branch_var(&[1.0, 2.0 + 1e-9], &[true, true]).is_none());
    }

    /// The fallback splitter skips fixed variables and prefers the largest
    /// residual fractionality.
    #[test]
    fn fallback_branching_skips_fixed_vars() {
        let integrality = [true, true];
        let lower = [1.0, 0.0];
        let upper = [1.0, 5.0]; // variable 0 is fixed
        let picked = fallback_branch_var(&[1.0, 3.0 + 5e-7], &integrality, &lower, &upper);
        assert_eq!(picked.map(|(j, _)| j), Some(1));
        // All fixed: no split possible.
        assert!(fallback_branch_var(&[1.0, 3.0], &integrality, &[1.0, 3.0], &[1.0, 3.0]).is_none());
    }
}
