//! Model builder for linear and mixed-integer programs.

use std::fmt;

/// Handle to a decision variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Objective sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// One sparse linear constraint.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse `(variable, coefficient)` terms; duplicate variables are summed.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear (or mixed-integer) program.
///
/// Every variable has a finite lower bound (default 0) and an optional upper
/// bound; this covers all formulations in this workspace (flows, weights,
/// distances and indicator variables are all naturally bounded below).
#[derive(Clone, Debug)]
pub struct Problem {
    sense: Sense,
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    integer: Vec<bool>,
    names: Vec<String>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given objective sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            objective: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            integer: Vec::new(),
            names: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a continuous variable with bounds `[lower, upper]` (use
    /// `f64::INFINITY` for no upper bound) and the given objective
    /// coefficient.
    ///
    /// # Panics
    /// Panics when `lower` is not finite or `upper < lower`.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64, obj: f64) -> VarId {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(upper >= lower, "upper bound below lower bound");
        assert!(obj.is_finite(), "objective coefficient must be finite");
        let id = VarId(self.objective.len());
        self.objective.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        self.integer.push(false);
        self.names.push(name.into());
        id
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    pub fn add_int_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> VarId {
        let id = self.add_var(name, lower, upper, obj);
        self.integer[id.0] = true;
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_bin_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_int_var(name, 0.0, 1.0, obj)
    }

    /// Adds a constraint `Σ terms cmp rhs`. Terms with the same variable are
    /// accumulated.
    ///
    /// # Panics
    /// Panics on non-finite coefficients/rhs or out-of-range variables.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(v, a) in &terms {
            assert!(v.0 < self.objective.len(), "unknown variable {v:?}");
            assert!(a.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Objective sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients per variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Lower bounds per variable.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds per variable (`f64::INFINITY` = unbounded).
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Integrality flags per variable.
    pub fn integrality(&self) -> &[bool] {
        &self.integer
    }

    /// Variable names (debugging / model dumps).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// `true` when at least one variable is integer.
    pub fn has_integers(&self) -> bool {
        self.integer.iter().any(|&b| b)
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of a point within tolerance `tol`
    /// (bounds, constraints and integrality). Used by tests and by the
    /// branch-and-bound incumbent check.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (i, &xi) in x.iter().enumerate() {
            if xi < self.lower[i] - tol || xi > self.upper[i] + tol {
                return false;
            }
            if self.integer[i] && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let scale = 1.0_f64.max(c.rhs.abs()).max(lhs.abs());
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol * scale,
                Cmp::Ge => lhs >= c.rhs - tol * scale,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol * scale,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_small_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 4.0, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert!(!p.has_integers());
        assert_eq!(p.objective_value(&[1.0, 1.0]), 5.0);
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var("x", 0.0, 10.0, 1.0);
        p.add_constraint(vec![(x, 2.0)], Cmp::Ge, 4.0);
        assert!(p.is_feasible(&[2.0], 1e-9));
        assert!(p.is_feasible(&[3.0], 1e-9));
        assert!(!p.is_feasible(&[1.0], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[2.5], 1e-9)); // fractional
        assert!(!p.is_feasible(&[11.0], 1e-9)); // above upper bound
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_on_unknown_variable_panics() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_constraint(vec![(VarId(3), 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn free_variables_are_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("free", f64::NEG_INFINITY, f64::INFINITY, 0.0);
    }
}
