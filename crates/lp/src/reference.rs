//! Reference dense two-phase tableau simplex.
//!
//! This is the original LP engine of this crate, kept verbatim as a
//! correctness oracle for the bounded-variable revised simplex
//! ([`crate::revised`]): the differential test suite solves every instance
//! with both engines and asserts matching status and objective. Select it at
//! runtime with [`LpEngine::Tableau`](crate::simplex::LpEngine) (e.g. via
//! `MilpOptions::engine`) — it is *not* used on any hot path by default.
//!
//! The implementation follows the textbook tableau method:
//!
//! 1. Variables are shifted to have lower bound zero; finite upper bounds
//!    become explicit rows (this is the structural inefficiency the revised
//!    engine removes: one extra row per bounded variable).
//! 2. Rows are normalised to non-negative right-hand sides, slack variables
//!    are added to `≤` rows, surplus+artificial variables to `≥` rows and
//!    artificials to `=` rows.
//! 3. Phase 1 minimises the sum of artificials; a positive optimum means the
//!    program is infeasible. Artificials that remain basic at zero are pivoted
//!    out (or their rows recognised as redundant).
//! 4. Phase 2 optimises the real objective with artificial columns barred
//!    from entering.
//!
//! Pricing is Dantzig (most negative reduced cost) with an automatic switch
//! to Bland's rule after a stall, which guarantees termination.

use crate::problem::{Cmp, Problem, Sense};
use crate::simplex::{LpResult, LpStatus};
use std::time::Instant;

/// Reduced-cost optimality tolerance.
const OPT_TOL: f64 = 1e-7;
/// Pivot-element tolerance.
const PIVOT_TOL: f64 = 1e-9;

/// Solves the LP relaxation of `p` under overridden bounds with the dense
/// reference tableau.
pub(crate) fn solve(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpResult {
    Tableau::build(p, lower, upper, deadline).solve(p, lower)
}

struct Tableau {
    /// Flat row-major `rows x width` matrix with `width = cols + 1`; the
    /// last entry of each row is the rhs. Flat storage keeps pivots cache
    /// friendly on the multi-thousand-column TE MILPs.
    a: Vec<f64>,
    /// Number of constraint rows.
    rows: usize,
    /// Row stride (`cols + 1`).
    width: usize,
    /// Objective row (reduced costs) with the negated objective value in the
    /// last slot.
    cost: Vec<f64>,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    /// Which columns are artificial.
    artificial: Vec<bool>,
    /// Number of structural (shifted original) variables.
    n_struct: usize,
    cols: usize,
    iterations: usize,
    iter_limit: usize,
    deadline: Option<Instant>,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.width + j]
    }
}

impl Tableau {
    fn build(p: &Problem, lower: &[f64], upper: &[f64], deadline: Option<Instant>) -> Self {
        let n = p.num_vars();

        // Assemble rows as (dense coeffs over structural vars, cmp, rhs).
        let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
        for c in p.constraints() {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs;
            for &(v, a) in &c.terms {
                coeffs[v.0] += a;
            }
            // Shift by lower bounds: x = lb + y.
            for (j, lb) in lower.iter().enumerate() {
                rhs -= coeffs[j] * lb;
            }
            rows.push((coeffs, c.cmp, rhs));
        }
        // Finite upper bounds become y_j <= ub - lb rows.
        for j in 0..n {
            if upper[j].is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                rows.push((coeffs, Cmp::Le, upper[j] - lower[j]));
            }
        }
        // Normalise rhs >= 0.
        for (coeffs, cmp, rhs) in rows.iter_mut() {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let m = rows.len();
        // Column layout: [structural | slacks/surplus | artificials].
        let n_slack = rows
            .iter()
            .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Eq))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Le))
            .count();
        let cols = n + n_slack + n_art;

        let width = cols + 1;
        let mut a = vec![0.0; m * width];
        let mut basis = vec![usize::MAX; m];
        let mut artificial = vec![false; cols];
        let mut next_slack = n;
        let mut next_art = n + n_slack;

        for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
            let row = &mut a[i * width..(i + 1) * width];
            row[..n].copy_from_slice(coeffs);
            row[cols] = *rhs;
            match cmp {
                Cmp::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    artificial[next_art] = true;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    row[next_art] = 1.0;
                    artificial[next_art] = true;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let iter_limit = 2000 + 200 * (m + cols);
        Self {
            a,
            rows: m,
            width,
            cost: vec![0.0; width],
            basis,
            artificial,
            n_struct: n,
            cols,
            iterations: 0,
            iter_limit,
            deadline,
        }
    }

    /// Runs both phases and extracts the solution.
    fn solve(mut self, p: &Problem, lower: &[f64]) -> LpResult {
        let _span = segrout_obs::span("simplex");
        let m = self.rows;

        // ---- Phase 1: minimise the sum of artificial variables. ----
        let any_artificial = self.artificial.iter().any(|&b| b);
        if any_artificial {
            segrout_obs::event!(
                segrout_obs::Level::Trace,
                "simplex.phase1",
                rows = m,
                cols = self.cols,
            );
            self.cost.fill(0.0);
            for j in 0..self.cols {
                if self.artificial[j] {
                    self.cost[j] = 1.0;
                }
            }
            // Price out the basic artificials.
            for i in 0..m {
                if self.artificial[self.basis[i]] {
                    let row = &self.a[i * self.width..(i + 1) * self.width];
                    for (c, &x) in self.cost.iter_mut().zip(row) {
                        *c -= x;
                    }
                }
            }
            match self.pivot_loop(false) {
                PivotOutcome::IterLimit => return self.result(LpStatus::IterLimit, p, lower),
                PivotOutcome::Unbounded => {
                    // The phase-1 objective is bounded below by 0, so this
                    // only happens through floating-point degeneracy (a
                    // spurious negative reduced cost on an all-nonpositive
                    // column). Surface it as a limit rather than panicking.
                    return self.result(LpStatus::IterLimit, p, lower);
                }
                PivotOutcome::Optimal => {}
            }
            let phase1_obj = -self.cost[self.cols];
            if phase1_obj > 1e-6 {
                return self.result(LpStatus::Infeasible, p, lower);
            }
            self.purge_artificials();
        }

        // ---- Phase 2: optimise the real objective. ----
        segrout_obs::event!(
            segrout_obs::Level::Trace,
            "simplex.phase2",
            pivots_so_far = self.iterations,
        );
        self.cost.fill(0.0);
        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for j in 0..self.n_struct {
            self.cost[j] = sign * p.objective()[j];
        }
        // Price out the basic variables with nonzero costs.
        for i in 0..m {
            let b = self.basis[i];
            let cb = self.cost[b];
            if cb != 0.0 {
                let row = &self.a[i * self.width..(i + 1) * self.width];
                for (c, &x) in self.cost.iter_mut().zip(row) {
                    *c -= cb * x;
                }
            }
        }
        let status = match self.pivot_loop(true) {
            PivotOutcome::Optimal => LpStatus::Optimal,
            PivotOutcome::Unbounded => LpStatus::Unbounded,
            PivotOutcome::IterLimit => LpStatus::IterLimit,
        };
        self.result(status, p, lower)
    }

    /// Pivots until optimality/unboundedness/limit. `bar_artificials`
    /// prevents artificial columns from (re-)entering in phase 2.
    fn pivot_loop(&mut self, bar_artificials: bool) -> PivotOutcome {
        let m = self.rows;
        let mut stall = 0usize;
        let bland_after = 10 * (m + self.cols);
        loop {
            if self.iterations >= self.iter_limit {
                return PivotOutcome::IterLimit;
            }
            if self.iterations.is_multiple_of(64) {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return PivotOutcome::IterLimit;
                    }
                }
            }
            // Entering column.
            let use_bland = stall > bland_after;
            let mut enter = None;
            if use_bland {
                for j in 0..self.cols {
                    if (bar_artificials && self.artificial[j]) || self.cost[j] >= -OPT_TOL {
                        continue;
                    }
                    enter = Some(j);
                    break;
                }
            } else {
                let mut best = -OPT_TOL;
                for j in 0..self.cols {
                    if bar_artificials && self.artificial[j] {
                        continue;
                    }
                    if self.cost[j] < best {
                        best = self.cost[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(je) = enter else {
                return PivotOutcome::Optimal;
            };

            // Leaving row: minimum ratio test, Bland tie-break on basis index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let aij = self.at(i, je);
                if aij > PIVOT_TOL {
                    let ratio = self.at(i, self.cols) / aij;
                    let better = ratio < best_ratio - PIVOT_TOL
                        || (ratio < best_ratio + PIVOT_TOL
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(ir) = leave else {
                return PivotOutcome::Unbounded;
            };

            if best_ratio < PIVOT_TOL {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(ir, je);
        }
    }

    /// Gauss–Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        self.iterations += 1;
        let w = self.width;
        let piv = self.a[row * w + col];
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        for x in self.a[row * w..(row + 1) * w].iter_mut() {
            *x *= inv;
        }
        // Snap the pivot column exactly.
        self.a[row * w + col] = 1.0;
        // Eliminate the pivot column from every other row. The pivot row is
        // temporarily swapped out so the borrow checker allows slice-on-slice
        // arithmetic without copies.
        let mut pivot_row = vec![0.0; w];
        pivot_row.copy_from_slice(&self.a[row * w..(row + 1) * w]);
        for i in 0..self.rows {
            if i == row {
                continue;
            }
            let factor = self.a[i * w + col];
            if factor != 0.0 {
                let r = &mut self.a[i * w..(i + 1) * w];
                for (x, &pv) in r.iter_mut().zip(&pivot_row) {
                    *x -= factor * pv;
                }
                r[col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if factor != 0.0 {
            for (c, &pv) in self.cost.iter_mut().zip(&pivot_row) {
                *c -= factor * pv;
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots remaining basic artificials (at value zero) out
    /// of the basis where possible. Rows that are entirely zero over
    /// non-artificial columns are redundant and left alone — their basic
    /// artificial stays pinned at zero.
    fn purge_artificials(&mut self) {
        for i in 0..self.rows {
            if !self.artificial[self.basis[i]] {
                continue;
            }
            if let Some(j) =
                (0..self.cols).find(|&j| !self.artificial[j] && self.at(i, j).abs() > 1e-7)
            {
                self.pivot(i, j);
            }
        }
    }

    fn result(&self, status: LpStatus, p: &Problem, lower: &[f64]) -> LpResult {
        // One atomic add per solve, not per pivot: the hot pivot loop only
        // bumps the local `self.iterations`.
        segrout_obs::counter("simplex.pivots").add(self.iterations as u64);
        segrout_obs::counter("simplex.solves").inc();
        if status != LpStatus::Optimal {
            return LpResult {
                status,
                objective: 0.0,
                values: Vec::new(),
                iterations: self.iterations,
            };
        }
        let mut values = lower.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                values[b] = lower[b] + self.at(i, self.cols);
            }
        }
        let objective = p.objective_value(&values);
        LpResult {
            status,
            objective,
            values,
            iterations: self.iterations,
        }
    }
}

enum PivotOutcome {
    Optimal,
    Unbounded,
    IterLimit,
}
