//! Bounded-variable revised simplex with a product-form basis.
//!
//! This is the workhorse LP engine. Compared to the dense reference tableau
//! (`reference` module) it differs in three structural ways:
//!
//! 1. **Implicit bounds.** Every variable carries `[l, u]` bounds handled by
//!    nonbasic *states* (at-lower / at-upper) instead of explicit `x ≤ u`
//!    rows, so the thousands of binary indicator variables of the Joint MILP
//!    no longer double the row count. Row senses become slack bounds:
//!    `≤` rows get a slack in `[0, ∞)`, `≥` rows a slack in `(−∞, 0]` and
//!    `=` rows a fixed slack `[0, 0]`; the constraint matrix is always
//!    `[A | I]` and the all-slack basis is the identity.
//! 2. **Product-form basis.** The basis inverse is an eta file
//!    ([`crate::basis::EtaFile`]); a pivot appends one eta and the file is
//!    rebuilt (refactorized) every [`REFACTOR_INTERVAL`] pivots, which also
//!    recomputes the basic values and bounds floating-point drift.
//! 3. **Feasibility-restoring phase 1.** Instead of artificial variables,
//!    phase 1 minimizes the total bound violation of the basic variables
//!    (the classic composite / piecewise-linear phase 1). This works from
//!    *any* starting basis, which is exactly what the warm-start entry point
//!    needs: a branch-and-bound child re-solves from its parent's final
//!    basis, restores feasibility in a handful of pivots (the parent basis
//!    stays dual-consistent — only one variable bound moved), and re-enters
//!    phase 2.
//!
//! Pricing is Dantzig (most negative reduced cost) with the same automatic
//! switch to Bland's rule after a degenerate stall as the reference tableau.
//! The ratio test is a Harris-style two-pass: pass one finds the maximum
//! step against tolerance-relaxed bounds, pass two picks the
//! largest-pivot-magnitude blocker within that step, trading a bounded bound
//! violation (within the feasibility tolerance) for much better numerical
//! stability on degenerate vertices. Entering variables whose opposite bound
//! is closer than every blocking row simply *bound-flip* without any basis
//! change — on 0/1-heavy MILP relaxations most "pivots" collapse into these
//! O(m) flips.

use crate::basis::{Basis, EtaFile};
use crate::problem::{Cmp, Problem, Sense};
use crate::simplex::{LpResult, LpStatus};
use std::time::Instant;

/// Reduced-cost optimality tolerance.
const OPT_TOL: f64 = 1e-7;
/// Pivot-element tolerance (entries below this never pivot).
const PIVOT_TOL: f64 = 1e-9;
/// Per-variable bound violation below which a basic variable counts as
/// feasible.
const FEAS_TOL: f64 = 1e-7;
/// Final infeasibility verdict: when phase 1 stalls with every violation
/// below this, the point is accepted as feasible (matches the reference
/// tableau's phase-1 threshold).
const INFEAS_DECIDE_TOL: f64 = 1e-6;
/// Eta entries below this magnitude are dropped at refactorization.
const ETA_DROP_TOL: f64 = 1e-12;
/// Pivots between basis refactorizations. Each refactorization rebuilds the
/// eta file from the basic columns and recomputes the basic values from the
/// bounds, so drift can accumulate over at most this many pivots.
pub(crate) const REFACTOR_INTERVAL: usize = 64;
/// A ratio-test step below this counts as a degenerate (stalling) pivot.
const STALL_STEP: f64 = 1e-10;
/// Early-refactorization fill trigger: the basis is reinverted before the
/// pivot-count schedule whenever the eta file holds more than this many
/// entries per row, since FTRAN/BTRAN cost is proportional to the fill.
const ETA_FILL_FACTOR: usize = 48;

/// Variable state: basic, or nonbasic at one of its bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// Solves the LP relaxation of `p` with the revised simplex. `warm`
/// optionally restarts from a previous basis of the *same* problem (bounds
/// may differ). Returns the result plus the final basis when the solve ran
/// to a verdict with a factorizable basis.
pub(crate) fn solve(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
    warm: Option<&Basis>,
) -> (LpResult, Option<Basis>) {
    let _span = segrout_obs::span("simplex");
    let mut rsm = Rsm::build(p, lower, upper, deadline);
    let warmed = match warm {
        Some(basis) if rsm.apply_warm_basis(basis) => {
            segrout_obs::counter("simplex.warm_starts").inc();
            true
        }
        _ => false,
    };
    if !warmed {
        rsm.cold_basis();
    }
    let status = rsm.optimize();
    rsm.finish(p, status)
}

/// One candidate block of the ratio test.
#[derive(Clone, Copy)]
struct Blocker {
    row: usize,
    /// Exact (unrelaxed) nonnegative step at which the row blocks.
    step: f64,
    /// The basic variable leaves toward its upper bound.
    to_upper: bool,
}

/// Outcome of one pricing + ratio-test round.
enum StepOutcome {
    /// No eligible entering column: current basis is optimal for the phase.
    NoEntering,
    /// Performed a bound flip or a pivot with the given step length.
    Moved { step: f64 },
    /// Entering column is unblocked and its own range is infinite.
    Unbounded,
}

struct Rsm {
    /// Structural variable count.
    n: usize,
    /// Row count.
    m: usize,
    /// Total column count (`n + m`: structurals then one slack per row).
    nn: usize,
    /// Sparse structural columns (`(row, coeff)`, duplicates pre-summed).
    cols: Vec<Vec<(u32, f64)>>,
    /// Bounds per column (slack bounds encode the row sense).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Phase-2 cost per column, in minimize form.
    cost: Vec<f64>,
    /// Right-hand side per row.
    b: Vec<f64>,
    stat: Vec<VStat>,
    /// Basic column per row.
    basic: Vec<usize>,
    /// Value of the basic variable of each row.
    xb: Vec<f64>,
    eta: EtaFile,
    iterations: usize,
    iter_limit: usize,
    pivots_since_refactor: usize,
    refactorizations: u64,
    deadline: Option<Instant>,
    /// Scratch dense vectors (length `m`).
    alpha: Vec<f64>,
    work: Vec<f64>,
}

impl Rsm {
    fn build(p: &Problem, lower: &[f64], upper: &[f64], deadline: Option<Instant>) -> Self {
        let n = p.num_vars();
        let m = p.num_constraints();
        let nn = n + m;

        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        let mut lb = lower.to_vec();
        let mut ub = upper.to_vec();
        lb.reserve(m);
        ub.reserve(m);
        let mut acc: Vec<f64> = vec![0.0; n];
        let mut touched: Vec<usize> = Vec::new();
        for (i, c) in p.constraints().iter().enumerate() {
            for &(v, a) in &c.terms {
                if acc[v.0] == 0.0 && a != 0.0 {
                    touched.push(v.0);
                }
                acc[v.0] += a;
            }
            for &j in &touched {
                if acc[j] != 0.0 {
                    cols[j].push((i as u32, acc[j]));
                }
                acc[j] = 0.0;
            }
            touched.clear();
            b.push(c.rhs);
            // Slack bounds encode the sense: a'x + s = rhs.
            let (sl, su) = match c.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lb.push(sl);
            ub.push(su);
        }

        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![0.0; nn];
        for (j, &c) in p.objective().iter().enumerate() {
            cost[j] = sign * c;
        }

        let iter_limit = 2000 + 200 * (m + nn);
        Self {
            n,
            m,
            nn,
            cols,
            lb,
            ub,
            cost,
            b,
            stat: vec![VStat::AtLower; nn],
            basic: vec![usize::MAX; m],
            xb: vec![0.0; m],
            eta: EtaFile::default(),
            iterations: 0,
            iter_limit,
            pivots_since_refactor: 0,
            refactorizations: 0,
            deadline,
            alpha: vec![0.0; m],
            work: vec![0.0; m],
        }
    }

    /// Iterates the nonzeros of column `j` (structural or slack).
    #[inline]
    fn for_col(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n {
            for &(i, a) in &self.cols[j] {
                f(i as usize, a);
            }
        } else {
            f(j - self.n, 1.0);
        }
    }

    /// Column nonzero count (for the refactorization pivot order).
    fn col_nnz(&self, j: usize) -> usize {
        if j < self.n {
            self.cols[j].len()
        } else {
            1
        }
    }

    /// All-slack starting basis: `B = I`, structurals at their lower bound.
    fn cold_basis(&mut self) {
        for j in 0..self.n {
            self.stat[j] = VStat::AtLower;
        }
        for i in 0..self.m {
            self.basic[i] = self.n + i;
            self.stat[self.n + i] = VStat::Basic;
        }
        self.eta.clear();
        self.compute_xb();
    }

    /// Restores a snapshot from a previous solve of the same problem.
    /// Returns `false` (leaving the state unusable — caller must fall back
    /// to [`cold_basis`](Self::cold_basis)) when the snapshot does not match
    /// or its basis has become singular.
    fn apply_warm_basis(&mut self, basis: &Basis) -> bool {
        if basis.n_struct != self.n || basis.basic.len() != self.m {
            return false;
        }
        let mut seen = vec![false; self.nn];
        for &c in &basis.basic {
            let c = c as usize;
            if c >= self.nn || seen[c] {
                return false;
            }
            seen[c] = true;
        }
        for (j, &in_basis) in seen.iter().enumerate() {
            self.stat[j] = if in_basis {
                VStat::Basic
            } else if basis.at_upper[j] && self.ub[j].is_finite() {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
            // A nonbasic column needs a finite bound to sit at; `≥`-row
            // slacks have no lower bound, so park them at their upper (0).
            if self.stat[j] == VStat::AtLower && !self.lb[j].is_finite() {
                self.stat[j] = VStat::AtUpper;
            }
        }
        for (i, &c) in basis.basic.iter().enumerate() {
            self.basic[i] = c as usize;
        }
        if !self.refactor() {
            return false;
        }
        self.compute_xb();
        true
    }

    /// Rebuilds the eta file from the current basic column set (product-form
    /// reinversion), reassigning pivot rows. Returns `false` on a singular
    /// basis.
    fn refactor(&mut self) -> bool {
        self.eta.clear();
        self.refactorizations += 1;
        self.pivots_since_refactor = 0;
        let mut order: Vec<usize> = self.basic.clone();
        order.sort_by_key(|&c| (self.col_nnz(c), c));
        let mut assigned = vec![false; self.m];
        let mut new_basic = vec![usize::MAX; self.m];
        let mut w = vec![0.0; self.m];
        for &c in &order {
            w.fill(0.0);
            self.for_col(c, |i, a| w[i] = a);
            self.eta.ftran(&mut w);
            let mut r = usize::MAX;
            let mut best = 1e-10;
            for i in 0..self.m {
                if !assigned[i] && w[i].abs() > best {
                    best = w[i].abs();
                    r = i;
                }
            }
            if r == usize::MAX {
                return false; // singular
            }
            assigned[r] = true;
            new_basic[r] = c;
            // A still-unit column needs no eta.
            let is_unit = (w[r] - 1.0).abs() < 1e-12
                && w.iter()
                    .enumerate()
                    .all(|(i, &v)| i == r || v.abs() < 1e-12);
            if !is_unit {
                self.eta.push(r, &w, ETA_DROP_TOL);
            }
        }
        self.basic = new_basic;
        true
    }

    /// Value of a nonbasic column (the bound it sits at).
    #[inline]
    fn nb_value(&self, j: usize) -> f64 {
        match self.stat[j] {
            VStat::AtLower => self.lb[j],
            VStat::AtUpper => self.ub[j],
            VStat::Basic => unreachable!("nb_value on a basic column"),
        }
    }

    /// Recomputes `x_B = B⁻¹ (b − N x_N)` from scratch.
    fn compute_xb(&mut self) {
        let mut w = self.b.clone();
        for j in 0..self.nn {
            if self.stat[j] == VStat::Basic {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 {
                self.for_col(j, |i, a| w[i] -= a * v);
            }
        }
        self.eta.ftran(&mut w);
        self.xb.copy_from_slice(&w);
    }

    /// Largest bound violation among the basic variables.
    fn max_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.m {
            let c = self.basic[i];
            let v = self.xb[i];
            worst = worst.max(self.lb[c] - v).max(v - self.ub[c]);
        }
        worst
    }

    /// Runs phase 1 (feasibility restoration) then phase 2 (optimization).
    fn optimize(&mut self) -> LpStatus {
        if let Some(s) = self.pivot_loop(true) {
            return s;
        }
        if self.max_infeasibility() > INFEAS_DECIDE_TOL {
            return LpStatus::Infeasible;
        }
        self.pivot_loop(false).unwrap_or(LpStatus::Optimal)
    }

    /// Pivots until the phase is done. Returns `Some(status)` on a terminal
    /// verdict (iteration limit, unboundedness) and `None` when the phase
    /// completed normally (phase 1: as feasible as it can get; phase 2:
    /// optimal — the caller maps `None` accordingly).
    fn pivot_loop(&mut self, phase1: bool) -> Option<LpStatus> {
        let mut stall = 0usize;
        let bland_after = 10 * (self.m + self.nn);
        loop {
            if self.iterations >= self.iter_limit {
                return Some(LpStatus::IterLimit);
            }
            if self.iterations.is_multiple_of(64) {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Some(LpStatus::IterLimit);
                    }
                }
            }
            // Refactorize on the pivot-count schedule, or early when the eta
            // file has grown dense (fill makes FTRAN/BTRAN cost balloon well
            // before the drift bound kicks in).
            let eta_dense = self.eta.len() > 1 && self.eta.nnz() > ETA_FILL_FACTOR * (self.m + 1);
            if self.pivots_since_refactor >= REFACTOR_INTERVAL || eta_dense {
                if !self.refactor() {
                    return Some(LpStatus::IterLimit);
                }
                self.compute_xb();
            }
            if phase1 && self.max_infeasibility() <= FEAS_TOL {
                return None;
            }
            let use_bland = stall > bland_after;
            match self.step(phase1, use_bland) {
                // Phase done: phase 2 is optimal; phase 1 is as feasible as
                // it gets — the caller re-checks the residual infeasibility.
                StepOutcome::NoEntering => return None,
                StepOutcome::Unbounded => {
                    if phase1 {
                        // The phase-1 objective is bounded below by zero, so
                        // an "unbounded" ray is floating-point degeneracy.
                        // One refactorization retry, then give up soundly.
                        if self.pivots_since_refactor > 0 && self.refactor() {
                            self.compute_xb();
                            continue;
                        }
                        return Some(LpStatus::IterLimit);
                    }
                    return Some(LpStatus::Unbounded);
                }
                StepOutcome::Moved { step } => {
                    if step <= STALL_STEP {
                        stall += 1;
                    } else {
                        stall = 0;
                    }
                }
            }
        }
    }

    /// One pricing + ratio-test + update round.
    fn step(&mut self, phase1: bool, use_bland: bool) -> StepOutcome {
        // BTRAN the basic costs into the dual vector y.
        self.work.fill(0.0);
        let mut any_cost = false;
        for i in 0..self.m {
            let c = self.basic[i];
            let ci = if phase1 {
                // Piecewise-linear phase-1 cost of the basic variable.
                if self.xb[i] < self.lb[c] - FEAS_TOL {
                    -1.0
                } else if self.xb[i] > self.ub[c] + FEAS_TOL {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.cost[c]
            };
            if ci != 0.0 {
                self.work[i] = ci;
                any_cost = true;
            }
        }
        if any_cost {
            self.eta.btran(&mut self.work);
        }

        // Pricing: Dantzig (largest reduced-cost magnitude) or Bland (first
        // eligible index).
        let mut enter: Option<(usize, f64)> = None; // (column, reduced cost)
        let mut best_mag = OPT_TOL;
        for j in 0..self.nn {
            let st = self.stat[j];
            if st == VStat::Basic || self.lb[j] == self.ub[j] {
                continue;
            }
            let cj = if phase1 { 0.0 } else { self.cost[j] };
            let mut d = cj;
            if any_cost {
                let y = &self.work;
                let mut dot = 0.0;
                if j < self.n {
                    for &(i, a) in &self.cols[j] {
                        dot += a * y[i as usize];
                    }
                } else {
                    dot = y[j - self.n];
                }
                d -= dot;
            }
            let eligible = match st {
                VStat::AtLower => d < -OPT_TOL,
                VStat::AtUpper => d > OPT_TOL,
                VStat::Basic => false,
            };
            if !eligible {
                continue;
            }
            if use_bland {
                enter = Some((j, d));
                break;
            }
            if d.abs() > best_mag {
                best_mag = d.abs();
                enter = Some((j, d));
            }
        }
        let Some((q, _)) = enter else {
            return StepOutcome::NoEntering;
        };
        let dir = if self.stat[q] == VStat::AtLower {
            1.0
        } else {
            -1.0
        };

        // FTRAN the entering column: alpha = B⁻¹ a_q. The basic variable of
        // row i moves at rate −dir·alpha_i per unit step of x_q.
        self.alpha.fill(0.0);
        {
            let alpha = &mut self.alpha;
            if q < self.n {
                for &(i, a) in &self.cols[q] {
                    alpha[i as usize] = a;
                }
            } else {
                alpha[q - self.n] = 1.0;
            }
        }
        self.eta.ftran(&mut self.alpha);

        // Harris two-pass ratio test.
        let t_bound = self.ub[q] - self.lb[q]; // may be +inf
        let mut t_max = t_bound;
        let mut blockers: Vec<Blocker> = Vec::new();
        for i in 0..self.m {
            let a = self.alpha[i];
            if a.abs() <= PIVOT_TOL {
                continue;
            }
            let rate = -dir * a;
            let c = self.basic[i];
            let v = self.xb[i];
            let below = v < self.lb[c] - FEAS_TOL;
            let above = v > self.ub[c] + FEAS_TOL;
            // (relaxed, exact) step at which this row blocks, and the bound
            // the leaving variable lands on.
            let cand: Option<(f64, f64, bool)> = if phase1 && below {
                // Infeasible below: blocks only when moving up, at its
                // lower bound (where it becomes feasible).
                (rate > 0.0).then(|| {
                    let num = self.lb[c] - v;
                    ((num + FEAS_TOL) / rate, num / rate, false)
                })
            } else if phase1 && above {
                (rate < 0.0).then(|| {
                    let num = v - self.ub[c];
                    ((num + FEAS_TOL) / -rate, num / -rate, true)
                })
            } else if rate < 0.0 {
                self.lb[c].is_finite().then(|| {
                    let num = v - self.lb[c];
                    ((num + FEAS_TOL) / -rate, num / -rate, false)
                })
            } else {
                self.ub[c].is_finite().then(|| {
                    let num = self.ub[c] - v;
                    ((num + FEAS_TOL) / rate, num / rate, true)
                })
            };
            if let Some((relaxed, exact, to_upper)) = cand {
                t_max = t_max.min(relaxed.max(0.0));
                blockers.push(Blocker {
                    row: i,
                    step: exact.max(0.0),
                    to_upper,
                });
            }
        }

        if blockers.is_empty() && t_bound.is_infinite() {
            return StepOutcome::Unbounded;
        }
        if t_bound <= t_max {
            // Bound flip: the entering variable crosses to its other bound
            // before any basic variable blocks. No basis change.
            self.iterations += 1;
            let delta = dir * t_bound;
            for i in 0..self.m {
                self.xb[i] -= delta * self.alpha[i];
            }
            self.stat[q] = if dir > 0.0 {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
            return StepOutcome::Moved { step: t_bound };
        }

        // Leaving choice. Bland mode: strict minimum-ratio with a
        // lowest-basic-index tie-break (the anti-cycling guarantee). Harris
        // mode: among blockers within the relaxed maximum step, the largest
        // pivot magnitude wins (numerical stability on degenerate vertices).
        let chosen = if use_bland {
            blockers.iter().copied().min_by(|a, b| {
                a.step
                    .partial_cmp(&b.step)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| self.basic[a.row].cmp(&self.basic[b.row]))
            })
        } else {
            let mut best: Option<Blocker> = None;
            let mut best_piv = 0.0f64;
            for bl in &blockers {
                if bl.step <= t_max + FEAS_TOL {
                    let mag = self.alpha[bl.row].abs();
                    if best.is_none() || mag > best_piv {
                        best_piv = mag;
                        best = Some(*bl);
                    }
                }
            }
            // Numerically every minimal-ratio row is within the relaxed
            // step; fall back to the nearest blocker if tolerance juggling
            // filtered them all out.
            best.or_else(|| {
                blockers.iter().copied().min_by(|a, b| {
                    a.step
                        .partial_cmp(&b.step)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            })
        };
        let bl = chosen.expect("blockers is non-empty here");
        let t = bl.step.min(t_bound);
        self.pivot(q, dir, bl.row, t, bl.to_upper);
        StepOutcome::Moved { step: t }
    }

    /// Executes the basis change: entering `q` moves by `t` in direction
    /// `dir`, the basic variable of `row` leaves to its lower/upper bound.
    fn pivot(&mut self, q: usize, dir: f64, row: usize, t: f64, to_upper: bool) {
        self.iterations += 1;
        self.pivots_since_refactor += 1;
        let delta = dir * t;
        for i in 0..self.m {
            self.xb[i] -= delta * self.alpha[i];
        }
        let p_col = self.basic[row];
        self.stat[p_col] = if to_upper {
            VStat::AtUpper
        } else {
            VStat::AtLower
        };
        let enter_from = if dir > 0.0 { self.lb[q] } else { self.ub[q] };
        self.xb[row] = enter_from + delta;
        self.basic[row] = q;
        self.stat[q] = VStat::Basic;
        self.eta.push(row, &self.alpha, ETA_DROP_TOL);
    }

    /// Final cleanup: refactorize for crisp values, extract the solution and
    /// flush metrics.
    fn finish(mut self, p: &Problem, status: LpStatus) -> (LpResult, Option<Basis>) {
        let mut basis_ok = true;
        if status == LpStatus::Optimal && self.pivots_since_refactor > 0 {
            if self.refactor() {
                self.compute_xb();
            } else {
                basis_ok = false;
            }
        }
        segrout_obs::counter("simplex.pivots").add(self.iterations as u64);
        segrout_obs::counter("simplex.solves").inc();
        segrout_obs::counter("simplex.refactorizations").add(self.refactorizations);

        let snapshot = basis_ok.then(|| Basis {
            basic: self.basic.iter().map(|&c| c as u32).collect(),
            at_upper: self.stat.iter().map(|&s| s == VStat::AtUpper).collect(),
            n_struct: self.n,
        });
        if status != LpStatus::Optimal {
            return (
                LpResult {
                    status,
                    objective: 0.0,
                    values: Vec::new(),
                    iterations: self.iterations,
                },
                snapshot,
            );
        }
        let mut values = vec![0.0; self.n];
        for (j, v) in values.iter_mut().enumerate() {
            *v = match self.stat[j] {
                VStat::AtLower => self.lb[j],
                VStat::AtUpper => self.ub[j],
                VStat::Basic => 0.0, // filled from xb below
            };
        }
        for i in 0..self.m {
            let c = self.basic[i];
            if c < self.n {
                values[c] = self.xb[i];
            }
        }
        let objective = p.objective_value(&values);
        (
            LpResult {
                status,
                objective,
                values,
                iterations: self.iterations,
            },
            snapshot,
        )
    }
}
