//! Dense two-phase primal simplex.
//!
//! The implementation follows the textbook tableau method:
//!
//! 1. Variables are shifted to have lower bound zero; finite upper bounds
//!    become explicit rows.
//! 2. Rows are normalised to non-negative right-hand sides, slack variables
//!    are added to `≤` rows, surplus+artificial variables to `≥` rows and
//!    artificials to `=` rows.
//! 3. Phase 1 minimises the sum of artificials; a positive optimum means the
//!    program is infeasible. Artificials that remain basic at zero are pivoted
//!    out (or their rows recognised as redundant).
//! 4. Phase 2 optimises the real objective with artificial columns barred
//!    from entering.
//!
//! Pricing is Dantzig (most negative reduced cost) with an automatic switch
//! to Bland's rule after a stall, which guarantees termination.

use crate::problem::{Cmp, Problem, Sense};
use std::time::Instant;

/// Outcome of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Iteration limit reached before convergence.
    IterLimit,
}

/// Result of an LP solve: status, objective value, and a value per variable
/// of the original problem (empty unless `status == Optimal`).
#[derive(Clone, Debug)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value in the problem's own sense (meaningful only when
    /// `status == Optimal`).
    pub objective: f64,
    /// Optimal variable values, indexed like the problem's variables.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Reduced-cost optimality tolerance.
const OPT_TOL: f64 = 1e-7;
/// Pivot-element tolerance.
const PIVOT_TOL: f64 = 1e-9;
/// Feasibility tolerance on right-hand sides.
const FEAS_TOL: f64 = 1e-7;

/// Solves a linear program, ignoring any integrality flags (the LP
/// relaxation). The default iteration limit scales with problem size.
///
/// ```
/// use segrout_lp::{solve_lp, Cmp, LpStatus, Problem, Sense};
///
/// // max 3x + 2y  s.t.  x + y <= 4
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
/// let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
/// p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
/// let r = solve_lp(&p);
/// assert_eq!(r.status, LpStatus::Optimal);
/// assert!((r.objective - 12.0).abs() < 1e-6);
/// ```
pub fn solve_lp(p: &Problem) -> LpResult {
    solve_lp_with_bounds(p, p.lower_bounds(), p.upper_bounds())
}

/// Solves the LP relaxation of `p` under overridden variable bounds — the
/// entry point used by branch-and-bound nodes.
pub fn solve_lp_with_bounds(p: &Problem, lower: &[f64], upper: &[f64]) -> LpResult {
    solve_lp_with_deadline(p, lower, upper, None)
}

/// Like [`solve_lp_with_bounds`] with a wall-clock deadline: when exceeded,
/// the solve aborts with [`LpStatus::IterLimit`]. Branch-and-bound uses this
/// so a single huge relaxation cannot blow through the MILP time limit.
pub fn solve_lp_with_deadline(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpResult {
    assert_eq!(lower.len(), p.num_vars());
    assert_eq!(upper.len(), p.num_vars());
    for i in 0..p.num_vars() {
        if lower[i] > upper[i] + FEAS_TOL {
            return LpResult {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
                iterations: 0,
            };
        }
    }
    Tableau::build(p, lower, upper, deadline).solve(p, lower)
}

struct Tableau {
    /// Flat row-major `rows x width` matrix with `width = cols + 1`; the
    /// last entry of each row is the rhs. Flat storage keeps pivots cache
    /// friendly on the multi-thousand-column TE MILPs.
    a: Vec<f64>,
    /// Number of constraint rows.
    rows: usize,
    /// Row stride (`cols + 1`).
    width: usize,
    /// Objective row (reduced costs) with the negated objective value in the
    /// last slot.
    cost: Vec<f64>,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    /// Which columns are artificial.
    artificial: Vec<bool>,
    /// Number of structural (shifted original) variables.
    n_struct: usize,
    cols: usize,
    iterations: usize,
    iter_limit: usize,
    deadline: Option<Instant>,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.width + j]
    }
}

impl Tableau {
    fn build(p: &Problem, lower: &[f64], upper: &[f64], deadline: Option<Instant>) -> Self {
        let n = p.num_vars();

        // Assemble rows as (dense coeffs over structural vars, cmp, rhs).
        let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
        for c in p.constraints() {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs;
            for &(v, a) in &c.terms {
                coeffs[v.0] += a;
            }
            // Shift by lower bounds: x = lb + y.
            for (j, lb) in lower.iter().enumerate() {
                rhs -= coeffs[j] * lb;
            }
            rows.push((coeffs, c.cmp, rhs));
        }
        // Finite upper bounds become y_j <= ub - lb rows.
        for j in 0..n {
            if upper[j].is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                rows.push((coeffs, Cmp::Le, upper[j] - lower[j]));
            }
        }
        // Normalise rhs >= 0.
        for (coeffs, cmp, rhs) in rows.iter_mut() {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let m = rows.len();
        // Column layout: [structural | slacks/surplus | artificials].
        let n_slack = rows
            .iter()
            .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Eq))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Le))
            .count();
        let cols = n + n_slack + n_art;

        let width = cols + 1;
        let mut a = vec![0.0; m * width];
        let mut basis = vec![usize::MAX; m];
        let mut artificial = vec![false; cols];
        let mut next_slack = n;
        let mut next_art = n + n_slack;

        for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
            let row = &mut a[i * width..(i + 1) * width];
            row[..n].copy_from_slice(coeffs);
            row[cols] = *rhs;
            match cmp {
                Cmp::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    artificial[next_art] = true;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    row[next_art] = 1.0;
                    artificial[next_art] = true;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let iter_limit = 2000 + 200 * (m + cols);
        Self {
            a,
            rows: m,
            width,
            cost: vec![0.0; width],
            basis,
            artificial,
            n_struct: n,
            cols,
            iterations: 0,
            iter_limit,
            deadline,
        }
    }

    /// Runs both phases and extracts the solution.
    fn solve(mut self, p: &Problem, lower: &[f64]) -> LpResult {
        let _span = segrout_obs::span("simplex");
        let m = self.rows;

        // ---- Phase 1: minimise the sum of artificial variables. ----
        let any_artificial = self.artificial.iter().any(|&b| b);
        if any_artificial {
            segrout_obs::event!(
                segrout_obs::Level::Trace,
                "simplex.phase1",
                rows = m,
                cols = self.cols,
            );
            self.cost.fill(0.0);
            for j in 0..self.cols {
                if self.artificial[j] {
                    self.cost[j] = 1.0;
                }
            }
            // Price out the basic artificials.
            for i in 0..m {
                if self.artificial[self.basis[i]] {
                    let row = &self.a[i * self.width..(i + 1) * self.width];
                    for (c, &x) in self.cost.iter_mut().zip(row) {
                        *c -= x;
                    }
                }
            }
            match self.pivot_loop(false) {
                PivotOutcome::IterLimit => return self.result(LpStatus::IterLimit, p, lower),
                PivotOutcome::Unbounded => {
                    // The phase-1 objective is bounded below by 0, so this
                    // only happens through floating-point degeneracy (a
                    // spurious negative reduced cost on an all-nonpositive
                    // column). Surface it as a limit rather than panicking.
                    return self.result(LpStatus::IterLimit, p, lower);
                }
                PivotOutcome::Optimal => {}
            }
            let phase1_obj = -self.cost[self.cols];
            if phase1_obj > 1e-6 {
                return self.result(LpStatus::Infeasible, p, lower);
            }
            self.purge_artificials();
        }

        // ---- Phase 2: optimise the real objective. ----
        segrout_obs::event!(
            segrout_obs::Level::Trace,
            "simplex.phase2",
            pivots_so_far = self.iterations,
        );
        self.cost.fill(0.0);
        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for j in 0..self.n_struct {
            self.cost[j] = sign * p.objective()[j];
        }
        // Price out the basic variables with nonzero costs.
        for i in 0..m {
            let b = self.basis[i];
            let cb = self.cost[b];
            if cb != 0.0 {
                let row = &self.a[i * self.width..(i + 1) * self.width];
                for (c, &x) in self.cost.iter_mut().zip(row) {
                    *c -= cb * x;
                }
            }
        }
        let status = match self.pivot_loop(true) {
            PivotOutcome::Optimal => LpStatus::Optimal,
            PivotOutcome::Unbounded => LpStatus::Unbounded,
            PivotOutcome::IterLimit => LpStatus::IterLimit,
        };
        self.result(status, p, lower)
    }

    /// Pivots until optimality/unboundedness/limit. `bar_artificials`
    /// prevents artificial columns from (re-)entering in phase 2.
    fn pivot_loop(&mut self, bar_artificials: bool) -> PivotOutcome {
        let m = self.rows;
        let mut stall = 0usize;
        let bland_after = 10 * (m + self.cols);
        loop {
            if self.iterations >= self.iter_limit {
                return PivotOutcome::IterLimit;
            }
            if self.iterations.is_multiple_of(64) {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return PivotOutcome::IterLimit;
                    }
                }
            }
            // Entering column.
            let use_bland = stall > bland_after;
            let mut enter = None;
            if use_bland {
                for j in 0..self.cols {
                    if (bar_artificials && self.artificial[j]) || self.cost[j] >= -OPT_TOL {
                        continue;
                    }
                    enter = Some(j);
                    break;
                }
            } else {
                let mut best = -OPT_TOL;
                for j in 0..self.cols {
                    if bar_artificials && self.artificial[j] {
                        continue;
                    }
                    if self.cost[j] < best {
                        best = self.cost[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(je) = enter else {
                return PivotOutcome::Optimal;
            };

            // Leaving row: minimum ratio test, Bland tie-break on basis index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let aij = self.at(i, je);
                if aij > PIVOT_TOL {
                    let ratio = self.at(i, self.cols) / aij;
                    let better = ratio < best_ratio - PIVOT_TOL
                        || (ratio < best_ratio + PIVOT_TOL
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(ir) = leave else {
                return PivotOutcome::Unbounded;
            };

            if best_ratio < PIVOT_TOL {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(ir, je);
        }
    }

    /// Gauss–Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        self.iterations += 1;
        let w = self.width;
        let piv = self.a[row * w + col];
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        for x in self.a[row * w..(row + 1) * w].iter_mut() {
            *x *= inv;
        }
        // Snap the pivot column exactly.
        self.a[row * w + col] = 1.0;
        // Eliminate the pivot column from every other row. The pivot row is
        // temporarily swapped out so the borrow checker allows slice-on-slice
        // arithmetic without copies.
        let mut pivot_row = vec![0.0; w];
        pivot_row.copy_from_slice(&self.a[row * w..(row + 1) * w]);
        for i in 0..self.rows {
            if i == row {
                continue;
            }
            let factor = self.a[i * w + col];
            if factor != 0.0 {
                let r = &mut self.a[i * w..(i + 1) * w];
                for (x, &pv) in r.iter_mut().zip(&pivot_row) {
                    *x -= factor * pv;
                }
                r[col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if factor != 0.0 {
            for (c, &pv) in self.cost.iter_mut().zip(&pivot_row) {
                *c -= factor * pv;
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots remaining basic artificials (at value zero) out
    /// of the basis where possible. Rows that are entirely zero over
    /// non-artificial columns are redundant and left alone — their basic
    /// artificial stays pinned at zero.
    fn purge_artificials(&mut self) {
        for i in 0..self.rows {
            if !self.artificial[self.basis[i]] {
                continue;
            }
            if let Some(j) =
                (0..self.cols).find(|&j| !self.artificial[j] && self.at(i, j).abs() > 1e-7)
            {
                self.pivot(i, j);
            }
        }
    }

    fn result(&self, status: LpStatus, p: &Problem, lower: &[f64]) -> LpResult {
        // One atomic add per solve, not per pivot: the hot pivot loop only
        // bumps the local `self.iterations`.
        segrout_obs::counter("simplex.pivots").add(self.iterations as u64);
        segrout_obs::counter("simplex.solves").inc();
        if status != LpStatus::Optimal {
            return LpResult {
                status,
                objective: 0.0,
                values: Vec::new(),
                iterations: self.iterations,
            };
        }
        let mut values = lower.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                values[b] = lower[b] + self.at(i, self.cols);
            }
        }
        let objective = p.objective_value(&values);
        LpResult {
            status,
            objective,
            values,
            iterations: self.iterations,
        }
    }
}

enum PivotOutcome {
    Optimal,
    Unbounded,
    IterLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 12.0);
        assert_close(r.values[0], 4.0);
        assert_close(r.values[1], 0.0);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y st x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj 23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 2.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 3.0, f64::INFINITY, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 23.0);
        assert_close(r.values[0], 7.0);
        assert_close(r.values[1], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 4, x - y = 1 -> x = 2, y = 1, obj 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[0], 2.0);
        assert_close(r.values[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_are_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 2.5, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 3.5);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x >= -5 with x <= -2 -> x = -5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", -5.0, f64::INFINITY, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, -2.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[0], -5.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        for k in 1..8 {
            p.add_constraint(vec![(x, 1.0), (y, k as f64)], Cmp::Le, 1.0 + k as f64);
        }
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        // The k=1 row x + y <= 2 binds: optimum value 2 (e.g. at (2, 0)).
        assert_close(r.objective, 2.0);
    }

    #[test]
    fn min_mlu_toy_flow_lp() {
        // Two parallel links (cap 3 and 1), route 2 units, minimise MLU:
        // min t st f1 + f2 = 2, f1 <= 3t, f2 <= t -> t = 0.5, f1 = 1.5.
        let mut p = Problem::new(Sense::Minimize);
        let t = p.add_var("t", 0.0, f64::INFINITY, 1.0);
        let f1 = p.add_var("f1", 0.0, f64::INFINITY, 0.0);
        let f2 = p.add_var("f2", 0.0, f64::INFINITY, 0.0);
        p.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Cmp::Eq, 2.0);
        p.add_constraint(vec![(f1, 1.0), (t, -3.0)], Cmp::Le, 0.0);
        p.add_constraint(vec![(f2, 1.0), (t, -1.0)], Cmp::Le, 0.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 0.5);
    }

    #[test]
    fn bound_overrides_for_branching() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 7.3);
        // Branch x <= 7.
        let r = solve_lp_with_bounds(&p, &[0.0], &[7.0]);
        assert_close(r.objective, 7.0);
        // Branch x >= 8 is infeasible against x <= 7.3.
        let r = solve_lp_with_bounds(&p, &[8.0], &[10.0]);
        assert_eq!(r.status, LpStatus::Infeasible);
        // Contradictory bound override short-circuits.
        let r = solve_lp_with_bounds(&p, &[5.0], &[4.0]);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn zero_constraint_problem() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 1.0, 2.0, 3.0);
        let r = solve_lp(&p);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 3.0);
    }
}
