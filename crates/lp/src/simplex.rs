//! LP solve entry points and engine selection.
//!
//! Two engines solve the same [`Problem`]s:
//!
//! * [`LpEngine::Revised`] (default) — the bounded-variable revised simplex
//!   of [`crate::revised`]: implicit variable bounds, product-form basis
//!   with periodic refactorization, Harris two-pass ratio test, and a
//!   warm-start API ([`solve_lp_from_basis`]) used by branch-and-bound.
//! * [`LpEngine::Tableau`] — the original dense two-phase tableau
//!   ([`crate::reference`]), kept as a correctness oracle for differential
//!   testing and as a fallback while the revised engine matures.
//!
//! Both engines share the status/result types and the same tolerance
//! contract (statuses agree and optimal objectives match to `1e-6` across
//! the differential suite in `crates/lp/tests/differential.rs`).

use crate::basis::Basis;
use crate::problem::Problem;
use std::time::Instant;

/// Outcome of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Iteration limit reached before convergence.
    IterLimit,
}

/// Result of an LP solve: status, objective value, and a value per variable
/// of the original problem (empty unless `status == Optimal`).
#[derive(Clone, Debug)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value in the problem's own sense (meaningful only when
    /// `status == Optimal`).
    pub objective: f64,
    /// Optimal variable values, indexed like the problem's variables.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Which simplex implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// Bounded-variable revised simplex (product-form basis, warm starts).
    #[default]
    Revised,
    /// Dense two-phase reference tableau (correctness oracle).
    Tableau,
}

/// Feasibility tolerance for the contradictory-bounds pre-check.
const BOUNDS_TOL: f64 = 1e-7;

/// Solves a linear program, ignoring any integrality flags (the LP
/// relaxation). The default iteration limit scales with problem size.
///
/// ```
/// use segrout_lp::{solve_lp, Cmp, LpStatus, Problem, Sense};
///
/// // max 3x + 2y  s.t.  x + y <= 4
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
/// let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
/// p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
/// let r = solve_lp(&p);
/// assert_eq!(r.status, LpStatus::Optimal);
/// assert!((r.objective - 12.0).abs() < 1e-6);
/// ```
pub fn solve_lp(p: &Problem) -> LpResult {
    solve_lp_with_bounds(p, p.lower_bounds(), p.upper_bounds())
}

/// Solves the LP relaxation of `p` under overridden variable bounds — the
/// entry point used by branch-and-bound nodes.
pub fn solve_lp_with_bounds(p: &Problem, lower: &[f64], upper: &[f64]) -> LpResult {
    solve_lp_with_deadline(p, lower, upper, None)
}

/// Like [`solve_lp_with_bounds`] with a wall-clock deadline: when exceeded,
/// the solve aborts with [`LpStatus::IterLimit`]. Branch-and-bound uses this
/// so a single huge relaxation cannot blow through the MILP time limit.
pub fn solve_lp_with_deadline(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpResult {
    solve_lp_with_engine(p, lower, upper, deadline, LpEngine::default())
}

/// Solves with an explicit engine choice. [`LpEngine::Tableau`] runs the
/// dense reference implementation; [`LpEngine::Revised`] the
/// bounded-variable revised simplex.
pub fn solve_lp_with_engine(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
    engine: LpEngine,
) -> LpResult {
    if let Some(r) = contradictory_bounds(p, lower, upper) {
        return r;
    }
    match engine {
        LpEngine::Revised => crate::revised::solve(p, lower, upper, deadline, None).0,
        LpEngine::Tableau => crate::reference::solve(p, lower, upper, deadline),
    }
}

/// Revised-simplex solve that also returns the final [`Basis`] snapshot
/// (when one exists), for warm-starting subsequent related solves.
pub fn solve_lp_revised(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> (LpResult, Option<Basis>) {
    if let Some(r) = contradictory_bounds(p, lower, upper) {
        return (r, None);
    }
    crate::revised::solve(p, lower, upper, deadline, None)
}

/// Warm-started revised-simplex solve: restarts from `basis` (a snapshot of
/// a previous solve of the *same problem*, typically with different bounds —
/// the branch-and-bound parent/child pattern). Phase 1 restores feasibility
/// from the inherited basis in a handful of pivots instead of re-deriving
/// the whole basis from scratch. Falls back to a cold start when the
/// snapshot does not fit the problem or its basis matrix has gone singular.
pub fn solve_lp_from_basis(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
    basis: &Basis,
) -> (LpResult, Option<Basis>) {
    if let Some(r) = contradictory_bounds(p, lower, upper) {
        return (r, None);
    }
    crate::revised::solve(p, lower, upper, deadline, Some(basis))
}

/// Shared pre-check: crossing bound overrides short-circuit to `Infeasible`
/// without touching either engine.
fn contradictory_bounds(p: &Problem, lower: &[f64], upper: &[f64]) -> Option<LpResult> {
    assert_eq!(lower.len(), p.num_vars());
    assert_eq!(upper.len(), p.num_vars());
    for i in 0..p.num_vars() {
        if lower[i] > upper[i] + BOUNDS_TOL {
            return Some(LpResult {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: Vec::new(),
                iterations: 0,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, Sense};

    const ENGINES: [LpEngine; 2] = [LpEngine::Revised, LpEngine::Tableau];

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Runs a case against both engines.
    fn for_both(f: impl Fn(&dyn Fn(&Problem) -> LpResult, LpEngine)) {
        for engine in ENGINES {
            let solve = move |p: &Problem| -> LpResult {
                solve_lp_with_engine(p, p.lower_bounds(), p.upper_bounds(), None, engine)
            };
            f(&solve, engine);
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
            p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
            p.add_constraint(vec![(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.objective, 12.0);
            assert_close(r.values[0], 4.0);
            assert_close(r.values[1], 0.0);
        });
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y st x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj 23.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", 2.0, f64::INFINITY, 2.0);
            let y = p.add_var("y", 3.0, f64::INFINITY, 3.0);
            p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.objective, 23.0);
            assert_close(r.values[0], 7.0);
            assert_close(r.values[1], 3.0);
        });
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 4, x - y = 1 -> x = 2, y = 1, obj 3.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
            p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0);
            p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.values[0], 2.0);
            assert_close(r.values[1], 1.0);
        });
    }

    #[test]
    fn detects_infeasible() {
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
            assert_eq!(solve(&p).status, LpStatus::Infeasible, "{engine:?}");
        });
    }

    #[test]
    fn detects_unbounded() {
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
            p.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
            assert_eq!(solve(&p).status, LpStatus::Unbounded, "{engine:?}");
        });
    }

    #[test]
    fn upper_bounds_are_respected() {
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, 2.5, 1.0);
            let y = p.add_var("y", 0.0, 1.0, 1.0);
            p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.objective, 3.5);
        });
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x >= -5 with x <= -2 -> x = -5.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", -5.0, f64::INFINITY, 1.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, -2.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.values[0], -5.0);
        });
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
            for k in 1..8 {
                p.add_constraint(vec![(x, 1.0), (y, k as f64)], Cmp::Le, 1.0 + k as f64);
            }
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            // The k=1 row x + y <= 2 binds: optimum value 2 (e.g. at (2, 0)).
            assert_close(r.objective, 2.0);
        });
    }

    #[test]
    fn min_mlu_toy_flow_lp() {
        // Two parallel links (cap 3 and 1), route 2 units, minimise MLU:
        // min t st f1 + f2 = 2, f1 <= 3t, f2 <= t -> t = 0.5, f1 = 1.5.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Minimize);
            let t = p.add_var("t", 0.0, f64::INFINITY, 1.0);
            let f1 = p.add_var("f1", 0.0, f64::INFINITY, 0.0);
            let f2 = p.add_var("f2", 0.0, f64::INFINITY, 0.0);
            p.add_constraint(vec![(f1, 1.0), (f2, 1.0)], Cmp::Eq, 2.0);
            p.add_constraint(vec![(f1, 1.0), (t, -3.0)], Cmp::Le, 0.0);
            p.add_constraint(vec![(f2, 1.0), (t, -1.0)], Cmp::Le, 0.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.objective, 0.5);
        });
    }

    #[test]
    fn bound_overrides_for_branching() {
        for engine in ENGINES {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, 10.0, 1.0);
            p.add_constraint(vec![(x, 1.0)], Cmp::Le, 7.3);
            // Branch x <= 7.
            let r = solve_lp_with_engine(&p, &[0.0], &[7.0], None, engine);
            assert_close(r.objective, 7.0);
            // Branch x >= 8 is infeasible against x <= 7.3.
            let r = solve_lp_with_engine(&p, &[8.0], &[10.0], None, engine);
            assert_eq!(r.status, LpStatus::Infeasible, "{engine:?}");
            // Contradictory bound override short-circuits.
            let r = solve_lp_with_engine(&p, &[5.0], &[4.0], None, engine);
            assert_eq!(r.status, LpStatus::Infeasible, "{engine:?}");
        }
    }

    #[test]
    fn zero_constraint_problem() {
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Minimize);
            p.add_var("x", 1.0, 2.0, 3.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.objective, 3.0);
        });
    }

    #[test]
    fn zero_constraint_maximize_flips_to_upper() {
        // With no rows the optimum is a pure bound-flip exercise.
        for_both(|solve, engine| {
            let mut p = Problem::new(Sense::Maximize);
            p.add_var("x", 1.0, 2.0, 3.0);
            let r = solve(&p);
            assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
            assert_close(r.objective, 6.0);
        });
    }

    #[test]
    fn warm_start_resolves_after_bound_tightening() {
        // Solve, then tighten a bound and re-solve from the final basis —
        // the warm solve must agree with a cold solve of the child.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 3.0);
        let y = p.add_var("y", 0.0, 10.0, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Le, 14.0);
        p.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Le, 18.0);
        let (root, basis) = solve_lp_revised(&p, p.lower_bounds(), p.upper_bounds(), None);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.expect("optimal solve yields a basis");

        let lower = [0.0, 0.0];
        let upper = [3.0, 10.0]; // tighten x <= 3 (a branching move)
        let (warm, _) = solve_lp_from_basis(&p, &lower, &upper, None, &basis);
        let cold = solve_lp_with_bounds(&p, &lower, &upper);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_close(warm.objective, cold.objective);
        assert_close(warm.values[0], 3.0);
    }

    #[test]
    fn warm_start_with_mismatched_basis_falls_back() {
        let mut small = Problem::new(Sense::Maximize);
        small.add_var("x", 0.0, 1.0, 1.0);
        let (_, small_basis) =
            solve_lp_revised(&small, small.lower_bounds(), small.upper_bounds(), None);
        let small_basis = small_basis.expect("basis");

        let mut big = Problem::new(Sense::Maximize);
        let x = big.add_var("x", 0.0, 4.0, 3.0);
        let y = big.add_var("y", 0.0, f64::INFINITY, 2.0);
        big.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let (r, _) = solve_lp_from_basis(
            &big,
            big.lower_bounds(),
            big.upper_bounds(),
            None,
            &small_basis,
        );
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 12.0);
    }
}
