//! Differential test suite: the bounded-variable revised simplex against the
//! dense reference tableau on seeded random LPs and MILPs.
//!
//! Both engines must agree on the *status* of every instance and, when
//! optimal, on the *objective* within `1e-6` (optimal vertices may differ —
//! degenerate optima are common in random instances — so variable values are
//! deliberately not compared; instead the revised engine's point is checked
//! primal-feasible). Instances are drawn from the vendored xoshiro PRNG so
//! every run replays the identical suite.

use segrout_core::rng::StdRng;
use segrout_lp::{
    solve_lp_with_engine, solve_milp, Cmp, LpEngine, LpStatus, MilpOptions, MilpStatus, Problem,
    Sense,
};

const OBJ_TOL: f64 = 1e-6;

/// Draws a random LP: up to 8 variables with mixed finite/infinite upper
/// bounds (and some negative lower bounds), up to 10 rows of mixed sense
/// with ~40% density. Roughly a third of the instances come out infeasible
/// or unbounded, which is exactly the point.
fn random_lp(rng: &mut StdRng, integer: bool) -> Problem {
    let sense = if rng.gen_f64() < 0.5 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut p = Problem::new(sense);
    let nv = rng.gen_range(1..=8usize);
    for j in 0..nv {
        let lb = if rng.gen_f64() < 0.25 {
            -(rng.gen_range(0..=4u32) as f64)
        } else {
            0.0
        };
        let ub = match rng.gen_range(0..=4u32) {
            0 => f64::INFINITY,
            1 | 2 => lb + rng.gen_range(1..=6u32) as f64,
            _ => lb + rng.gen_range(0..=10u32) as f64 * 0.5,
        };
        let cost = rng.gen_range(0..=10u32) as f64 - 5.0;
        if integer && rng.gen_f64() < 0.6 {
            // Integer vars need finite two-sided ranges to keep B&B small.
            let ub = if ub.is_finite() { ub.round() } else { 4.0 };
            p.add_int_var(format!("x{j}"), lb, ub.max(lb), cost);
        } else {
            p.add_var(format!("x{j}"), lb, ub, cost);
        }
    }
    let rows = rng.gen_range(1..=10usize);
    for _ in 0..rows {
        let mut terms = Vec::new();
        for j in 0..nv {
            if rng.gen_f64() < 0.4 {
                let a = rng.gen_range(0..=8u32) as f64 - 4.0;
                if a != 0.0 {
                    terms.push((segrout_lp::VarId(j), a));
                }
            }
        }
        if terms.is_empty() {
            continue;
        }
        let cmp = match rng.gen_range(0..=7u32) {
            0 => Cmp::Eq, // equalities are rarer: they drive infeasibility
            1 | 2 => Cmp::Ge,
            _ => Cmp::Le,
        };
        let rhs = rng.gen_range(0..=20u32) as f64 - 5.0;
        p.add_constraint(terms, cmp, rhs);
    }
    p
}

/// One differential LP comparison; returns the joint status for tallying.
fn compare_lp(p: &Problem, seed: u64) -> LpStatus {
    let rev = solve_lp_with_engine(
        p,
        p.lower_bounds(),
        p.upper_bounds(),
        None,
        LpEngine::Revised,
    );
    let tab = solve_lp_with_engine(
        p,
        p.lower_bounds(),
        p.upper_bounds(),
        None,
        LpEngine::Tableau,
    );
    assert_eq!(
        rev.status, tab.status,
        "seed {seed}: engines disagree on status\n{p:?}"
    );
    if rev.status == LpStatus::Optimal {
        assert!(
            (rev.objective - tab.objective).abs() <= OBJ_TOL * (1.0 + tab.objective.abs()),
            "seed {seed}: objectives diverge: revised {} vs tableau {}\n{p:?}",
            rev.objective,
            tab.objective,
        );
        assert!(
            p.is_feasible(&rev.values, 1e-6),
            "seed {seed}: revised point infeasible\n{p:?}"
        );
    }
    rev.status
}

#[test]
fn random_lps_agree_across_engines() {
    let mut optimal = 0usize;
    let mut infeasible = 0usize;
    let mut unbounded = 0usize;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + seed);
        let p = random_lp(&mut rng, false);
        match compare_lp(&p, seed) {
            LpStatus::Optimal => optimal += 1,
            LpStatus::Infeasible => infeasible += 1,
            LpStatus::Unbounded => unbounded += 1,
            LpStatus::IterLimit => panic!("seed {seed}: iteration limit on a tiny LP"),
        }
    }
    // The generator must actually exercise all three verdicts.
    eprintln!("LP tallies: {optimal} optimal / {infeasible} infeasible / {unbounded} unbounded");
    assert!(optimal >= 60, "only {optimal} optimal instances");
    assert!(infeasible >= 10, "only {infeasible} infeasible instances");
    assert!(unbounded >= 10, "only {unbounded} unbounded instances");
}

#[test]
fn random_milps_agree_across_engines() {
    let mut optimal = 0usize;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0x314C_5000 + seed);
        let p = random_lp(&mut rng, true);
        let opts = |engine| MilpOptions {
            engine,
            node_limit: 50_000,
            ..Default::default()
        };
        let rev = solve_milp(&p, &opts(LpEngine::Revised));
        let tab = solve_milp(&p, &opts(LpEngine::Tableau));
        assert_eq!(
            rev.status, tab.status,
            "seed {seed}: MILP engines disagree on status\n{p:?}"
        );
        if rev.status == MilpStatus::Optimal {
            optimal += 1;
            let (ro, to) = (rev.objective.unwrap(), tab.objective.unwrap());
            assert!(
                (ro - to).abs() <= OBJ_TOL * (1.0 + to.abs()),
                "seed {seed}: MILP objectives diverge: revised {ro} vs tableau {to}\n{p:?}"
            );
            let v = rev.values.as_ref().unwrap();
            assert!(
                p.is_feasible(v, 1e-6),
                "seed {seed}: revised MILP incumbent infeasible\n{p:?}"
            );
        }
    }
    assert!(optimal >= 15, "only {optimal} optimal MILP instances");
}

/// Beale's classic cycling example: with plain Dantzig pricing and a naive
/// ratio test the simplex cycles forever at the degenerate origin vertex.
/// Both engines must terminate (via the Bland switch) at the optimum 0.05.
#[test]
fn beale_cycling_example_terminates() {
    for engine in [LpEngine::Revised, LpEngine::Tableau] {
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, 6.0);
        p.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(vec![(x3, 1.0)], Cmp::Le, 1.0);
        let r = solve_lp_with_engine(&p, p.lower_bounds(), p.upper_bounds(), None, engine);
        assert_eq!(r.status, LpStatus::Optimal, "{engine:?}");
        assert!(
            (r.objective - (-0.05)).abs() < 1e-6,
            "{engine:?}: objective {}",
            r.objective
        );
    }
}

/// Warm starting must not change the verdict: re-solving a perturbed
/// problem from the parent's basis agrees with a cold solve.
#[test]
fn warm_starts_agree_with_cold_solves() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xAB1E_0000 + seed);
        let p = random_lp(&mut rng, false);
        let (root, basis) =
            segrout_lp::solve_lp_revised(&p, p.lower_bounds(), p.upper_bounds(), None);
        let (Some(basis), LpStatus::Optimal) = (basis, root.status) else {
            continue;
        };
        // Tighten the bound of one variable, as a branching step would.
        let j = rng.gen_range(0..p.num_vars());
        let mut lower = p.lower_bounds().to_vec();
        let mut upper = p.upper_bounds().to_vec();
        let v = root.values[j];
        if rng.gen_f64() < 0.5 {
            upper[j] = v.floor().max(lower[j]);
        } else {
            lower[j] = if upper[j].is_finite() {
                v.ceil().min(upper[j])
            } else {
                v.ceil()
            };
        }
        let (warm, _) = segrout_lp::solve_lp_from_basis(&p, &lower, &upper, None, &basis);
        let cold = solve_lp_with_engine(&p, &lower, &upper, None, LpEngine::Tableau);
        assert_eq!(
            warm.status, cold.status,
            "seed {seed}: warm vs cold status\n{p:?}"
        );
        if warm.status == LpStatus::Optimal {
            assert!(
                (warm.objective - cold.objective).abs() <= OBJ_TOL * (1.0 + cold.objective.abs()),
                "seed {seed}: warm {} vs cold {}\n{p:?}",
                warm.objective,
                cold.objective,
            );
        }
    }
}
