//! The Joint (and LWO) mixed-integer formulation: integer link weights,
//! shortest-path indicator variables with big-M coupling, exact ECMP
//! even-splitting, and binary waypoint selection (paper §1.2 / artifact
//! \[18\]).
//!
//! # Model
//!
//! For every *commodity destination* `t` (demand targets plus waypoint
//! candidates) and every edge `e = (u, v)`:
//!
//! ```text
//! (a)  d_u^t ≤ w_e + d_v^t                       (distance optimality)
//! (b)  d_u^t ≥ w_e + d_v^t − M_d (1 − x_e^t)     (x = 1 ⇒ tight)
//! (c)  w_e + d_v^t − d_u^t ≥ 1 − M_d x_e^t       (x = 0 ⇒ slack ≥ 1)
//! (f1) f_e^{t,k} ≤ M_f^k x_e^t
//! (f2) f_e^{t,k} ≤ m_u^{t,k}
//! (f3) f_e^{t,k} ≥ m_u^{t,k} − M_f^k (1 − x_e^t)  (even split: share m_u)
//! ```
//!
//! plus flow conservation with waypoint-dependent injections, one-of-`k`
//! waypoint selection per demand, and `Σ_t f_e^{t,k} ≤ θ c_e`.
//!
//! # Robust multi-matrix extension
//!
//! [`joint_milp_robust`] solves the same model against a [`DemandSet`] of
//! `K` aligned traffic matrices. The weight-dependent variables (`w`,
//! distance labels `d`, tight-edge indicators `x`) and the waypoint
//! selectors `y` are **shared** — one configuration serves every matrix —
//! while each matrix `k` gets its own flow/share block `(f^k, m^k)`,
//! conservation rows, and capacity rows `Σ_t f_e^{t,k} ≤ θ c_e`. The
//! single `θ` bounded by every matrix's capacity rows is the FIGRET/TROD
//! *max-envelope* trick: minimizing `θ` minimizes the worst-case MLU over
//! the set. `K = 1` degenerates to exactly the classic model (same
//! variables, same constraints, in the same order), so [`joint_milp`]
//! delegates here bit-identically.
//!
//! # Exactness
//!
//! With integer weights, (a)–(c) make `x` *exactly* the tight-edge set of the
//! distance labels, and an induction along flow-carrying nodes shows the
//! labels equal true shortest distances wherever flow exists: a flow path
//! has cost `d_s` by telescoping, every path costs at least the true
//! distance, and (a) bounds `d_s` by it — so they coincide, and (c) then
//! forces *every* truly tight edge at a flow-carrying node active, i.e. the
//! even split is over the full ECMP next-hop set. The model is therefore an
//! exact encoding of the paper's Joint problem (for `W ≤ 1` waypoints).
//!
//! Like the paper's Gurobi runs, exact solves are practical only on small
//! instances; on Abilene-scale inputs use the node/time limits plus the
//! JOINT-Heur warm start and report the incumbent.

use segrout_core::{
    DemandList, DemandSet, Network, NodeId, RobustObjective, Router, TeError, WaypointSetting,
    WeightSetting,
};
use segrout_lp::{solve_milp, Cmp, MilpOptions, MilpStatus, Problem, Sense, VarId};
use std::collections::HashMap;

/// Options for the Joint MILP.
#[derive(Clone, Debug)]
pub struct JointMilpOptions {
    /// Largest integer weight.
    pub max_weight: u32,
    /// Waypoint budget per demand: 0 (pure LWO) or 1.
    pub waypoints: usize,
    /// Candidate waypoint nodes (defaults to all nodes).
    pub candidates: Option<Vec<NodeId>>,
    /// Branch-and-bound limits.
    pub milp: MilpOptions,
    /// Optional warm start: a joint setting to seed the incumbent.
    pub warm_start: Option<(WeightSetting, WaypointSetting)>,
}

impl Default for JointMilpOptions {
    fn default() -> Self {
        Self {
            max_weight: 8,
            waypoints: 1,
            candidates: None,
            milp: MilpOptions::default(),
            warm_start: None,
        }
    }
}

/// Result of the Joint MILP.
#[derive(Clone, Debug)]
pub struct JointMilpOutcome {
    /// The selected integer weight setting.
    pub weights: WeightSetting,
    /// The selected waypoints.
    pub waypoints: WaypointSetting,
    /// MLU of the configuration, re-evaluated with the ECMP engine (ground
    /// truth, independent of the MILP's internal θ). For robust solves this
    /// is the worst-case MLU over the set's matrices.
    pub mlu: f64,
    /// Per-matrix MLU of the configuration, in set order (a one-element
    /// vector for the single-matrix entry points).
    pub matrix_mlus: Vec<f64>,
    /// Solver status.
    pub status: MilpStatus,
    /// Dual bound on the optimal Joint MLU (worst-case over matrices for
    /// robust solves).
    pub bound: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Per-destination variable block. The weight-dependent variables (`dist`,
/// `x`) are shared by every matrix; flows and shares are per matrix
/// (`f[k][e]`, `share[k][v]`).
struct DestBlock {
    /// `d_v` distance vars (`None` at the destination itself: fixed 0).
    dist: Vec<Option<VarId>>,
    /// `x_e` indicator vars.
    x: Vec<VarId>,
    /// Per-matrix `f_e` flow vars.
    f: Vec<Vec<VarId>>,
    /// Per-matrix `m_v` share vars.
    share: Vec<Vec<Option<VarId>>>,
}

/// Solves the Joint problem (weights + up to one waypoint per demand).
///
/// # Errors
/// Returns [`TeError::Unroutable`] when the model is proven infeasible
/// (some demand pair is disconnected) and [`TeError::SolverLimit`] when the
/// search hit its node/time limit without finding any incumbent.
pub fn joint_milp(
    net: &Network,
    demands: &DemandList,
    options: &JointMilpOptions,
) -> Result<JointMilpOutcome, TeError> {
    joint_milp_robust(
        net,
        &DemandSet::single(demands.clone()),
        RobustObjective::WorstCase,
        options,
    )
}

/// Solves the robust Joint problem over an aligned set of traffic matrices:
/// one weight/waypoint configuration whose **worst-case** MLU over the set
/// is minimized, via per-matrix flow blocks under a shared max-envelope θ.
/// A single-matrix set is bit-identical to [`joint_milp`].
///
/// Only the worst-case objective has an exact MILP encoding (`θ` bounds
/// every matrix); use the robust heuristics for general quantiles.
///
/// # Errors
/// Returns [`TeError::Unroutable`] when the model is proven infeasible,
/// [`TeError::SolverLimit`] on a limit abort without incumbent, and
/// [`TeError::InvalidWaypoints`] for misaligned sets.
///
/// # Panics
/// Panics on an empty set, a non-worst-case objective (`Quantile(q)` with
/// `q < 1`), `waypoints > 1`, or `max_weight < 1`.
pub fn joint_milp_robust(
    net: &Network,
    set: &DemandSet,
    robust: RobustObjective,
    options: &JointMilpOptions,
) -> Result<JointMilpOutcome, TeError> {
    assert!(options.waypoints <= 1, "only W <= 1 is modelled");
    assert!(options.max_weight >= 1);
    assert!(!set.is_empty(), "demand set must hold at least one matrix");
    assert!(
        robust.is_worst_case(),
        "the MILP encodes only the worst-case objective (θ bounds every \
         matrix); quantile objectives need the robust heuristics"
    );
    set.require_aligned()?;
    let nmat = set.len();
    let pairs = set.pairs();
    let g = net.graph();
    let n = g.node_count();
    let w_max = options.max_weight as f64;
    let m_dist = (n as f64) * w_max + w_max; // big-M for distances
                                             // Big-M for flows, per matrix (a matrix's flow never exceeds its own
                                             // total demand).
    let m_flow: Vec<f64> = set.matrices().map(DemandList::total_size).collect();

    let all_nodes: Vec<NodeId> = g.nodes().collect();
    let candidates: Vec<NodeId> = if options.waypoints == 0 {
        Vec::new()
    } else {
        options
            .candidates
            .clone()
            .unwrap_or_else(|| all_nodes.clone())
    };

    // Commodity destinations: demand targets plus waypoint candidates.
    let mut dests: Vec<NodeId> = Vec::new();
    for &(_, dst) in &pairs {
        if !dests.contains(&dst) {
            dests.push(dst);
        }
    }
    for &w in &candidates {
        if !dests.contains(&w) {
            dests.push(w);
        }
    }

    let mut p = Problem::new(Sense::Minimize);
    let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
    let wvar: Vec<VarId> = g
        .edge_ids()
        .map(|e| p.add_int_var(format!("w[{e}]"), 1.0, w_max, 0.0))
        .collect();

    // Destination blocks.
    let mut blocks: HashMap<NodeId, DestBlock> = HashMap::new();
    for &t in &dests {
        let dist: Vec<Option<VarId>> = all_nodes
            .iter()
            .map(|&v| {
                (v != t).then(|| p.add_var(format!("d[{t}][{v}]"), 0.0, (n as f64) * w_max, 0.0))
            })
            .collect();
        let x: Vec<VarId> = g
            .edge_ids()
            .map(|e| p.add_bin_var(format!("x[{t}][{e}]"), 0.0))
            .collect();
        let f: Vec<Vec<VarId>> = (0..nmat)
            .map(|k| {
                g.edge_ids()
                    .map(|e| p.add_var(format!("f[{t}][{k}][{e}]"), 0.0, f64::INFINITY, 0.0))
                    .collect()
            })
            .collect();
        let share: Vec<Vec<Option<VarId>>> = (0..nmat)
            .map(|k| {
                all_nodes
                    .iter()
                    .map(|&v| {
                        (v != t).then(|| {
                            p.add_var(format!("m[{t}][{k}][{v}]"), 0.0, f64::INFINITY, 0.0)
                        })
                    })
                    .collect()
            })
            .collect();

        for (e, u, v) in g.edges() {
            let ei = e.index();
            let du = dist[u.index()];
            let dv = dist[v.index()];
            // terms for d_u - d_v - w_e (handling the fixed-0 destination).
            let mut base: Vec<(VarId, f64)> = vec![(wvar[ei], -1.0)];
            if let Some(du) = du {
                base.push((du, 1.0));
            }
            if let Some(dv) = dv {
                base.push((dv, -1.0));
            }
            // (a) d_u - d_v - w_e <= 0
            p.add_constraint(base.clone(), Cmp::Le, 0.0);
            // (b) d_u - d_v - w_e >= -M_d (1 - x) <=> base + (-M_d) x >= -M_d
            let mut b = base.clone();
            b.push((x[ei], -m_dist));
            p.add_constraint(b, Cmp::Ge, -m_dist);
            // (c) w_e + d_v - d_u >= 1 - M_d x <=> -base + M_d x >= 1
            let mut c: Vec<(VarId, f64)> = base.iter().map(|&(v, a)| (v, -a)).collect();
            c.push((x[ei], m_dist));
            p.add_constraint(c, Cmp::Ge, 1.0);
            // Per-matrix flow coupling against the shared indicator.
            for k in 0..nmat {
                // (f1) f <= M_f x
                p.add_constraint(vec![(f[k][ei], 1.0), (x[ei], -m_flow[k])], Cmp::Le, 0.0);
                // (f2) f <= m_u ; (f3) f >= m_u - M_f (1 - x)
                if let Some(mu) = share[k][u.index()] {
                    p.add_constraint(vec![(f[k][ei], 1.0), (mu, -1.0)], Cmp::Le, 0.0);
                    p.add_constraint(
                        vec![(f[k][ei], 1.0), (mu, -1.0), (x[ei], -m_flow[k])],
                        Cmp::Ge,
                        -m_flow[k],
                    );
                }
            }
        }

        blocks.insert(t, DestBlock { dist, x, f, share });
    }

    // Waypoint selection variables, shared by every matrix (the set is
    // aligned, so demand index i is the same pair everywhere).
    // y[i][0] = direct; y[i][k] = candidate k.
    let mut yvars: Vec<Vec<(Option<NodeId>, VarId)>> = Vec::new();
    for (i, &(src, dst)) in pairs.iter().enumerate() {
        let mut row: Vec<(Option<NodeId>, VarId)> =
            vec![(None, p.add_bin_var(format!("y[{i}][direct]"), 0.0))];
        for &w in &candidates {
            if w != src && w != dst {
                row.push((Some(w), p.add_bin_var(format!("y[{i}][{w}]"), 0.0)));
            }
        }
        p.add_constraint(row.iter().map(|&(_, y)| (y, 1.0)).collect(), Cmp::Eq, 1.0);
        yvars.push(row);
    }

    // Conservation with waypoint-dependent injections, per matrix:
    // out - in - Σ_i d_i^k (injection coefficient of y) = 0.
    for &t in &dests {
        let block = &blocks[&t];
        for (k, demands) in set.matrices().enumerate() {
            for &v in &all_nodes {
                if v == t {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &e in g.out_edges(v) {
                    terms.push((block.f[k][e.index()], 1.0));
                }
                for &e in g.in_edges(v) {
                    terms.push((block.f[k][e.index()], -1.0));
                }
                // Injection of each demand option into commodity t at node v.
                for (i, d) in demands.iter().enumerate() {
                    for &(wp, y) in &yvars[i] {
                        let mut coeff = 0.0;
                        match wp {
                            None => {
                                // direct: d units from s_i toward t_i
                                if t == d.dst && v == d.src {
                                    coeff += d.size;
                                }
                            }
                            Some(w) => {
                                // segment 1: s_i -> w; segment 2: w -> t_i
                                if t == w && v == d.src {
                                    coeff += d.size;
                                }
                                if t == d.dst && v == w {
                                    coeff += d.size;
                                }
                            }
                        }
                        if coeff != 0.0 {
                            terms.push((y, -coeff));
                        }
                    }
                }
                p.add_constraint(terms, Cmp::Eq, 0.0);
            }
        }
    }

    // Capacity rows: the max-envelope θ bounds every matrix's load on every
    // edge, so minimizing θ minimizes the worst-case MLU over the set.
    for e in g.edge_ids() {
        for k in 0..nmat {
            let mut terms: Vec<(VarId, f64)> = dests
                .iter()
                .map(|t| (blocks[t].f[k][e.index()], 1.0))
                .collect();
            terms.push((theta, -net.capacity(e)));
            p.add_constraint(terms, Cmp::Le, 0.0);
        }
    }

    // Warm start.
    let warm = options.warm_start.as_ref().and_then(|(w, wp)| {
        build_warm_start(
            &p,
            net,
            set,
            &dests,
            &blocks,
            &yvars,
            theta,
            &wvar,
            w,
            wp,
            options.max_weight,
        )
    });
    let milp_opts = MilpOptions {
        warm_start: warm,
        ..options.milp.clone()
    };

    let result = solve_milp(&p, &milp_opts);
    let Some(values) = result.values else {
        // No incumbent: only a proven-infeasible model means a disconnected
        // pair; a limit abort without an incumbent is a solver failure.
        return Err(match result.status {
            MilpStatus::Infeasible => {
                let (src, dst) = pairs.first().copied().unwrap_or((NodeId(0), NodeId(0)));
                TeError::Unroutable { src, dst }
            }
            MilpStatus::LimitReached => TeError::SolverLimit {
                what: "Joint MILP",
                status: "node/time limit without incumbent",
            },
            _ => TeError::SolverLimit {
                what: "Joint MILP",
                status: "no incumbent",
            },
        });
    };

    // Decode.
    let weights = WeightSetting::new(
        net,
        wvar.iter().map(|v| values[v.0].round().max(1.0)).collect(),
    )
    .expect("decoded weights are in range");
    let mut waypoints = WaypointSetting::none(pairs.len());
    for (i, row) in yvars.iter().enumerate() {
        for &(wp, y) in row {
            if values[y.0] > 0.5 {
                if let Some(w) = wp {
                    waypoints.set(i, vec![w]);
                }
            }
        }
    }
    // Ground truth: re-evaluate the decoded configuration per matrix with
    // the independent ECMP engine; the reported MLU is the worst case.
    let router = Router::new(net, &weights);
    let mut matrix_mlus = Vec::with_capacity(nmat);
    for demands in set.matrices() {
        matrix_mlus.push(router.evaluate(demands, &waypoints)?.mlu);
    }
    let mlu = RobustObjective::WorstCase.aggregate(&matrix_mlus);
    Ok(JointMilpOutcome {
        weights,
        waypoints,
        mlu,
        matrix_mlus,
        status: result.status,
        bound: result.bound,
        nodes: result.nodes,
    })
}

/// Solves pure LWO as the `W = 0` restriction of the Joint MILP (paper
/// §7.1: "for LWO, we simply set W = 0").
pub fn lwo_ilp(
    net: &Network,
    demands: &DemandList,
    options: &JointMilpOptions,
) -> Result<JointMilpOutcome, TeError> {
    lwo_ilp_robust(
        net,
        &DemandSet::single(demands.clone()),
        RobustObjective::WorstCase,
        options,
    )
}

/// Solves robust LWO as the `W = 0` restriction of [`joint_milp_robust`].
///
/// # Errors
/// As [`joint_milp_robust`].
pub fn lwo_ilp_robust(
    net: &Network,
    set: &DemandSet,
    robust: RobustObjective,
    options: &JointMilpOptions,
) -> Result<JointMilpOutcome, TeError> {
    let opts = JointMilpOptions {
        waypoints: 0,
        warm_start: options
            .warm_start
            .clone()
            .map(|(w, _)| (w, WaypointSetting::none(set.pair_count()))),
        ..options.clone()
    };
    joint_milp_robust(net, set, robust, &opts)
}

/// Builds a full variable assignment for a known joint configuration; returns
/// `None` when the configuration does not route (disconnected segment).
#[allow(clippy::too_many_arguments)]
fn build_warm_start(
    p: &Problem,
    net: &Network,
    set: &DemandSet,
    dests: &[NodeId],
    blocks: &HashMap<NodeId, DestBlock>,
    yvars: &[Vec<(Option<NodeId>, VarId)>],
    theta: VarId,
    wvar: &[VarId],
    weights: &WeightSetting,
    waypoints: &WaypointSetting,
    max_weight: u32,
) -> Option<Vec<f64>> {
    // Weights must be integral and within range for the warm start to be
    // feasible; clamp-round defensively.
    let int_weights: Vec<f64> = weights
        .as_slice()
        .iter()
        .map(|&w| w.round().clamp(1.0, max_weight as f64))
        .collect();
    let ws = WeightSetting::new(net, int_weights.clone()).ok()?;
    if ws.as_slice() != weights.as_slice() {
        // Rounding changed the setting; the waypoint choice may no longer be
        // meaningful but the configuration is still feasible, so proceed.
    }
    let g = net.graph();
    let n = g.node_count();
    let router = Router::new(net, &ws);
    // θ must cover every matrix: the warm incumbent's objective is the
    // worst-case MLU of the configuration.
    let mut worst_mlu = 0.0f64;
    for demands in set.matrices() {
        worst_mlu = worst_mlu.max(router.evaluate(demands, waypoints).ok()?.mlu);
    }

    let mut vals = vec![0.0; p.num_vars()];
    vals[theta.0] = worst_mlu.max(0.0) + 1e-9;
    for (e, v) in wvar.iter().enumerate() {
        vals[v.0] = int_weights[e];
    }
    // y values (shared across matrices; the set is aligned).
    for (i, &(_, _)) in set.pairs().iter().enumerate() {
        let wp = waypoints.get(i).first().copied();
        for &(cand, y) in &yvars[i] {
            if cand == wp {
                vals[y.0] = 1.0;
            }
        }
    }
    // Per-matrix, per-destination segment injections.
    let inj_per_matrix: Vec<HashMap<NodeId, Vec<(NodeId, f64)>>> = set
        .matrices()
        .map(|demands| {
            let mut inj: HashMap<NodeId, Vec<(NodeId, f64)>> = HashMap::new();
            for (i, d) in demands.iter().enumerate() {
                for (s, t, amount) in waypoints.segments_of(i, d) {
                    inj.entry(t).or_default().push((s, amount));
                }
            }
            inj
        })
        .collect();
    let dmax = (n as f64) * (max_weight as f64);
    for &t in dests {
        let block = &blocks[&t];
        let dag = router.dag(t);
        // Distances (unreachable nodes pinned at the upper bound).
        for v in g.nodes() {
            if let Some(dv) = block.dist[v.index()] {
                let dist = dag.dist[v.index()];
                vals[dv.0] = if dist.is_finite() { dist } else { dmax };
            }
        }
        // Indicators.
        for e in g.edge_ids() {
            vals[block.x[e.index()].0] = if dag.edge_on_dag[e.index()] { 1.0 } else { 0.0 };
        }
        // Flows + shares, per matrix: propagate this destination's
        // injections.
        for (k, inj) in inj_per_matrix.iter().enumerate() {
            if let Some(sources) = inj.get(&t) {
                let mut node_flow = vec![0.0; n];
                for &(s, amount) in sources {
                    if !dag.reaches_target(s) {
                        return None;
                    }
                    node_flow[s.index()] += amount;
                }
                for &v in &dag.order {
                    let fl = node_flow[v.index()];
                    if v == t || fl <= 0.0 {
                        continue;
                    }
                    let outs = dag.dag_out(v);
                    let share = fl / outs.len() as f64;
                    if let Some(mv) = block.share[k][v.index()] {
                        vals[mv.0] = share;
                    }
                    for &e in outs {
                        vals[block.f[k][e.index()].0] += share;
                        node_flow[g.dst(e).index()] += share;
                    }
                }
            }
        }
    }
    Some(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// TE-Instance 1 with m = 3 (4 nodes): Joint achieves MLU 1 with one
    /// waypoint per demand; LWO is stuck at (n-1)/2 = 1.5.
    fn instance1_m3() -> (Network, DemandList) {
        let m = 3u32;
        let mut b = Network::builder(m as usize + 1);
        for i in 0..m - 1 {
            b.link(NodeId(i), NodeId(i + 1), m as f64);
        }
        for i in 0..m {
            b.link(NodeId(i), NodeId(m), 1.0);
        }
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..m {
            d.push(NodeId(0), NodeId(m), 1.0);
        }
        (net, d)
    }

    fn fast_opts() -> JointMilpOptions {
        JointMilpOptions {
            max_weight: 4,
            milp: segrout_lp::MilpOptions {
                node_limit: 20_000,
                time_limit: Duration::from_secs(120),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn joint_reaches_opt_on_instance1() {
        let (net, d) = instance1_m3();
        let r = joint_milp(&net, &d, &fast_opts()).unwrap();
        assert!(
            r.mlu <= 1.0 + 1e-6,
            "Joint MILP should reach MLU 1 (Lemma 3.5), got {} (status {:?})",
            r.mlu,
            r.status
        );
    }

    #[test]
    fn lwo_ilp_hits_the_gap() {
        let (net, d) = instance1_m3();
        let r = lwo_ilp(&net, &d, &fast_opts()).unwrap();
        // Lemma 3.6: best even-split flow is 2, so LWO >= m/2 = 1.5.
        assert!(
            r.mlu >= 1.5 - 1e-6,
            "LWO cannot beat (n-1)/2 on Instance 1, got {}",
            r.mlu
        );
        // And 1.5 is achievable (split at s over (s,t) and (s,v2,t)).
        if r.status == MilpStatus::Optimal {
            assert!(r.mlu <= 1.5 + 1e-6, "optimal LWO is 1.5, got {}", r.mlu);
        }
    }

    #[test]
    fn warm_start_is_accepted() {
        let (net, d) = instance1_m3();
        let weights = WeightSetting::unit(&net);
        let wp = WaypointSetting::none(d.len());
        let opts = JointMilpOptions {
            warm_start: Some((weights, wp)),
            milp: segrout_lp::MilpOptions {
                node_limit: 0, // no exploration: incumbent must come from warm start
                time_limit: Duration::from_secs(5),
                ..Default::default()
            },
            ..fast_opts()
        };
        let r = joint_milp(&net, &d, &opts).unwrap();
        // With zero nodes the outcome is exactly the warm configuration.
        assert!(r.mlu.is_finite());
    }

    #[test]
    fn tiny_diamond_joint_equals_lwo_when_no_waypoint_needed() {
        // Symmetric diamond: LWO alone reaches OPT; Joint cannot be worse.
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 2.0);
        let joint = joint_milp(&net, &d, &fast_opts()).unwrap();
        let lwo = lwo_ilp(&net, &d, &fast_opts()).unwrap();
        assert!(joint.mlu <= lwo.mlu + 1e-6);
        assert!((joint.mlu - 1.0).abs() < 1e-6, "even split is optimal");
    }

    #[test]
    fn eq_2_1_opt_le_joint_le_min() {
        // Verify OPT <= Joint <= min(LWO, WPO) on the tiny instance.
        let (net, d) = instance1_m3();
        let opt = crate::opt_lp::opt_mlu_lp(&net, &d).unwrap().objective;
        let joint = joint_milp(&net, &d, &fast_opts()).unwrap();
        let lwo = lwo_ilp(&net, &d, &fast_opts()).unwrap();
        assert!(opt <= joint.mlu + 1e-6);
        assert!(joint.mlu <= lwo.mlu + 1e-6);
    }
    #[test]
    fn milp_theta_matches_reevaluated_mlu() {
        // The strongest internal-consistency check of the formulation: when
        // the MILP proves optimality, its objective (the dual bound) must
        // coincide with the MLU obtained by re-routing the decoded weights
        // and waypoints through the independent ECMP engine. Any gap would
        // mean the big-M ECMP coupling admits flows the real protocol does
        // not (or vice versa).
        let (net, d) = instance1_m3();
        let r = joint_milp(&net, &d, &fast_opts()).unwrap();
        if r.status == MilpStatus::Optimal {
            assert!(
                (r.bound - r.mlu).abs() < 1e-5,
                "MILP theta {} vs ECMP re-evaluation {}",
                r.bound,
                r.mlu
            );
        }
        let r = lwo_ilp(&net, &d, &fast_opts()).unwrap();
        if r.status == MilpStatus::Optimal {
            assert!(
                (r.bound - r.mlu).abs() < 1e-5,
                "LWO theta {} vs ECMP re-evaluation {}",
                r.bound,
                r.mlu
            );
        }
    }

    /// A two-matrix diamond where the matrices load opposite directions: the
    /// robust θ must cover both, and the per-matrix MLUs must equal
    /// independent re-evaluations of the decoded configuration.
    #[test]
    fn robust_milp_covers_every_matrix() {
        let mut b = Network::builder(4);
        b.bilink(NodeId(0), NodeId(1), 1.0);
        b.bilink(NodeId(1), NodeId(3), 1.0);
        b.bilink(NodeId(0), NodeId(2), 1.0);
        b.bilink(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut a = DemandList::new();
        a.push(NodeId(0), NodeId(3), 1.0);
        let mut bm = DemandList::new();
        bm.push(NodeId(0), NodeId(3), 2.0);
        let mut set = DemandSet::single(a);
        set.push("peak", bm);

        let r = joint_milp_robust(&net, &set, RobustObjective::WorstCase, &fast_opts()).unwrap();
        assert_eq!(r.matrix_mlus.len(), 2);
        // Independent per-matrix re-evaluation must reproduce matrix_mlus.
        let router = Router::new(&net, &r.weights);
        for (k, demands) in set.matrices().enumerate() {
            let mlu = router.evaluate(demands, &r.waypoints).unwrap().mlu;
            assert_eq!(mlu.to_bits(), r.matrix_mlus[k].to_bits());
        }
        assert_eq!(
            r.mlu.to_bits(),
            r.matrix_mlus
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
                .to_bits()
        );
        // Even-splitting the 2-unit peak matrix over both corridors is the
        // best any configuration can do: worst-case MLU 1.
        if r.status == MilpStatus::Optimal {
            assert!(
                (r.mlu - 1.0).abs() < 1e-6,
                "robust optimum is 1, got {}",
                r.mlu
            );
        }
    }

    /// The single-matrix robust solve must be bit-identical to the classic
    /// entry point (identical model ⇒ identical branch-and-bound).
    #[test]
    fn single_matrix_robust_milp_reduces_bit_identically() {
        let (net, d) = instance1_m3();
        let classic = joint_milp(&net, &d, &fast_opts()).unwrap();
        let robust = joint_milp_robust(
            &net,
            &DemandSet::single(d.clone()),
            RobustObjective::Quantile(1.0),
            &fast_opts(),
        )
        .unwrap();
        assert_eq!(classic.weights.as_slice(), robust.weights.as_slice());
        assert_eq!(classic.mlu.to_bits(), robust.mlu.to_bits());
        assert_eq!(classic.bound.to_bits(), robust.bound.to_bits());
        assert_eq!(classic.nodes, robust.nodes);
    }
}
