//! # segrout-milp
//!
//! Exact LP/MILP formulations of the paper's four optimization problems
//! (provided by the paper's artifact \[18\] and solved there with Gurobi):
//!
//! * [`opt_lp`] — `OPT`: the minimum-MLU multi-commodity flow LP (and the
//!   maximum-concurrent-flow variant used for demand scaling),
//! * [`mod@wpo_ilp`] — `WPO`: optimal waypoint selection under *fixed* weights.
//!   With weights fixed the ECMP splitting of every segment is fixed too, so
//!   the problem reduces to a selection MILP over precomputed per-waypoint
//!   load vectors — equivalent to the paper's "add one equality constraint
//!   per link" reduction from the Joint MILP, but far smaller,
//! * [`mod@joint`] — `Joint` (and `LWO` as its `W = 0` restriction): the
//!   full mixed-integer formulation with integer weight variables, big-M
//!   shortest-path-indicator constraints, exact ECMP even-split flow
//!   coupling, and binary waypoint choice per demand.
//!
//! Exactness of the ECMP coupling: with integer weights, an edge is on the
//! shortest-path DAG iff its distance slack is zero, and slack is forced
//! `≥ 1` on non-DAG edges; flows of active edges at a node are tied to a
//! common per-node share variable. A standard induction along flow-carrying
//! nodes shows distance variables then equal true shortest distances, making
//! the model exact (see `joint` module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod joint;
pub mod opt_lp;
pub mod wpo_ilp;

pub use joint::{
    joint_milp, joint_milp_robust, lwo_ilp, lwo_ilp_robust, JointMilpOptions, JointMilpOutcome,
};
pub use opt_lp::{max_concurrent_lp, opt_mlu_lp, OptLpOutcome};
pub use wpo_ilp::{wpo_ilp, WpoIlpOptions, WpoIlpOutcome};
