//! `OPT`: the minimum-MLU multi-commodity flow LP (paper §2, "The Optimal
//! Flow"), plus the maximum-concurrent-flow LP used for "MCF Synthetic"
//! demand generation (§7).
//!
//! Commodities are aggregated by destination: `f_e^t` is the total flow on
//! edge `e` destined to `t`, with node conservation
//! `Σ_out f^t − Σ_in f^t = D(v → t)` at every `v ≠ t`. This keeps the LP at
//! `|E| · |T|` variables instead of `|E| · |D|`.

use segrout_core::{DemandList, Network, NodeId, TeError};
use segrout_lp::{solve_lp, Cmp, LpStatus, Problem, Sense, VarId};
use std::collections::HashMap;

/// Result of an OPT LP solve.
#[derive(Clone, Debug)]
pub struct OptLpOutcome {
    /// The optimal objective: MLU for [`opt_mlu_lp`], the throughput factor
    /// `λ*` for [`max_concurrent_lp`].
    pub objective: f64,
    /// Per-link loads of the optimal flow.
    pub loads: Vec<f64>,
}

/// Aggregates demands to per-destination injections: `inj[t][v] = Σ d(v→t)`.
fn injections(demands: &DemandList) -> HashMap<NodeId, HashMap<NodeId, f64>> {
    let mut inj: HashMap<NodeId, HashMap<NodeId, f64>> = HashMap::new();
    for d in demands {
        *inj.entry(d.dst).or_default().entry(d.src).or_insert(0.0) += d.size;
    }
    inj
}

/// Builds per-destination flow variables and conservation rows; returns the
/// flow variable grid `fvar[t][e]`.
fn add_flow_block(
    p: &mut Problem,
    net: &Network,
    inj: &HashMap<NodeId, HashMap<NodeId, f64>>,
    scale_var: Option<VarId>,
) -> HashMap<NodeId, Vec<VarId>> {
    let g = net.graph();
    let mut fvar: HashMap<NodeId, Vec<VarId>> = HashMap::new();
    for (&t, sources) in inj {
        let vars: Vec<VarId> = g
            .edge_ids()
            .map(|e| p.add_var(format!("f[{t}][{e}]"), 0.0, f64::INFINITY, 0.0))
            .collect();
        // Conservation at every node except the destination.
        for v in g.nodes() {
            if v == t {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &e in g.out_edges(v) {
                terms.push((vars[e.index()], 1.0));
            }
            for &e in g.in_edges(v) {
                terms.push((vars[e.index()], -1.0));
            }
            let demand_here = sources.get(&v).copied().unwrap_or(0.0);
            match scale_var {
                // out - in = demand (fixed-demand MLU minimization)
                None => p.add_constraint(terms, Cmp::Eq, demand_here),
                // out - in - lambda * demand = 0 (concurrent-flow scaling)
                Some(lambda) => {
                    if demand_here != 0.0 {
                        terms.push((lambda, -demand_here));
                    }
                    p.add_constraint(terms, Cmp::Eq, 0.0);
                }
            }
        }
        fvar.insert(t, vars);
    }
    fvar
}

/// Maps a non-`Optimal` LP status to the error that actually describes it:
/// only genuine infeasibility means a disconnected demand pair
/// ([`TeError::Unroutable`]); an iteration-limit abort or an unbounded
/// relaxation is a solver failure ([`TeError::SolverLimit`]) — the instance
/// may be perfectly routable.
fn lp_failure(what: &'static str, status: LpStatus, demands: &DemandList) -> TeError {
    match status {
        LpStatus::Infeasible => {
            let d0 = demands[0];
            TeError::Unroutable {
                src: d0.src,
                dst: d0.dst,
            }
        }
        LpStatus::IterLimit => TeError::SolverLimit {
            what,
            status: "iteration limit",
        },
        LpStatus::Unbounded => TeError::SolverLimit {
            what,
            status: "unbounded relaxation",
        },
        LpStatus::Optimal => unreachable!("lp_failure called on an optimal solve"),
    }
}

fn extract_loads(net: &Network, fvar: &HashMap<NodeId, Vec<VarId>>, values: &[f64]) -> Vec<f64> {
    let mut loads = vec![0.0; net.edge_count()];
    for vars in fvar.values() {
        for (e, v) in vars.iter().enumerate() {
            loads[e] += values[v.0];
        }
    }
    loads
}

/// Solves `OPT`: minimize the MLU of an unrestricted (arbitrarily splitting)
/// multi-commodity flow routing all demands.
///
/// # Errors
/// [`TeError::Unroutable`] when the LP is infeasible (some demand pair is
/// disconnected); [`TeError::SolverLimit`] when the solve aborted on a
/// limit or an unbounded relaxation without reaching a verdict.
pub fn opt_mlu_lp(net: &Network, demands: &DemandList) -> Result<OptLpOutcome, TeError> {
    assert!(!demands.is_empty(), "demand list must be non-empty");
    let mut p = Problem::new(Sense::Minimize);
    let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
    let inj = injections(demands);
    let fvar = add_flow_block(&mut p, net, &inj, None);
    // Capacity rows: sum of all commodities on e <= theta * c_e.
    for e in net.graph().edge_ids() {
        let mut terms: Vec<(VarId, f64)> =
            fvar.values().map(|vars| (vars[e.index()], 1.0)).collect();
        terms.push((theta, -net.capacity(e)));
        p.add_constraint(terms, Cmp::Le, 0.0);
    }
    let r = solve_lp(&p);
    match r.status {
        LpStatus::Optimal => Ok(OptLpOutcome {
            objective: r.objective,
            loads: extract_loads(net, &fvar, &r.values),
        }),
        status => Err(lp_failure("OPT LP", status, demands)),
    }
}

/// Solves the maximal concurrent multi-commodity flow LP: maximize `λ` such
/// that `λ · d` is routable for every demand within capacities. The paper's
/// MCF-synthetic generator scales demands so this optimum becomes 1.
///
/// # Errors
/// [`TeError::Unroutable`] when some demand pair is disconnected (reported
/// also when the optimum pins `λ` at zero); [`TeError::SolverLimit`] when
/// the solve aborted on a limit without reaching a verdict.
pub fn max_concurrent_lp(net: &Network, demands: &DemandList) -> Result<OptLpOutcome, TeError> {
    assert!(!demands.is_empty(), "demand list must be non-empty");
    let mut p = Problem::new(Sense::Maximize);
    let lambda = p.add_var("lambda", 0.0, f64::INFINITY, 1.0);
    let inj = injections(demands);
    let fvar = add_flow_block(&mut p, net, &inj, Some(lambda));
    for e in net.graph().edge_ids() {
        let terms: Vec<(VarId, f64)> = fvar.values().map(|vars| (vars[e.index()], 1.0)).collect();
        p.add_constraint(terms, Cmp::Le, net.capacity(e));
    }
    let r = solve_lp(&p);
    match r.status {
        // A disconnected pair does not make this LP infeasible — it just
        // pins lambda at 0, which we report as unroutable.
        LpStatus::Optimal if r.objective > 1e-9 => Ok(OptLpOutcome {
            objective: r.objective,
            loads: extract_loads(net, &fvar, &r.values),
        }),
        LpStatus::Optimal => Err(lp_failure(
            "concurrent-flow LP",
            LpStatus::Infeasible,
            demands,
        )),
        status => Err(lp_failure("concurrent-flow LP", status, demands)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_algos::max_concurrent_flow;

    fn parallel_links() -> (Network, DemandList) {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 3.0);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(1), 2.0);
        (net, d)
    }

    #[test]
    fn opt_mlu_on_parallel_links() {
        let (net, d) = parallel_links();
        let r = opt_mlu_lp(&net, &d).unwrap();
        assert!((r.objective - 0.5).abs() < 1e-6);
        // Optimal split: 1.5 / 0.5.
        assert!((r.loads[0] - 1.5).abs() < 1e-6);
        assert!((r.loads[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn concurrent_lp_is_reciprocal_of_mlu() {
        let (net, d) = parallel_links();
        let mlu = opt_mlu_lp(&net, &d).unwrap().objective;
        let lambda = max_concurrent_lp(&net, &d).unwrap().objective;
        assert!((mlu * lambda - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lp_matches_fptas() {
        // Cross-validate the Garg-Könemann FPTAS against the exact LP.
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 2.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 2.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(3), 1.5);
        d.push(NodeId(1), NodeId(3), 0.5);
        let exact = opt_mlu_lp(&net, &d).unwrap().objective;
        let approx = max_concurrent_flow(&net, &d, 0.03).unwrap().opt_mlu;
        // FPTAS upper-bounds OPT and is close.
        assert!(approx >= exact - 1e-9);
        assert!(approx <= exact * 1.12, "approx {approx} vs exact {exact}");
    }

    #[test]
    fn multi_destination_instance() {
        // Two demands with different destinations sharing a link.
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        d.push(NodeId(0), NodeId(3), 1.0);
        let r = opt_mlu_lp(&net, &d).unwrap();
        // Both cross (0,1): load 2 on capacity 1 -> MLU 2.
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    /// Regression (misleading error): `IterLimit`/`Unbounded` used to be
    /// mapped to `Unroutable`, reporting an iteration-limit abort on a big
    /// topology as "demand pair disconnected".
    #[test]
    fn solver_limit_is_not_reported_as_unroutable() {
        let (_net, d) = parallel_links();
        assert!(matches!(
            lp_failure("OPT LP", LpStatus::Infeasible, &d),
            TeError::Unroutable { .. }
        ));
        assert!(matches!(
            lp_failure("OPT LP", LpStatus::IterLimit, &d),
            TeError::SolverLimit {
                status: "iteration limit",
                ..
            }
        ));
        assert!(matches!(
            lp_failure("OPT LP", LpStatus::Unbounded, &d),
            TeError::SolverLimit { .. }
        ));
    }

    #[test]
    fn infeasible_demand_errors() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        assert!(opt_mlu_lp(&net, &d).is_err());
        assert!(max_concurrent_lp(&net, &d).is_err());
    }

    #[test]
    fn instance1_opt_is_one_exact() {
        // TE-Instance 1 (m = 4): OPT = 1 exactly.
        let m = 4u32;
        let mut b = Network::builder(m as usize + 1);
        for i in 0..m - 1 {
            b.link(NodeId(i), NodeId(i + 1), m as f64);
        }
        for i in 0..m {
            b.link(NodeId(i), NodeId(m), 1.0);
        }
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..m {
            d.push(NodeId(0), NodeId(m), 1.0);
        }
        let r = opt_mlu_lp(&net, &d).unwrap();
        assert!((r.objective - 1.0).abs() < 1e-6);
    }
}
