//! `WPO` as an exact selection MILP (paper §7.1: "for WPO, given a weight
//! setting ω′, we add one constraint for each link ℓ: ω_ℓ = ω′(ℓ)").
//!
//! With the weights fixed, ECMP splitting is fully determined, so the load
//! vector a demand contributes under each candidate waypoint can be
//! precomputed. The MILP then just picks one option (a waypoint or "direct")
//! per demand:
//!
//! ```text
//! min θ   s.t.  Σ_w y_{i,w} = 1                    ∀ demands i
//!               Σ_i Σ_w y_{i,w} · L_{i,w,e} ≤ θ c_e  ∀ links e
//!               y binary
//! ```
//!
//! This is exactly the `W = 1` WPO of the paper's Joint MILP with the weight
//! equality constraints substituted in, shrunk from `O(|E||V|)` indicator
//! variables to `O(|D||V|)` selection variables.

use segrout_core::{
    DemandList, EdgeId, Network, NodeId, Router, TeError, WaypointSetting, WeightSetting,
};
use segrout_lp::{solve_milp, Cmp, MilpOptions, MilpStatus, Problem, Sense, VarId};

/// Per-demand routing options: `(option index, sparse loads)`; option 0 is
/// the direct route, option `k >= 1` is waypoint `candidates[k-1]`.
type DemandOptions = Vec<(usize, Vec<(EdgeId, f64)>)>;

/// Options for the WPO selection MILP.
#[derive(Clone, Debug, Default)]
pub struct WpoIlpOptions {
    /// Branch-and-bound limits.
    pub milp: MilpOptions,
    /// Restrict candidate waypoints (defaults to all nodes).
    pub candidates: Option<Vec<NodeId>>,
}

/// Result of the WPO MILP.
#[derive(Clone, Debug)]
pub struct WpoIlpOutcome {
    /// Selected waypoints (at most one per demand).
    pub waypoints: WaypointSetting,
    /// MLU of the selected configuration.
    pub mlu: f64,
    /// Solver status ([`MilpStatus::Optimal`] = proven optimal).
    pub status: MilpStatus,
    /// Dual bound on the optimal WPO MLU.
    pub bound: f64,
}

/// Solves WPO exactly (up to solver limits) for a fixed weight setting and a
/// budget of one waypoint per demand.
///
/// # Errors
/// Fails when some demand cannot be routed at all under the given weights.
pub fn wpo_ilp(
    net: &Network,
    demands: &DemandList,
    weights: &WeightSetting,
    options: &WpoIlpOptions,
) -> Result<WpoIlpOutcome, TeError> {
    let router = Router::new(net, weights);
    let all_nodes: Vec<NodeId> = net.graph().nodes().collect();
    let candidates: &[NodeId] = options.candidates.as_deref().unwrap_or(&all_nodes);

    // Precompute the load vector of every (demand, option) pair.
    // Option index 0 = direct; k >= 1 = waypoint candidates[k-1].
    let mut option_loads: Vec<DemandOptions> = Vec::new();
    for d in demands {
        let mut opts = Vec::new();
        let direct = router.segment_loads_sparse(d.src, d.dst, d.size)?;
        opts.push((0usize, direct));
        for (k, &w) in candidates.iter().enumerate() {
            if w == d.src || w == d.dst {
                continue;
            }
            let Ok(mut first) = router.segment_loads_sparse(d.src, w, d.size) else {
                continue;
            };
            let Ok(second) = router.segment_loads_sparse(w, d.dst, d.size) else {
                continue;
            };
            first.extend(second);
            opts.push((k + 1, first));
        }
        option_loads.push(opts);
    }

    // Build the selection MILP.
    let mut p = Problem::new(Sense::Minimize);
    let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
    let mut yvars: Vec<Vec<VarId>> = Vec::new();
    for (i, opts) in option_loads.iter().enumerate() {
        let ys: Vec<VarId> = opts
            .iter()
            .map(|(k, _)| p.add_bin_var(format!("y[{i}][{k}]"), 0.0))
            .collect();
        p.add_constraint(ys.iter().map(|&y| (y, 1.0)).collect(), Cmp::Eq, 1.0);
        yvars.push(ys);
    }
    // Capacity rows: accumulate per-edge coefficients.
    let mut per_edge_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); net.edge_count()];
    for (i, opts) in option_loads.iter().enumerate() {
        for (j, (_, loads)) in opts.iter().enumerate() {
            for &(e, l) in loads {
                per_edge_terms[e.index()].push((yvars[i][j], l));
            }
        }
    }
    for (e, mut terms) in per_edge_terms.into_iter().enumerate() {
        if terms.is_empty() {
            continue;
        }
        terms.push((theta, -net.capacities()[e]));
        p.add_constraint(terms, Cmp::Le, 0.0);
    }

    // Warm start: the GreedyWPO solution (Algorithm 3). This both prunes
    // the search hard and guarantees the MILP's incumbent is never worse
    // than the greedy heuristic, even under node/time limits.
    let mut warm = vec![0.0; p.num_vars()];
    {
        let greedy = segrout_algos::greedy_wpo(
            net,
            demands,
            weights,
            &segrout_algos::GreedyWpoConfig {
                candidates: options.candidates.clone(),
                ..Default::default()
            },
        )?;
        let report = router.evaluate(demands, &greedy)?;
        warm[theta.0] = report.mlu + 1e-9;
        for (i, opts) in option_loads.iter().enumerate() {
            let wp = greedy.get(i).first().copied();
            let chosen = match wp {
                None => 0usize,
                Some(w) => candidates
                    .iter()
                    .position(|&c| c == w)
                    .map(|k| k + 1)
                    .unwrap_or(0),
            };
            // Find the y variable whose option index matches.
            let j = opts.iter().position(|&(k, _)| k == chosen).unwrap_or(0);
            warm[yvars[i][j].0] = 1.0;
        }
    }
    let opts = MilpOptions {
        warm_start: Some(warm),
        ..options.milp.clone()
    };
    let result = solve_milp(&p, &opts);

    // Decode the waypoint setting. If the solver produced no incumbent
    // (possible when the warm start is rejected by the feasibility
    // tolerance AND the node/time limits are zero), fall back to the
    // all-direct setting rather than panicking in library code.
    let mut setting = WaypointSetting::none(demands.len());
    if let Some(values) = &result.values {
        for (i, opts) in option_loads.iter().enumerate() {
            for (j, (k, _)) in opts.iter().enumerate() {
                if values[yvars[i][j].0] > 0.5 && *k > 0 {
                    setting.set(i, vec![candidates[*k - 1]]);
                }
            }
        }
    }
    let mlu = router.evaluate(demands, &setting)?.mlu;
    Ok(WpoIlpOutcome {
        waypoints: setting,
        mlu,
        status: result.status,
        bound: result.bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_algos::{greedy_wpo, GreedyWpoConfig};

    /// TE-Instance-1 shape (m = 3) under waypoint-hostile weights.
    fn setup() -> (Network, DemandList, WeightSetting) {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 3.0);
        b.link(NodeId(1), NodeId(2), 3.0);
        b.link(NodeId(0), NodeId(3), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        for _ in 0..3 {
            d.push(NodeId(0), NodeId(3), 1.0);
        }
        let w = WeightSetting::new(&net, vec![1.0, 1.0, 2.0, 10.0, 10.0]).unwrap();
        (net, d, w)
    }

    #[test]
    fn finds_the_optimal_waypoints() {
        let (net, d, w) = setup();
        let r = wpo_ilp(&net, &d, &w, &WpoIlpOptions::default()).unwrap();
        assert_eq!(r.status, MilpStatus::Optimal);
        // Optimal WPO: route one demand direct, one via v1, one via v2:
        // every (v_i, t) link carries 1 unit but the chain carries 2+1:
        // utilizations: chain 2/3, thin links 1 -> MLU 1... but waypoint
        // paths to v1/v2 keep cost via (s,t)? Under these weights the
        // shortest path to v1 is the chain link. MLU 1 is achievable.
        assert!(r.mlu <= 1.0 + 1e-9, "mlu = {}", r.mlu);
    }

    #[test]
    fn ilp_at_least_as_good_as_greedy() {
        let (net, d, w) = setup();
        let greedy = greedy_wpo(&net, &d, &w, &GreedyWpoConfig::default()).unwrap();
        let router = Router::new(&net, &w);
        let greedy_mlu = router.evaluate(&d, &greedy).unwrap().mlu;
        let exact = wpo_ilp(&net, &d, &w, &WpoIlpOptions::default()).unwrap();
        assert!(exact.mlu <= greedy_mlu + 1e-9);
    }

    #[test]
    fn direct_when_no_waypoint_helps() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        let net = b.build().unwrap();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(2), 1.0);
        let w = WeightSetting::unit(&net);
        let r = wpo_ilp(&net, &d, &w, &WpoIlpOptions::default()).unwrap();
        assert!(r.waypoints.get(0).is_empty());
        assert!((r.mlu - 1.0).abs() < 1e-9);
    }

    #[test]
    fn candidate_restriction() {
        let (net, d, w) = setup();
        let opts = WpoIlpOptions {
            candidates: Some(vec![NodeId(1)]),
            ..Default::default()
        };
        let r = wpo_ilp(&net, &d, &w, &opts).unwrap();
        for i in 0..d.len() {
            for &x in r.waypoints.get(i) {
                assert_eq!(x, NodeId(1));
            }
        }
    }

    #[test]
    fn bound_is_valid() {
        let (net, d, w) = setup();
        let r = wpo_ilp(&net, &d, &w, &WpoIlpOptions::default()).unwrap();
        assert!(r.bound <= r.mlu + 1e-6);
    }
}
